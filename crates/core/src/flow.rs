//! The full placement flow: (IO) -> sanitize -> GP -> LG -> DP.
//!
//! Beyond the paper's pipeline, the flow carries a robustness layer (the
//! counterpart of the GP engine's self-healing): a [design
//! sanitizer](crate::sanitize) runs before GP, every stage gets a budget
//! and a quality gate ([`StageBudgets`]), and each stage can degrade
//! gracefully instead of failing — Abacus falls back to Tetris, DP
//! disables a misbehaving pass, sub-spectral bin grids run the density
//! operator in uniform-field mode. Every degradation is recorded in
//! [`FlowResult::degradations`] so callers see exactly what was traded
//! away; off the failure path the layer is a no-op and results are
//! bit-identical to the unguarded flow.

use std::error::Error;
use std::fmt;

use dp_dplace::{DetailedPlacer, DpPass, DpStats};
use dp_gen::GeneratedDesign;
use dp_gp::{DivergenceCause, GpConfig, GpError, GpStats, SolverKind, WirelengthModel};
use dp_lg::{Legalizer, LgError, LgStats};
use dp_netlist::{Netlist, Placement};
use dp_num::Float;

use crate::machine::{FlowMachine, FlowState};
use crate::modes::ToolMode;
use crate::sanitize::SanitizeReport;

/// Error raised by the full flow.
#[derive(Debug)]
pub enum FlowError<T> {
    /// The design sanitizer found a fatal defect before any stage ran.
    Sanitize(SanitizeReport),
    /// Global placement failed.
    Gp(GpError<T>),
    /// Legalization failed.
    Lg {
        /// The underlying legalizer error (names its stage and progress).
        error: LgError,
        /// HPWL of the global placement handed to legalization — the
        /// best-so-far quality when the flow died (NaN when unknown).
        hpwl_gp: f64,
    },
    /// The legalized placement failed the legality audit (even after the
    /// Tetris-only retry).
    IllegalResult {
        /// Number of overlapping pairs found.
        overlaps: usize,
        /// HPWL after the failed legalization attempt (NaN when unknown).
        hpwl_legal: f64,
    },
    /// Bookshelf IO round-trip failed.
    Io(std::io::Error),
    /// Writing, reading, or applying a durable checkpoint failed (see
    /// [`crate::checkpoint`]).
    Checkpoint(crate::checkpoint::CheckpointError),
}

impl<T> FlowError<T> {
    /// One-line diagnosis naming the stage, the trigger, and the
    /// best-so-far context — what a log line or CI failure should show.
    pub fn diagnosis(&self) -> String {
        match self {
            FlowError::Sanitize(report) => {
                format!("sanitize: fatal design defects: {report}")
            }
            FlowError::Gp(e) => format!("gp: {e}"),
            FlowError::Lg { error, hpwl_gp } => {
                format!("lg: {error} (gp hpwl {hpwl_gp:.4e})")
            }
            FlowError::IllegalResult {
                overlaps,
                hpwl_legal,
            } => format!(
                "lg: audit found {overlaps} overlapping pairs after all fallbacks \
                 (hpwl {hpwl_legal:.4e})"
            ),
            FlowError::Io(e) => format!("io: {e}"),
            FlowError::Checkpoint(e) => format!("checkpoint: {e}"),
        }
    }
}

impl<T> fmt::Display for FlowError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.diagnosis())
    }
}

impl<T: fmt::Debug> Error for FlowError<T> {}

impl<T> From<GpError<T>> for FlowError<T> {
    fn from(e: GpError<T>) -> Self {
        FlowError::Gp(e)
    }
}

impl<T> From<LgError> for FlowError<T> {
    fn from(e: LgError) -> Self {
        FlowError::Lg {
            error: e,
            hpwl_gp: f64::NAN,
        }
    }
}

impl<T> From<std::io::Error> for FlowError<T> {
    fn from(e: std::io::Error) -> Self {
        FlowError::Io(e)
    }
}

/// A stage of the flow, for degradation bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStage {
    /// The design sanitizer.
    Sanitize,
    /// Global placement.
    Gp,
    /// Legalization.
    Lg,
    /// Detailed placement.
    Dp,
}

impl fmt::Display for FlowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowStage::Sanitize => write!(f, "sanitize"),
            FlowStage::Gp => write!(f, "gp"),
            FlowStage::Lg => write!(f, "lg"),
            FlowStage::Dp => write!(f, "dp"),
        }
    }
}

/// What tripped a degradation.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradationTrigger {
    /// The bin grid is below the spectral solver's minimum shape.
    DegenerateGrid {
        /// The configured `(mx, my)` bin counts.
        bins: (usize, usize),
    },
    /// Global placement diverged unrecoverably.
    GpDiverged(DivergenceCause),
    /// The Abacus refinement failed.
    AbacusFailed,
    /// The Abacus refinement exceeded the displacement budget.
    DisplacementExceeded,
    /// The legality audit found overlaps after the full legalizer.
    IllegalAfterLg {
        /// Overlapping pairs found.
        overlaps: usize,
    },
    /// A DP pass worsened HPWL by this relative amount.
    DpPassWorsened {
        /// The offending pass.
        pass: DpPass,
        /// Relative HPWL worsening that tripped the gate.
        worsening: f64,
    },
    /// A stage exhausted its wall-clock budget.
    BudgetExhausted,
}

impl fmt::Display for DegradationTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationTrigger::DegenerateGrid { bins } => {
                write!(f, "bin grid {}x{} below spectral minimum", bins.0, bins.1)
            }
            DegradationTrigger::GpDiverged(cause) => write!(f, "gp diverged ({cause})"),
            DegradationTrigger::AbacusFailed => write!(f, "abacus refinement failed"),
            DegradationTrigger::DisplacementExceeded => {
                write!(f, "abacus exceeded displacement budget")
            }
            DegradationTrigger::IllegalAfterLg { overlaps } => {
                write!(f, "{overlaps} overlapping pairs after legalization")
            }
            DegradationTrigger::DpPassWorsened { pass, worsening } => {
                write!(f, "{pass} worsened hpwl by {worsening:.2e}")
            }
            DegradationTrigger::BudgetExhausted => write!(f, "wall-clock budget exhausted"),
        }
    }
}

/// The fallback the flow took in response to a trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationFallback {
    /// Density ran in uniform-field mode (spectral solve skipped).
    UniformFieldDensity,
    /// GP re-ran with the conservative preset.
    ConservativeGpPreset,
    /// The flow continued from GP's best-so-far placement.
    BestSoFarPlacement,
    /// Legalization kept the Tetris result.
    TetrisResult,
    /// Legalization re-ran without Abacus from the GP placement.
    RetryWithoutAbacus,
    /// DP disabled the offending pass and continued with the others.
    DisabledDpPass(DpPass),
    /// The stage stopped early at its budget, keeping its best result.
    StoppedStageEarly,
}

impl fmt::Display for DegradationFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationFallback::UniformFieldDensity => write!(f, "uniform-field density"),
            DegradationFallback::ConservativeGpPreset => write!(f, "conservative gp preset"),
            DegradationFallback::BestSoFarPlacement => write!(f, "best-so-far placement"),
            DegradationFallback::TetrisResult => write!(f, "kept tetris result"),
            DegradationFallback::RetryWithoutAbacus => write!(f, "retried without abacus"),
            DegradationFallback::DisabledDpPass(p) => write!(f, "disabled {p}"),
            DegradationFallback::StoppedStageEarly => write!(f, "stopped stage early"),
        }
    }
}

/// One recorded degradation: stage, trigger, and the fallback taken.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationEvent {
    /// The stage that degraded.
    pub stage: FlowStage,
    /// What tripped it.
    pub trigger: DegradationTrigger,
    /// What the flow did about it.
    pub fallback: DegradationFallback,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> {}", self.stage, self.trigger, self.fallback)
    }
}

/// Log of every degradation the flow took; empty on the clean path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowDegradations {
    /// Events in the order they happened.
    pub events: Vec<DegradationEvent>,
}

impl FlowDegradations {
    /// True when nothing degraded — the flow ran the paper's pipeline
    /// untouched.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that happened in `stage`.
    pub fn for_stage(&self, stage: FlowStage) -> impl Iterator<Item = &DegradationEvent> {
        self.events.iter().filter(move |e| e.stage == stage)
    }

    pub(crate) fn record(
        &mut self,
        stage: FlowStage,
        trigger: DegradationTrigger,
        fallback: DegradationFallback,
    ) {
        self.events.push(DegradationEvent {
            stage,
            trigger,
            fallback,
        });
    }
}

impl fmt::Display for FlowDegradations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "none");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Per-stage budgets and quality gates. All default to off (`None`), so
/// the flow behaves exactly like the unguarded pipeline unless a caller
/// opts in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBudgets {
    /// Wall-clock budget for global placement; the engine stops at the
    /// budget like an iteration cap (never an error).
    pub gp_seconds: Option<f64>,
    /// Wall-clock budget for detailed placement; checked between passes.
    pub dp_seconds: Option<f64>,
    /// Maximum L1 displacement the Abacus refinement may reach before
    /// legalization reverts to the Tetris result.
    pub lg_max_displacement: Option<f64>,
    /// Relative HPWL worsening tolerated per DP pass before the pass is
    /// reverted and disabled.
    pub dp_hpwl_tolerance: f64,
}

impl Default for StageBudgets {
    fn default() -> Self {
        Self {
            gp_seconds: None,
            dp_seconds: None,
            lg_max_displacement: None,
            dp_hpwl_tolerance: 1e-9,
        }
    }
}

/// How the flow coped with an unrecoverable global placement divergence
/// (recorded in [`FlowResult::gp_fallback`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpFallback {
    /// The configured run diverged; the conservative preset (Adam + LSE
    /// with paper-default schedulers) completed instead.
    ConservativePreset {
        /// What tripped the primary run's detector.
        cause: DivergenceCause,
    },
    /// Both the configured run and the conservative preset diverged; the
    /// flow continued from the best-so-far placement.
    BestSoFar {
        /// What tripped the last detector.
        cause: DivergenceCause,
        /// Recovery rollbacks attempted across the failed runs.
        recoveries: usize,
    },
}

/// Wall-clock seconds per flow phase (the columns of Tables II/III).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowTiming {
    /// Bookshelf write+read round-trip (0 when disabled).
    pub io: f64,
    /// Global placement.
    pub gp: f64,
    /// Legalization.
    pub lg: f64,
    /// Detailed placement.
    pub dp: f64,
    /// End to end.
    pub total: f64,
}

/// Result of the full flow.
#[derive(Debug, Clone)]
pub struct FlowResult<T> {
    /// Final (legal) placement.
    pub placement: Placement<T>,
    /// HPWL right after global placement.
    pub hpwl_gp: f64,
    /// HPWL after legalization.
    pub hpwl_legal: f64,
    /// HPWL after detailed placement (the tables' HPWL column).
    pub hpwl_final: f64,
    /// Global placement statistics.
    pub gp: GpStats,
    /// Legalization statistics.
    pub lg: LgStats,
    /// Detailed placement statistics (`None` when DP is disabled).
    pub dp: Option<DpStats>,
    /// Phase timing.
    pub timing: FlowTiming,
    /// `Some` when global placement diverged and the flow degraded
    /// gracefully instead of failing (see [`GpFallback`]). In-run
    /// rollbacks that recovered are in [`GpStats::recovery_events`].
    pub gp_fallback: Option<GpFallback>,
    /// What the design sanitizer found (and repaired); empty when clean.
    pub sanitize: SanitizeReport,
    /// Every degradation the flow took; empty on the clean path.
    pub degradations: FlowDegradations,
}

/// Flow configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig<T> {
    /// Global placement configuration (see [`ToolMode::gp_config`]).
    pub gp: GpConfig<T>,
    /// Run the detailed placement stage.
    pub run_dp: bool,
    /// Detailed placement knobs.
    pub dp: DetailedPlacer,
    /// Legalizer knobs (fault injection, ablation).
    pub lg: Legalizer,
    /// Run detailed placement through the batched (ABCDPlace-style)
    /// driver with this many proposal workers instead of the sequential
    /// one (the paper's GPU-DP direction).
    pub batched_dp_threads: Option<usize>,
    /// Round-trip the design through Bookshelf files to measure IO (the
    /// paper's IO column). Uses a per-design temp directory.
    pub io_roundtrip: bool,
    /// On unrecoverable GP divergence, retry with a conservative preset
    /// (and, failing that, continue from the best-so-far placement)
    /// instead of returning an error.
    pub gp_fallback: bool,
    /// Run the design sanitizer before GP (free on clean designs).
    pub sanitize: bool,
    /// Per-stage budgets and quality gates.
    pub budgets: StageBudgets,
    /// Trace collector threaded through every stage. Disabled by default:
    /// the flow then skips all recording (two branch checks per event)
    /// and stays bit-identical to an uninstrumented build.
    pub telemetry: dp_telemetry::Telemetry,
}

impl<T: Float> FlowConfig<T> {
    /// Builds the configuration for a tool mode with flow defaults
    /// (DP enabled, IO disabled).
    pub fn for_mode(mode: ToolMode, netlist: &dp_netlist::Netlist<T>) -> Self {
        Self {
            gp: mode.gp_config(netlist),
            run_dp: true,
            dp: DetailedPlacer::new(),
            lg: Legalizer::new(),
            batched_dp_threads: None,
            io_roundtrip: false,
            gp_fallback: true,
            sanitize: true,
            budgets: StageBudgets::default(),
            telemetry: dp_telemetry::Telemetry::disabled(),
        }
    }
}

/// The flow driver; see the [crate example](crate).
pub struct DreamPlacer<T> {
    config: FlowConfig<T>,
}

impl<T: Float> DreamPlacer<T> {
    /// Creates the driver.
    pub fn new(config: FlowConfig<T>) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FlowConfig<T> {
        &self.config
    }

    /// Runs the full flow on a design: a thin loop over
    /// [`FlowMachine::step`] (use the machine directly — or
    /// [`DreamPlacer::place_durable`] — for checkpoint/resume).
    ///
    /// The sanitizer runs first: fatal defects abort with
    /// [`FlowError::Sanitize`], repairable ones are fixed in a copy and
    /// reported in [`FlowResult::sanitize`]. Each later stage is guarded:
    /// GP divergence degrades through the conservative preset to the
    /// best-so-far placement, a failed or over-budget Abacus keeps the
    /// Tetris result, an illegal audit retries Tetris-only from the GP
    /// placement, and a DP pass that worsens HPWL is reverted and
    /// disabled. Every fallback taken is recorded in
    /// [`FlowResult::degradations`].
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn place(&self, design: &GeneratedDesign<T>) -> Result<FlowResult<T>, FlowError<T>> {
        let mut machine = FlowMachine::new(self.config.clone(), design);
        loop {
            if machine.step()? == FlowState::Done {
                break;
            }
        }
        machine.finish().ok_or_else(|| {
            FlowError::Io(std::io::Error::other(
                "flow machine completed without a result",
            ))
        })
    }
}

/// A known-safe GP configuration for divergence fallback: Adam at a
/// quarter-bin learning rate, LSE wirelength, and the paper's default
/// scheduler knobs (a runaway `mu_max` or `ref_delta_hpwl` override is the
/// most common way to make the primary configuration diverge).
pub(crate) fn conservative_preset<T: Float>(gp: &GpConfig<T>, nl: &Netlist<T>) -> GpConfig<T> {
    let mut cfg = gp.clone();
    let region = nl.region();
    let bin = (region.width().to_f64() / cfg.bins.0 as f64
        + region.height().to_f64() / cfg.bins.1 as f64)
        * 0.5;
    cfg.solver = SolverKind::Adam {
        lr: bin * 0.25,
        decay: 0.997,
    };
    cfg.wirelength = WirelengthModel::Lse;
    cfg.mu_min = 0.95;
    cfg.mu_max = 1.05;
    cfg.tcad_mu_stabilization = true;
    cfg.ref_delta_hpwl = None;
    cfg.lambda_update_interval = 1;
    cfg
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_gen::GeneratorConfig;
    use dp_lg::check_legal;

    fn design() -> GeneratedDesign<f64> {
        GeneratorConfig::new("flow-test", 300, 330)
            .with_seed(12)
            .with_utilization(0.6)
            .generate::<f64>()
            .expect("ok")
    }

    fn quick(mode: ToolMode, d: &GeneratedDesign<f64>) -> FlowConfig<f64> {
        let mut cfg = FlowConfig::for_mode(mode, &d.netlist);
        cfg.gp.max_iters = 300;
        cfg.gp.target_overflow = 0.15;
        if let dp_gp::InitKind::WirelengthOnly { iters } = cfg.gp.init {
            cfg.gp.init = dp_gp::InitKind::WirelengthOnly {
                iters: iters.min(50),
            };
        }
        cfg
    }

    #[test]
    fn full_flow_produces_legal_improving_placement() {
        let d = design();
        let cfg = quick(ToolMode::DreamplaceGpuSim, &d);
        let r = DreamPlacer::new(cfg).place(&d).expect("flow runs");
        assert!(r.hpwl_final <= r.hpwl_legal, "DP must not hurt");
        assert!(r.hpwl_final > 0.0);
        assert!(r.timing.gp > 0.0 && r.timing.lg > 0.0);
        // Clean design: no findings, no degradations.
        assert!(r.sanitize.is_clean(), "{}", r.sanitize);
        assert!(r.degradations.is_clean(), "{}", r.degradations);
        let report = check_legal(&d.netlist, &r.placement);
        assert!(report.is_legal(), "{report:?}");
    }

    #[test]
    fn baseline_and_dreamplace_reach_similar_quality() {
        let d = design();
        let fast = DreamPlacer::new(quick(ToolMode::DreamplaceGpuSim, &d))
            .place(&d)
            .expect("fast flow");
        let base = DreamPlacer::new(quick(ToolMode::ReplaceBaseline { threads: 1 }, &d))
            .place(&d)
            .expect("baseline flow");
        let gap = (fast.hpwl_final - base.hpwl_final).abs() / base.hpwl_final;
        assert!(
            gap < 0.12,
            "quality gap {gap} too large: {} vs {}",
            fast.hpwl_final,
            base.hpwl_final
        );
        // Baseline spends extra time in its initial placement stage.
        assert!(base.gp.timing.init > fast.gp.timing.init);
    }

    #[test]
    fn flow_falls_back_to_conservative_preset_on_divergence() {
        let d = design();
        let mut cfg = quick(ToolMode::DreamplaceGpuSim, &d);
        // A runaway density-weight schedule: lambda multiplies by 1e120
        // every update, overflowing to infinity within a few iterations.
        // In-run rollbacks halve lambda but restore the same schedule, so
        // the run exhausts its recovery budget; the conservative preset
        // resets the schedule and completes.
        cfg.gp.mu_min = 1e120;
        cfg.gp.mu_max = 1e120;
        cfg.run_dp = false;
        let r = DreamPlacer::new(cfg).place(&d).expect("fallback completes");
        assert!(
            matches!(r.gp_fallback, Some(GpFallback::ConservativePreset { .. })),
            "{:?}",
            r.gp_fallback
        );
        // The fallback is also in the degradation log.
        assert!(
            r.degradations.for_stage(FlowStage::Gp).any(|e| matches!(
                e.fallback,
                DegradationFallback::ConservativeGpPreset
            )),
            "{}",
            r.degradations
        );
        assert!(r.hpwl_final.is_finite());
        assert!(check_legal(&d.netlist, &r.placement).is_legal());
    }

    #[test]
    fn conservative_fallback_merges_primary_exec_counters() {
        let d = design();
        let mut cfg = quick(ToolMode::DreamplaceGpuSim, &d);
        cfg.gp.mu_min = 1e120;
        cfg.gp.mu_max = 1e120;
        cfg.run_dp = false;
        let r = DreamPlacer::new(cfg).place(&d).expect("fallback completes");
        assert!(
            matches!(r.gp_fallback, Some(GpFallback::ConservativePreset { .. })),
            "{:?}",
            r.gp_fallback
        );
        // The primary run uses WA wirelength, the conservative preset uses
        // LSE, so the two attempts record disjoint op families. Both must
        // be in the summary: before the merge fix the primary ctx's
        // counters were dropped with the ctx on fallback, undercounting
        // the run.
        let has = |prefix: &str| {
            r.gp
                .exec
                .ops
                .iter()
                .any(|(name, c)| name.starts_with(prefix) && c.calls > 0)
        };
        assert!(has("lse."), "retry ops missing: {:?}", r.gp.exec.ops);
        assert!(
            has("wa."),
            "primary attempt ops dropped on fallback: {:?}",
            r.gp.exec.ops
        );
        // Per-op wall-clock survives the merge too (satellite regression:
        // nanos, not just call counts).
        assert!(
            r.gp
                .exec
                .ops
                .iter()
                .any(|(name, c)| name.starts_with("wa.") && c.nanos > 0),
            "primary op nanos lost in merge: {:?}",
            r.gp.exec.ops
        );
    }

    #[test]
    fn flow_degrades_to_best_so_far_when_preset_also_diverges() {
        let d = design();
        let mut cfg = quick(ToolMode::DreamplaceGpuSim, &d);
        // Poisoned gradients hit the retry too (the preset inherits the
        // fault injection), and a zero budget forbids rollbacks. A high
        // iteration floor keeps the warm-started retry from converging
        // before it reaches the poisoned evals.
        cfg.gp.recovery.max_recoveries = 0;
        cfg.gp.min_iters = 100;
        cfg.gp.fault_injection.nan_grad_evals = (60..72).collect();
        cfg.run_dp = false;
        let r = DreamPlacer::new(cfg)
            .place(&d)
            .expect("degrades, not fails");
        match r.gp_fallback {
            Some(GpFallback::BestSoFar { recoveries, .. }) => assert_eq!(recoveries, 0),
            other => panic!("expected best-so-far fallback, got {other:?}"),
        }
        // Both failed attempts' kernel counters survive into the result
        // (the old path rebuilt stats with `exec: Default::default()`).
        assert!(
            r.gp.exec.total_op_calls() > 0,
            "exec counters dropped on best-so-far fallback"
        );
        assert!(r.hpwl_final.is_finite());
        assert!(check_legal(&d.netlist, &r.placement).is_legal());
    }

    #[test]
    fn disabled_fallback_propagates_divergence() {
        let d = design();
        let mut cfg = quick(ToolMode::DreamplaceGpuSim, &d);
        cfg.gp.recovery.max_recoveries = 0;
        cfg.gp.fault_injection.nan_grad_evals = (60..72).collect();
        cfg.gp_fallback = false;
        let err = DreamPlacer::new(cfg).place(&d).expect_err("must surface");
        match err {
            FlowError::Gp(dp_gp::GpError::Diverged { ref best, .. }) => {
                assert!(best.x.iter().all(|v| v.is_finite()));
            }
            ref other => panic!("unexpected error {other}"),
        }
        // The diagnosis names the stage.
        assert!(err.diagnosis().starts_with("gp:"), "{}", err.diagnosis());
    }

    #[test]
    fn io_roundtrip_is_timed_and_preserves_result_quality() {
        let d = design();
        let mut cfg = quick(ToolMode::DreamplaceGpuSim, &d);
        cfg.io_roundtrip = true;
        let r = DreamPlacer::new(cfg).place(&d).expect("flow with io");
        assert!(r.timing.io > 0.0);
        assert!(r.hpwl_final.is_finite());
    }

    #[test]
    fn injected_abacus_fault_takes_tetris_ladder() {
        let d = design();
        let mut cfg = quick(ToolMode::DreamplaceGpuSim, &d);
        cfg.lg = Legalizer::new().with_fault_injection(dp_lg::LgFaultInjection {
            fail_abacus: true,
        });
        let r = DreamPlacer::new(cfg).place(&d).expect("ladder survives");
        let event = r
            .degradations
            .for_stage(FlowStage::Lg)
            .next()
            .expect("lg degradation recorded");
        assert_eq!(event.trigger, DegradationTrigger::AbacusFailed);
        assert_eq!(event.fallback, DegradationFallback::TetrisResult);
        assert!(check_legal(&d.netlist, &r.placement).is_legal());
    }

    #[test]
    fn injected_dp_fault_disables_offending_pass() {
        let d = design();
        let mut cfg = quick(ToolMode::DreamplaceGpuSim, &d);
        cfg.dp.fault_injection = dp_dplace::DpFaultInjection {
            worsen_pass: Some(DpPass::LocalReorder),
        };
        let r = DreamPlacer::new(cfg).place(&d).expect("ladder survives");
        let event = r
            .degradations
            .for_stage(FlowStage::Dp)
            .next()
            .expect("dp degradation recorded");
        assert!(matches!(
            event.trigger,
            DegradationTrigger::DpPassWorsened {
                pass: DpPass::LocalReorder,
                ..
            }
        ));
        assert_eq!(
            event.fallback,
            DegradationFallback::DisabledDpPass(DpPass::LocalReorder)
        );
        assert!(r.hpwl_final <= r.hpwl_legal, "guard must protect quality");
        assert!(check_legal(&d.netlist, &r.placement).is_legal());
    }

    #[test]
    fn stage_budgets_stop_gp_and_dp_early() {
        let d = design();
        let mut cfg = quick(ToolMode::DreamplaceGpuSim, &d);
        cfg.budgets.gp_seconds = Some(0.0);
        cfg.budgets.dp_seconds = Some(0.0);
        let r = DreamPlacer::new(cfg).place(&d).expect("budgets degrade");
        assert_eq!(r.gp.iterations, 0, "gp must stop at its budget");
        assert!(
            r.degradations
                .for_stage(FlowStage::Dp)
                .any(|e| e.trigger == DegradationTrigger::BudgetExhausted),
            "{}",
            r.degradations
        );
        assert!(check_legal(&d.netlist, &r.placement).is_legal());
    }

    fn design_with_macros() -> GeneratedDesign<f64> {
        GeneratorConfig::new("flow-macros", 300, 330)
            .with_seed(12)
            .with_utilization(0.6)
            .with_macros(2, 0.1)
            .generate::<f64>()
            .expect("ok")
    }

    #[test]
    fn sanitizer_repairs_out_of_core_fixed_cell() {
        let mut d = design_with_macros();
        let c = d.netlist.num_movable();
        d.fixed_positions.x[c] = d.netlist.region().xh + 100.0;
        let cfg = quick(ToolMode::DreamplaceGpuSim, &d);
        let r = DreamPlacer::new(cfg).place(&d).expect("repaired and placed");
        assert!(
            r.sanitize
                .finding(crate::sanitize::SanitizeIssue::FixedCellOutsideCore)
                .is_some(),
            "{}",
            r.sanitize
        );
        assert!(r.hpwl_final.is_finite());
    }

    #[test]
    fn sanitizer_fatal_report_aborts_flow() {
        let mut d = design_with_macros();
        d.fixed_positions.x[d.netlist.num_movable()] = f64::NAN;
        let cfg = quick(ToolMode::DreamplaceGpuSim, &d);
        let err = DreamPlacer::new(cfg).place(&d).expect_err("fatal");
        match err {
            FlowError::Sanitize(ref report) => assert!(report.is_fatal()),
            ref other => panic!("unexpected error {other}"),
        }
        assert!(
            err.diagnosis().starts_with("sanitize:"),
            "{}",
            err.diagnosis()
        );
    }
}
