//! Design sanitizer: classifies malformed-design findings as repairable or
//! fatal before the flow touches the numerics.
//!
//! Runs after Bookshelf parsing (which deliberately stays byte-faithful)
//! and before global placement. Repairable findings are fixed in a copy of
//! the design — the input is never mutated — and summarized in a
//! [`SanitizeReport`] attached to the flow result; fatal findings abort
//! the flow with `FlowError::Sanitize` before any stage can trip over
//! them.
//!
//! The clean path is free: a design with no findings is only scanned, and
//! `None` is returned instead of a rebuilt copy, so golden regressions
//! stay bit-identical.

use std::fmt;

use dp_netlist::{Netlist, NetlistBuilder, Placement};
use dp_num::Float;

/// One class of design defect the sanitizer recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanitizeIssue {
    /// A fixed cell's rectangle extends outside the core region
    /// (repairable: the cell is clamped inside).
    FixedCellOutsideCore,
    /// A pin offset lies outside its cell's rectangle (repairable: the
    /// offset is clamped to the cell's half-extent).
    PinOffsetOutsideCell,
    /// A net carries duplicate pins — same cell, same offset (repairable:
    /// duplicates beyond the first are dropped).
    DuplicatePins,
    /// A movable cell is wider or taller than the core region
    /// (repairable: the cell is shrunk to fit).
    OversizedMovable,
    /// A cell has a non-finite or negative width/height (fatal: no
    /// geometric repair is meaningful).
    NonFiniteCellSize,
    /// A fixed cell has a non-finite position (fatal: its blockage
    /// footprint is undefined).
    NonFiniteFixedPosition,
    /// The netlist carries no row grid, so legalization cannot run
    /// (fatal for the full flow).
    MissingRows,
    /// The core region has zero, negative, or non-finite extent (fatal).
    DegenerateRegion,
}

impl SanitizeIssue {
    /// Whether the flow must abort on this issue.
    pub fn is_fatal(self) -> bool {
        matches!(
            self,
            SanitizeIssue::NonFiniteCellSize
                | SanitizeIssue::NonFiniteFixedPosition
                | SanitizeIssue::MissingRows
                | SanitizeIssue::DegenerateRegion
        )
    }

    /// Short label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            SanitizeIssue::FixedCellOutsideCore => "fixed-cell-outside-core",
            SanitizeIssue::PinOffsetOutsideCell => "pin-offset-outside-cell",
            SanitizeIssue::DuplicatePins => "duplicate-pins",
            SanitizeIssue::OversizedMovable => "oversized-movable",
            SanitizeIssue::NonFiniteCellSize => "non-finite-cell-size",
            SanitizeIssue::NonFiniteFixedPosition => "non-finite-fixed-position",
            SanitizeIssue::MissingRows => "missing-rows",
            SanitizeIssue::DegenerateRegion => "degenerate-region",
        }
    }
}

impl fmt::Display for SanitizeIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One sanitizer finding: an issue class plus how many instances were
/// seen and whether they were repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizeFinding {
    /// The defect class.
    pub issue: SanitizeIssue,
    /// Number of instances (cells, pins, or nets depending on the issue).
    pub count: usize,
    /// Whether the instances were repaired in the returned design copy
    /// (always `false` for fatal issues).
    pub repaired: bool,
}

impl fmt::Display for SanitizeFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = if self.repaired {
            "repaired"
        } else if self.issue.is_fatal() {
            "fatal"
        } else {
            "found"
        };
        write!(f, "{} x{} ({status})", self.issue, self.count)
    }
}

/// Structured result of a sanitizer run; attached to the flow result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Every finding, fatal or repaired.
    pub findings: Vec<SanitizeFinding>,
}

impl SanitizeReport {
    /// True when the design had no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True when any finding is fatal — the flow must abort.
    pub fn is_fatal(&self) -> bool {
        self.findings.iter().any(|f| f.issue.is_fatal())
    }

    /// Findings of a given class, if present.
    pub fn finding(&self, issue: SanitizeIssue) -> Option<&SanitizeFinding> {
        self.findings.iter().find(|f| f.issue == issue)
    }

    fn push(&mut self, issue: SanitizeIssue, count: usize, repaired: bool) {
        if count > 0 {
            self.findings.push(SanitizeFinding {
                issue,
                count,
                repaired,
            });
        }
    }
}

impl fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "clean");
        }
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{finding}")?;
        }
        Ok(())
    }
}

/// A repaired design copy: the rebuilt netlist plus the (possibly
/// clamped) fixed-cell positions.
pub type RepairedDesign<T> = (Netlist<T>, Placement<T>);

/// Scans a design for defects and repairs the repairable ones.
///
/// Returns the report plus `Some((netlist, fixed_positions))` when repairs
/// changed the design; `None` means the inputs can be used as-is (either
/// clean, or only fatal findings — check [`SanitizeReport::is_fatal`]).
pub fn sanitize_design<T: Float>(
    nl: &Netlist<T>,
    fixed: &Placement<T>,
) -> (SanitizeReport, Option<RepairedDesign<T>>) {
    let mut report = SanitizeReport::default();
    let region = nl.region();

    // --- fatal scans -----------------------------------------------------
    let (rw, rh) = (region.width().to_f64(), region.height().to_f64());
    if !rw.is_finite() || !rh.is_finite() || rw <= 0.0 || rh <= 0.0 {
        report.push(SanitizeIssue::DegenerateRegion, 1, false);
    }
    if nl.rows().is_none() {
        report.push(SanitizeIssue::MissingRows, 1, false);
    }
    let bad_sizes = (0..nl.num_cells())
        .filter(|&c| {
            let (w, h) = (nl.cell_widths()[c].to_f64(), nl.cell_heights()[c].to_f64());
            !w.is_finite() || !h.is_finite() || w < 0.0 || h < 0.0
        })
        .count();
    report.push(SanitizeIssue::NonFiniteCellSize, bad_sizes, false);
    let bad_fixed = (nl.num_movable()..nl.num_cells())
        .filter(|&c| !fixed.x[c].to_f64().is_finite() || !fixed.y[c].to_f64().is_finite())
        .count();
    report.push(SanitizeIssue::NonFiniteFixedPosition, bad_fixed, false);
    if report.is_fatal() {
        // Geometry is undefined; repair scans below would misclassify.
        return (report, None);
    }

    // --- repairable scans ------------------------------------------------
    // Oversized movables: wider/taller than the core can ever host.
    let mut oversized = 0usize;
    let mut widths: Vec<T> = nl.cell_widths().to_vec();
    let mut heights: Vec<T> = nl.cell_heights().to_vec();
    for c in 0..nl.num_movable() {
        let shrink_w = widths[c] > region.width();
        let shrink_h = heights[c] > region.height();
        if shrink_w || shrink_h {
            oversized += 1;
            if shrink_w {
                widths[c] = region.width();
            }
            if shrink_h {
                heights[c] = region.height();
            }
        }
    }

    // Pin offsets outside the (possibly shrunk) cell rectangle, and
    // duplicate pins (same cell, same offset) within a net.
    let mut clamped_pins = 0usize;
    let mut duplicate_pins = 0usize;
    for net in nl.nets() {
        let mut seen: Vec<(usize, T, T)> = Vec::new();
        for &p in nl.net_pins(net) {
            let cell = nl.pin_cell(p).index();
            let (dx, dy) = nl.pin_offset(p);
            let (hx, hy) = (widths[cell] * T::HALF, heights[cell] * T::HALF);
            let (cx, cy) = (dx.clamp(-hx, hx), dy.clamp(-hy, hy));
            if cx != dx || cy != dy {
                clamped_pins += 1;
            }
            if seen.iter().any(|&(c, x, y)| c == cell && x == cx && y == cy) {
                duplicate_pins += 1;
            } else {
                seen.push((cell, cx, cy));
            }
        }
    }

    // Fixed cells poking outside the core: clamp the center so the
    // rectangle fits (cells larger than the core center on it).
    let mut clamped_fixed = 0usize;
    let mut fixed_repaired = fixed.clone();
    for c in nl.num_movable()..nl.num_cells() {
        let (hx, hy) = (
            nl.cell_widths()[c] * T::HALF,
            nl.cell_heights()[c] * T::HALF,
        );
        let lo_x = (region.xl + hx).min(region.xh - hx);
        let hi_x = (region.xh - hx).max(region.xl + hx);
        let lo_y = (region.yl + hy).min(region.yh - hy);
        let hi_y = (region.yh - hy).max(region.yl + hy);
        let nx = fixed.x[c].clamp(lo_x, hi_x);
        let ny = fixed.y[c].clamp(lo_y, hi_y);
        if nx != fixed.x[c] || ny != fixed.y[c] {
            clamped_fixed += 1;
            fixed_repaired.x[c] = nx;
            fixed_repaired.y[c] = ny;
        }
    }

    report.push(SanitizeIssue::OversizedMovable, oversized, true);
    report.push(SanitizeIssue::PinOffsetOutsideCell, clamped_pins, true);
    report.push(SanitizeIssue::DuplicatePins, duplicate_pins, true);
    report.push(SanitizeIssue::FixedCellOutsideCore, clamped_fixed, true);

    let needs_rebuild = oversized > 0 || clamped_pins > 0 || duplicate_pins > 0;
    if !needs_rebuild && clamped_fixed == 0 {
        return (report, None);
    }

    let repaired_nl = if needs_rebuild {
        match rebuild_repaired(nl, &widths, &heights) {
            Ok(rebuilt) => rebuilt,
            Err(_) => {
                // The builder refused the repaired design; treat as fatal
                // rather than silently proceeding with the broken one.
                report.push(SanitizeIssue::DegenerateRegion, 1, false);
                return (report, None);
            }
        }
    } else {
        nl.clone()
    };
    (report, Some((repaired_nl, fixed_repaired)))
}

/// Rebuilds the netlist with repaired sizes, clamped pin offsets, and
/// duplicate pins dropped. Cell and net order is preserved, so movable /
/// fixed indices (and thus `fixed_positions`) stay valid.
fn rebuild_repaired<T: Float>(
    nl: &Netlist<T>,
    widths: &[T],
    heights: &[T],
) -> Result<Netlist<T>, dp_netlist::NetlistError> {
    let region = nl.region();
    let mut b = NetlistBuilder::new(region.xl, region.yl, region.xh, region.yh)
        .allow_degenerate_nets(true);
    if let Some(rows) = nl.rows() {
        b = b.with_rows(rows.clone());
    }
    let n_mov = nl.num_movable();
    let cells: Vec<_> = (0..nl.num_cells())
        .map(|c| {
            if c < n_mov {
                b.add_movable_cell(widths[c], heights[c])
            } else {
                b.add_fixed_cell(widths[c], heights[c])
            }
        })
        .collect();
    for net in nl.nets() {
        let mut seen: Vec<(usize, T, T)> = Vec::new();
        let mut pins = Vec::with_capacity(nl.net_pins(net).len());
        for &p in nl.net_pins(net) {
            let cell = nl.pin_cell(p).index();
            let (dx, dy) = nl.pin_offset(p);
            let (hx, hy) = (widths[cell] * T::HALF, heights[cell] * T::HALF);
            let (cx, cy) = (dx.clamp(-hx, hx), dy.clamp(-hy, hy));
            if seen.iter().any(|&(c, x, y)| c == cell && x == cx && y == cy) {
                continue;
            }
            seen.push((cell, cx, cy));
            pins.push((cells[cell], cx, cy));
        }
        b.add_net(nl.net_weight(net), pins)?;
    }
    b.build()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_gen::GeneratorConfig;

    fn clean_design() -> dp_gen::GeneratedDesign<f64> {
        // Includes fixed macros so fixed-cell scans have cells to check.
        GeneratorConfig::new("sane", 80, 90)
            .with_seed(5)
            .with_macros(2, 0.1)
            .generate::<f64>()
            .expect("ok")
    }

    #[test]
    fn clean_design_returns_no_copy() {
        let d = clean_design();
        let (report, repaired) = sanitize_design(&d.netlist, &d.fixed_positions);
        assert!(report.is_clean(), "{report}");
        assert!(repaired.is_none());
    }

    #[test]
    fn fixed_cell_outside_core_is_clamped() {
        let d = clean_design();
        let mut fixed = d.fixed_positions.clone();
        let c = d.netlist.num_movable();
        let region = d.netlist.region();
        fixed.x[c] = region.xh + 50.0; // push one fixed cell far outside
        let (report, repaired) = sanitize_design(&d.netlist, &fixed);
        let f = report
            .finding(SanitizeIssue::FixedCellOutsideCore)
            .expect("found");
        assert!(f.repaired && f.count >= 1);
        let (_, fixed2) = repaired.expect("repaired copy");
        let hx = d.netlist.cell_widths()[c] * 0.5;
        assert!(fixed2.x[c] + hx <= region.xh + 1e-9);
    }

    #[test]
    fn duplicate_pins_are_dropped() {
        use dp_netlist::{NetlistBuilder, RowGrid};
        let rows = RowGrid::uniform(0.0, 0.0, 40.0, 16.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 40.0, 16.0)
            .with_rows(rows)
            .allow_degenerate_nets(true);
        let a = b.add_movable_cell(4.0, 8.0);
        let c = b.add_movable_cell(4.0, 8.0);
        b.add_net(
            1.0,
            vec![(a, 0.0, 0.0), (a, 0.0, 0.0), (a, 0.0, 0.0), (c, 0.0, 0.0)],
        )
        .expect("valid");
        let nl = b.build().expect("valid");
        let fixed = Placement::zeros(nl.num_cells());
        let (report, repaired) = sanitize_design(&nl, &fixed);
        let f = report.finding(SanitizeIssue::DuplicatePins).expect("found");
        assert_eq!(f.count, 2);
        let (nl2, _) = repaired.expect("repaired copy");
        assert_eq!(nl2.num_pins(), nl.num_pins() - 2);
        assert_eq!(nl2.num_nets(), nl.num_nets());
    }

    #[test]
    fn oversized_movable_is_shrunk_and_pins_reclamped() {
        use dp_netlist::{NetlistBuilder, RowGrid};
        let rows = RowGrid::uniform(0.0, 0.0, 40.0, 16.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 40.0, 16.0).with_rows(rows);
        let a = b.add_movable_cell(200.0, 8.0); // wider than the 40-unit core
        let c = b.add_movable_cell(4.0, 8.0);
        b.add_net(1.0, vec![(a, 90.0, 0.0), (c, 0.0, 0.0)]).expect("valid");
        let nl = b.build().expect("valid");
        let fixed = Placement::zeros(nl.num_cells());
        let (report, repaired) = sanitize_design(&nl, &fixed);
        assert!(report.finding(SanitizeIssue::OversizedMovable).is_some());
        // The 90-unit pin offset now exceeds the shrunk 40-unit width.
        assert!(report.finding(SanitizeIssue::PinOffsetOutsideCell).is_some());
        let (nl2, _) = repaired.expect("repaired copy");
        assert_eq!(nl2.cell_widths()[0], 40.0);
        for net in nl2.nets() {
            for &p in nl2.net_pins(net) {
                let cell = nl2.pin_cell(p).index();
                let (dx, _) = nl2.pin_offset(p);
                assert!(dx.abs() <= nl2.cell_widths()[cell] * 0.5 + 1e-9);
            }
        }
    }

    #[test]
    fn non_finite_fixed_position_is_fatal() {
        let d = clean_design();
        let mut fixed = d.fixed_positions.clone();
        fixed.y[d.netlist.num_movable()] = f64::NAN;
        let (report, repaired) = sanitize_design(&d.netlist, &fixed);
        assert!(report.is_fatal());
        assert!(repaired.is_none());
        assert!(report
            .finding(SanitizeIssue::NonFiniteFixedPosition)
            .is_some());
    }

    #[test]
    fn report_display_is_one_line() {
        let d = clean_design();
        let mut fixed = d.fixed_positions.clone();
        fixed.x[d.netlist.num_movable()] = 1e9;
        let (report, _) = sanitize_design(&d.netlist, &fixed);
        let s = report.to_string();
        assert!(s.contains("fixed-cell-outside-core"), "{s}");
        assert!(!s.contains('\n'));
    }
}
