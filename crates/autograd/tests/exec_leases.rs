//! Workspace-lease protocol under adversarial use: key collisions,
//! overlapping leases, shrink/grow cycles, and counter accounting.

use dp_autograd::ExecCtx;

#[test]
fn overlapping_leases_of_one_key_are_distinct_and_zeroed() {
    let mut ctx = ExecCtx::<f64>::serial();
    // Two live leases of the same key: the second cannot recycle (the
    // registry slot is empty while the first is out) and must be a
    // separate, zeroed buffer — not an alias of the first.
    let mut a = ctx.lease("collide", 6);
    let b = ctx.lease("collide", 6);
    assert_eq!(b, vec![0.0; 6]);
    a.iter_mut().for_each(|v| *v = 3.0);
    assert_eq!(b, vec![0.0; 6], "second lease aliases the first");

    ctx.release("collide", a);
    ctx.release("collide", b);
    // Only the last released buffer is retained for recycling; the next
    // lease must still come back zeroed even though `b` was zero and `a`
    // was dirty when released.
    let c = ctx.lease("collide", 6);
    assert_eq!(c, vec![0.0; 6]);

    let s = ctx.summary();
    let (_, ws) = s
        .workspaces
        .iter()
        .find(|(k, _)| *k == "collide")
        .copied()
        .expect("tracked");
    assert_eq!(ws.uses, 3);
    // Lease 1 and 2 both saw an empty slot; only lease 3 recycled.
    assert_eq!(ws.reuses, 1);
}

#[test]
fn distinct_keys_never_share_buffers_or_counters() {
    let mut ctx = ExecCtx::<f32>::serial();
    let mut a = ctx.lease("wl.scratch", 4);
    a.iter_mut().for_each(|v| *v = 9.0);
    ctx.release("wl.scratch", a);

    // A different key must not observe wl.scratch's released buffer
    // (keyed recycling, not a shared free list) — it allocates fresh.
    let b = ctx.lease("density.scratch", 4);
    assert_eq!(b, vec![0.0; 4]);
    ctx.release("density.scratch", b);

    let s = ctx.summary();
    assert_eq!(s.workspaces.len(), 2);
    for (key, ws) in s.workspaces {
        assert_eq!(ws.uses, 1, "{key}");
        assert_eq!(ws.reuses, 0, "{key}");
    }
}

#[test]
fn shrink_and_grow_cycles_stay_zeroed_and_exact_length() {
    let mut ctx = ExecCtx::<f64>::serial();
    for &len in &[16usize, 4, 32, 1, 0, 8] {
        let buf = ctx.lease("resize", len);
        assert_eq!(buf.len(), len);
        assert!(buf.iter().all(|&v| v == 0.0), "len {len} not zeroed");
        ctx.release("resize", {
            let mut b = buf;
            b.iter_mut().for_each(|v| *v = f64::NAN);
            b
        });
    }
    let s = ctx.summary();
    let (_, ws) = s
        .workspaces
        .iter()
        .find(|(k, _)| *k == "resize")
        .copied()
        .expect("tracked");
    assert_eq!(ws.uses, 6);
    assert_eq!(ws.reuses, 5);
    // Capacity high-water mark: bytes reflect the largest lease so far.
    assert!(ws.bytes >= 32 * std::mem::size_of::<f64>());
}

#[test]
fn release_under_a_foreign_key_does_not_corrupt_the_owner() {
    let mut ctx = ExecCtx::<f64>::serial();
    let a = ctx.lease("owner", 3);
    ctx.release("owner", a);

    // A buggy kernel returns somebody's buffer under its own key; the
    // owner's next lease must still be exact-length and zeroed.
    let mut stray = ctx.lease("other", 9);
    stray.iter_mut().for_each(|v| *v = 5.0);
    ctx.release("owner", stray);

    let buf = ctx.lease("owner", 3);
    assert_eq!(buf, vec![0.0; 3]);
}
