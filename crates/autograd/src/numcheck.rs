//! Finite-difference gradient validation.
//!
//! Every custom operator in a deep-learning toolkit is validated against
//! numerical differentiation; the wirelength and density operators' test
//! suites do the same through [`check_gradient`].

use dp_netlist::{Netlist, Placement};
use dp_num::Float;

use crate::exec::ExecCtx;
use crate::operator::{Gradient, Objective, Operator};

/// Result of a finite-difference check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientReport {
    /// Largest absolute difference between analytic and numeric entries.
    pub max_abs_err: f64,
    /// Largest relative difference (absolute error over
    /// `max(|analytic|, |numeric|, 1e-12)`).
    pub max_rel_err: f64,
    /// Number of coordinates compared.
    pub checked: usize,
}

impl GradientReport {
    /// `true` when both error measures are at most `tol`.
    pub fn within(&self, tol: f64) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Compares an operator's analytic gradient against central finite
/// differences on the movable coordinates listed in `cells` (all movable
/// cells when empty).
///
/// `eps` is the half-step; `1e-5` to `1e-6` works well in `f64`.
///
/// # Examples
///
/// See the wirelength operator tests, which assert
/// `check_gradient(..).within(1e-5)`.
pub fn check_gradient<T: Float>(
    op: &mut dyn Operator<T>,
    netlist: &Netlist<T>,
    placement: &Placement<T>,
    cells: &[usize],
    eps: f64,
) -> GradientReport {
    let n = netlist.num_cells();
    let mut grad = Gradient::zeros(n);
    // Finite differencing is a validation tool, not a hot path: a private
    // serial ctx keeps the public signature free of executor plumbing.
    let mut ctx = ExecCtx::serial();
    // Forward first so backward may use cached buffers.
    let _ = op.forward(netlist, placement, &mut ctx);
    op.backward(netlist, placement, &mut grad, &mut ctx);

    let all: Vec<usize>;
    let cells = if cells.is_empty() {
        all = (0..netlist.num_movable()).collect();
        &all
    } else {
        cells
    };

    let mut work = placement.clone();
    let h = T::from_f64(eps);
    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    let mut checked = 0usize;

    let mut compare = |analytic: T, numeric: f64| {
        let a = analytic.to_f64();
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1e-12);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
        checked += 1;
    };

    for &i in cells {
        // x component
        let orig = work.x[i];
        work.x[i] = orig + h;
        let fp = op.forward(netlist, &work, &mut ctx).to_f64();
        work.x[i] = orig - h;
        let fm = op.forward(netlist, &work, &mut ctx).to_f64();
        work.x[i] = orig;
        compare(grad.x[i], (fp - fm) / (2.0 * eps));

        // y component
        let orig = work.y[i];
        work.y[i] = orig + h;
        let fp = op.forward(netlist, &work, &mut ctx).to_f64();
        work.y[i] = orig - h;
        let fm = op.forward(netlist, &work, &mut ctx).to_f64();
        work.y[i] = orig;
        compare(grad.y[i], (fp - fm) / (2.0 * eps));
    }

    // Restore operator caches to the unperturbed placement.
    let _ = op.forward(netlist, placement, &mut ctx);

    GradientReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        checked,
    }
}

/// Deterministic non-zero seed pattern for the accumulation check: any
/// backward that *assigns* instead of *accumulating* destroys it.
fn seed_pattern(i: usize) -> f64 {
    0.5 + 0.25 * ((i % 7) as f64) - 0.125 * ((i % 3) as f64)
}

/// [`check_gradient`] with a **non-unit upstream gradient**: the analytic
/// gradient is produced by an [`Objective`] holding the operator at weight
/// `scale` and accumulated into a buffer pre-seeded with a non-zero
/// pattern, then compared against `scale` times central finite differences.
///
/// This catches two bug classes the unit-seed check is blind to:
///
/// * a `backward` (or a fused `forward_backward` override, like the merged
///   wirelength kernel) that *overwrites* the gradient buffer instead of
///   accumulating into it — the pre-seeded pattern is destroyed;
/// * an operator whose fused path bakes in an implicit upstream gradient of
///   `1.0` and therefore ignores the weight its term carries in the
///   objective — the analytic result fails to scale with `scale`.
///
/// Pass a `scale` different from `1.0` (e.g. `0.37`) for the full check;
/// with `scale == 1.0` only the accumulation property is exercised.
pub fn check_gradient_scaled<T: Float>(
    op: &mut dyn Operator<T>,
    netlist: &Netlist<T>,
    placement: &Placement<T>,
    cells: &[usize],
    eps: f64,
    scale: f64,
) -> GradientReport {
    let n = netlist.num_cells();
    let mut ctx = ExecCtx::serial();

    let seed = |g: &mut Gradient<T>| {
        for i in 0..n {
            g.x[i] = T::from_f64(seed_pattern(i));
            g.y[i] = T::from_f64(-seed_pattern(i + 1));
        }
    };
    let unseed = |g: &mut Gradient<T>| {
        for i in 0..n {
            g.x[i] -= T::from_f64(seed_pattern(i));
            g.y[i] -= T::from_f64(-seed_pattern(i + 1));
        }
    };

    // Direct path into a pre-seeded buffer: `backward` must *accumulate*
    // (an assignment destroys the seed and the residual comes out wrong).
    let mut direct = Gradient::zeros(n);
    seed(&mut direct);
    let _ = op.forward(netlist, placement, &mut ctx);
    op.backward(netlist, placement, &mut direct, &mut ctx);
    unseed(&mut direct);

    // Objective path at weight `scale`, also pre-seeded: exercises the
    // fused `forward_backward` (merged kernels override it) and the weight
    // application the placement engine relies on.
    let mut grad = Gradient::zeros(n);
    seed(&mut grad);
    {
        let mut obj = Objective::new();
        obj.push(T::from_f64(scale), op);
        let _ = obj.forward_backward(netlist, placement, &mut grad, &mut ctx);
    }
    unseed(&mut grad);

    let all: Vec<usize>;
    let cells = if cells.is_empty() {
        all = (0..netlist.num_movable()).collect();
        &all
    } else {
        cells
    };

    let mut work = placement.clone();
    let h = T::from_f64(eps);
    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    let mut checked = 0usize;

    let mut compare = |analytic: T, numeric: f64| {
        let a = analytic.to_f64();
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1e-12);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
        checked += 1;
    };

    for &i in cells {
        let orig = work.x[i];
        work.x[i] = orig + h;
        let fp = op.forward(netlist, &work, &mut ctx).to_f64();
        work.x[i] = orig - h;
        let fm = op.forward(netlist, &work, &mut ctx).to_f64();
        work.x[i] = orig;
        let fd = (fp - fm) / (2.0 * eps);
        compare(direct.x[i], fd);
        compare(grad.x[i], scale * fd);

        let orig = work.y[i];
        work.y[i] = orig + h;
        let fp = op.forward(netlist, &work, &mut ctx).to_f64();
        work.y[i] = orig - h;
        let fm = op.forward(netlist, &work, &mut ctx).to_f64();
        work.y[i] = orig;
        let fd = (fp - fm) / (2.0 * eps);
        compare(direct.y[i], fd);
        compare(grad.y[i], scale * fd);
    }

    // Restore operator caches to the unperturbed placement.
    let _ = op.forward(netlist, placement, &mut ctx);

    GradientReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        checked,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::NetlistBuilder;

    struct Quadratic;

    impl Operator<f64> for Quadratic {
        fn name(&self) -> &'static str {
            "quadratic"
        }
        fn forward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) -> f64 {
            (0..nl.num_movable())
                .map(|i| p.x[i] * p.x[i] + 0.5 * p.y[i] * p.y[i] * p.y[i])
                .sum()
        }
        fn backward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            g: &mut Gradient<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) {
            for i in 0..nl.num_movable() {
                g.x[i] += 2.0 * p.x[i];
                g.y[i] += 1.5 * p.y[i] * p.y[i];
            }
        }
    }

    struct WrongGradient;

    impl Operator<f64> for WrongGradient {
        fn name(&self) -> &'static str {
            "wrong"
        }
        fn forward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) -> f64 {
            (0..nl.num_movable()).map(|i| p.x[i] * p.x[i]).sum()
        }
        fn backward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            g: &mut Gradient<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) {
            for i in 0..nl.num_movable() {
                g.x[i] += 3.0 * p.x[i]; // deliberately wrong factor
            }
        }
    }

    fn netlist() -> (Netlist<f64>, Placement<f64>) {
        let mut b = NetlistBuilder::new(0.0, 0.0, 10.0, 10.0);
        let a = b.add_movable_cell(1.0, 1.0);
        let c = b.add_movable_cell(1.0, 1.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![1.25, -0.5];
        p.y = vec![2.0, 0.75];
        (nl, p)
    }

    #[test]
    fn accepts_correct_gradient() {
        let (nl, p) = netlist();
        let report = check_gradient(&mut Quadratic, &nl, &p, &[], 1e-5);
        assert_eq!(report.checked, 4);
        assert!(report.within(1e-6), "{report:?}");
    }

    #[test]
    fn rejects_wrong_gradient() {
        let (nl, p) = netlist();
        let report = check_gradient(&mut WrongGradient, &nl, &p, &[], 1e-5);
        assert!(!report.within(1e-3), "{report:?}");
    }

    #[test]
    fn subset_of_cells_is_respected() {
        let (nl, p) = netlist();
        let report = check_gradient(&mut Quadratic, &nl, &p, &[1], 1e-5);
        assert_eq!(report.checked, 2);
    }

    /// Backward that *assigns* instead of accumulating: correct values, but
    /// any seed already in the buffer is destroyed.
    struct ClobberingGradient;

    impl Operator<f64> for ClobberingGradient {
        fn name(&self) -> &'static str {
            "clobber"
        }
        fn forward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) -> f64 {
            (0..nl.num_movable()).map(|i| p.x[i] * p.x[i]).sum()
        }
        fn backward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            g: &mut Gradient<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) {
            for i in 0..nl.num_movable() {
                g.x[i] = 2.0 * p.x[i]; // `=` clobbers the upstream seed
                g.y[i] = 0.0;
            }
        }
    }

    /// Fused path inconsistent with the unfused one — the bug class of a
    /// merged kernel that bakes an implicit unit upstream gradient into its
    /// fused write and therefore ignores the weight its term carries.
    struct FusedScaleBug;

    impl Operator<f64> for FusedScaleBug {
        fn name(&self) -> &'static str {
            "fused-scale-bug"
        }
        fn forward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) -> f64 {
            (0..nl.num_movable()).map(|i| p.x[i] * p.x[i]).sum()
        }
        fn backward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            g: &mut Gradient<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) {
            for i in 0..nl.num_movable() {
                g.x[i] += 2.0 * p.x[i];
            }
        }
        fn forward_backward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            g: &mut Gradient<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) -> f64 {
            // Writes double the true gradient: invisible to the separate
            // forward/backward check, fatal through the objective.
            for i in 0..nl.num_movable() {
                g.x[i] += 4.0 * p.x[i];
            }
            (0..nl.num_movable()).map(|i| p.x[i] * p.x[i]).sum()
        }
    }

    #[test]
    fn scaled_check_accepts_correct_gradient() {
        let (nl, p) = netlist();
        let report = check_gradient_scaled(&mut Quadratic, &nl, &p, &[], 1e-5, 0.37);
        assert_eq!(report.checked, 8);
        assert!(report.within(1e-6), "{report:?}");
    }

    #[test]
    fn scaled_check_rejects_clobbering_backward() {
        let (nl, p) = netlist();
        // The unit-seed check is blind to the clobber...
        let unit = check_gradient(&mut ClobberingGradient, &nl, &p, &[], 1e-5);
        assert!(unit.within(1e-6), "{unit:?}");
        // ...the seeded check is not.
        let seeded = check_gradient_scaled(&mut ClobberingGradient, &nl, &p, &[], 1e-5, 0.37);
        assert!(!seeded.within(1e-3), "{seeded:?}");
    }

    #[test]
    fn scaled_check_rejects_fused_path_ignoring_weight() {
        let (nl, p) = netlist();
        let unit = check_gradient(&mut FusedScaleBug, &nl, &p, &[], 1e-5);
        assert!(unit.within(1e-6), "{unit:?}");
        let seeded = check_gradient_scaled(&mut FusedScaleBug, &nl, &p, &[], 1e-5, 0.37);
        assert!(!seeded.within(1e-3), "{seeded:?}");
    }
}
