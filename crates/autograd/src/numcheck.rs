//! Finite-difference gradient validation.
//!
//! Every custom operator in a deep-learning toolkit is validated against
//! numerical differentiation; the wirelength and density operators' test
//! suites do the same through [`check_gradient`].

use dp_netlist::{Netlist, Placement};
use dp_num::Float;

use crate::exec::ExecCtx;
use crate::operator::{Gradient, Operator};

/// Result of a finite-difference check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientReport {
    /// Largest absolute difference between analytic and numeric entries.
    pub max_abs_err: f64,
    /// Largest relative difference (absolute error over
    /// `max(|analytic|, |numeric|, 1e-12)`).
    pub max_rel_err: f64,
    /// Number of coordinates compared.
    pub checked: usize,
}

impl GradientReport {
    /// `true` when both error measures are at most `tol`.
    pub fn within(&self, tol: f64) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Compares an operator's analytic gradient against central finite
/// differences on the movable coordinates listed in `cells` (all movable
/// cells when empty).
///
/// `eps` is the half-step; `1e-5` to `1e-6` works well in `f64`.
///
/// # Examples
///
/// See the wirelength operator tests, which assert
/// `check_gradient(..).within(1e-5)`.
pub fn check_gradient<T: Float>(
    op: &mut dyn Operator<T>,
    netlist: &Netlist<T>,
    placement: &Placement<T>,
    cells: &[usize],
    eps: f64,
) -> GradientReport {
    let n = netlist.num_cells();
    let mut grad = Gradient::zeros(n);
    // Finite differencing is a validation tool, not a hot path: a private
    // serial ctx keeps the public signature free of executor plumbing.
    let mut ctx = ExecCtx::serial();
    // Forward first so backward may use cached buffers.
    let _ = op.forward(netlist, placement, &mut ctx);
    op.backward(netlist, placement, &mut grad, &mut ctx);

    let all: Vec<usize>;
    let cells = if cells.is_empty() {
        all = (0..netlist.num_movable()).collect();
        &all
    } else {
        cells
    };

    let mut work = placement.clone();
    let h = T::from_f64(eps);
    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    let mut checked = 0usize;

    let mut compare = |analytic: T, numeric: f64| {
        let a = analytic.to_f64();
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1e-12);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
        checked += 1;
    };

    for &i in cells {
        // x component
        let orig = work.x[i];
        work.x[i] = orig + h;
        let fp = op.forward(netlist, &work, &mut ctx).to_f64();
        work.x[i] = orig - h;
        let fm = op.forward(netlist, &work, &mut ctx).to_f64();
        work.x[i] = orig;
        compare(grad.x[i], (fp - fm) / (2.0 * eps));

        // y component
        let orig = work.y[i];
        work.y[i] = orig + h;
        let fp = op.forward(netlist, &work, &mut ctx).to_f64();
        work.y[i] = orig - h;
        let fm = op.forward(netlist, &work, &mut ctx).to_f64();
        work.y[i] = orig;
        compare(grad.y[i], (fp - fm) / (2.0 * eps));
    }

    // Restore operator caches to the unperturbed placement.
    let _ = op.forward(netlist, placement, &mut ctx);

    GradientReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        checked,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::NetlistBuilder;

    struct Quadratic;

    impl Operator<f64> for Quadratic {
        fn name(&self) -> &'static str {
            "quadratic"
        }
        fn forward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) -> f64 {
            (0..nl.num_movable())
                .map(|i| p.x[i] * p.x[i] + 0.5 * p.y[i] * p.y[i] * p.y[i])
                .sum()
        }
        fn backward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            g: &mut Gradient<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) {
            for i in 0..nl.num_movable() {
                g.x[i] += 2.0 * p.x[i];
                g.y[i] += 1.5 * p.y[i] * p.y[i];
            }
        }
    }

    struct WrongGradient;

    impl Operator<f64> for WrongGradient {
        fn name(&self) -> &'static str {
            "wrong"
        }
        fn forward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) -> f64 {
            (0..nl.num_movable()).map(|i| p.x[i] * p.x[i]).sum()
        }
        fn backward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            g: &mut Gradient<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) {
            for i in 0..nl.num_movable() {
                g.x[i] += 3.0 * p.x[i]; // deliberately wrong factor
            }
        }
    }

    fn netlist() -> (Netlist<f64>, Placement<f64>) {
        let mut b = NetlistBuilder::new(0.0, 0.0, 10.0, 10.0);
        let a = b.add_movable_cell(1.0, 1.0);
        let c = b.add_movable_cell(1.0, 1.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![1.25, -0.5];
        p.y = vec![2.0, 0.75];
        (nl, p)
    }

    #[test]
    fn accepts_correct_gradient() {
        let (nl, p) = netlist();
        let report = check_gradient(&mut Quadratic, &nl, &p, &[], 1e-5);
        assert_eq!(report.checked, 4);
        assert!(report.within(1e-6), "{report:?}");
    }

    #[test]
    fn rejects_wrong_gradient() {
        let (nl, p) = netlist();
        let report = check_gradient(&mut WrongGradient, &nl, &p, &[], 1e-5);
        assert!(!report.within(1e-3), "{report:?}");
    }

    #[test]
    fn subset_of_cells_is_respected() {
        let (nl, p) = netlist();
        let report = check_gradient(&mut Quadratic, &nl, &p, &[1], 1e-5);
        assert_eq!(report.checked, 2);
    }
}
