//! A miniature forward/backward operator framework.
//!
//! The DREAMPlace insight (paper §II-B, Fig. 1) is that analytical placement
//! *is* neural-network training: cell locations are the trainable weights,
//! each net is a data instance whose "prediction error" is its wirelength,
//! and the density penalty is the regularizer. A deep-learning toolkit then
//! only needs two custom operators — wirelength and density — each with a
//! forward (cost) and backward (gradient) function.
//!
//! This crate is the Rust analogue of that toolkit layer:
//!
//! * [`Operator`] — a differentiable cost over cell positions with explicit
//!   `forward`, `backward`, and an optionally fused `forward_backward` (the
//!   paper's merged kernel, Algorithm 2, overrides the default);
//! * [`Gradient`] — the `(d/dx, d/dy)` arrays operators accumulate into;
//! * [`Objective`] — a weighted sum of operators, e.g.
//!   `WL(x, y) + lambda * D(x, y)` (paper Eq. (2));
//! * [`ExecCtx`] — the persistent execution context (worker pool, reusable
//!   scratch workspaces, per-op counters) every operator call receives;
//! * [`check_gradient`] — finite-difference validation used by every
//!   operator's test suite.
//!
//! # Examples
//!
//! ```
//! use dp_autograd::{ExecCtx, Gradient, Operator};
//! use dp_netlist::{Netlist, NetlistBuilder, Placement};
//!
//! /// A toy quadratic attraction to the origin.
//! struct Quadratic;
//!
//! impl Operator<f64> for Quadratic {
//!     fn name(&self) -> &'static str { "quadratic" }
//!     fn forward(&mut self, nl: &Netlist<f64>, p: &Placement<f64>,
//!                _ctx: &mut ExecCtx<f64>) -> f64 {
//!         (0..nl.num_movable()).map(|i| p.x[i] * p.x[i] + p.y[i] * p.y[i]).sum()
//!     }
//!     fn backward(&mut self, nl: &Netlist<f64>, p: &Placement<f64>,
//!                 g: &mut Gradient<f64>, _ctx: &mut ExecCtx<f64>) {
//!         for i in 0..nl.num_movable() {
//!             g.x[i] += 2.0 * p.x[i];
//!             g.y[i] += 2.0 * p.y[i];
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), dp_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new(0.0, 0.0, 10.0, 10.0);
//! let a = b.add_movable_cell(1.0, 1.0);
//! let c = b.add_movable_cell(1.0, 1.0);
//! b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])?;
//! let nl = b.build()?;
//! let mut p = Placement::zeros(nl.num_cells());
//! p.x[0] = 3.0;
//! let mut op = Quadratic;
//! let mut ctx = ExecCtx::serial();
//! let mut g = Gradient::zeros(nl.num_cells());
//! let cost = op.forward_backward(&nl, &p, &mut g, &mut ctx);
//! assert_eq!(cost, 9.0);
//! assert_eq!(g.x[0], 6.0);
//! # Ok(())
//! # }
//! ```

// Library code must surface structured errors instead of panicking;
// tests opt out module-by-module.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod exec;
pub mod numcheck;
pub mod operator;

pub use exec::{ExecCtx, ExecSummary, OpCounter, WorkspaceCounter};
pub use numcheck::{check_gradient, check_gradient_scaled, GradientReport};
pub use operator::{Gradient, Objective, Operator};
