//! The operator trait, gradient buffers, and weighted objectives.

use dp_netlist::{Netlist, Placement};
use dp_num::Float;

use crate::exec::ExecCtx;

/// Gradient of a scalar cost with respect to every cell's `(x, y)`.
///
/// Operators *accumulate* into these arrays, so several terms can share one
/// buffer; call [`Gradient::reset`] between optimizer iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradient<T> {
    /// d cost / d x, indexed by cell id.
    pub x: Vec<T>,
    /// d cost / d y, indexed by cell id.
    pub y: Vec<T>,
}

impl<T: Float> Gradient<T> {
    /// All-zero gradient for `n` cells.
    pub fn zeros(n: usize) -> Self {
        Self {
            x: vec![T::ZERO; n],
            y: vec![T::ZERO; n],
        }
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when the buffer covers no cells.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Zeroes both component arrays.
    pub fn reset(&mut self) {
        self.x.iter_mut().for_each(|v| *v = T::ZERO);
        self.y.iter_mut().for_each(|v| *v = T::ZERO);
    }

    /// Adds `scale * other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the buffers have different lengths.
    pub fn axpy(&mut self, scale: T, other: &Gradient<T>) {
        assert_eq!(self.len(), other.len(), "gradient length mismatch");
        for i in 0..self.x.len() {
            self.x[i] += scale * other.x[i];
            self.y[i] += scale * other.y[i];
        }
    }

    /// Scales both components in place.
    pub fn scale(&mut self, s: T) {
        self.x.iter_mut().for_each(|v| *v *= s);
        self.y.iter_mut().for_each(|v| *v *= s);
    }

    /// Sum of `|g|` over the first `n` cells — the norm ePlace uses to
    /// initialize the density weight (paper §III-C context).
    pub fn l1_norm(&self, n: usize) -> T {
        self.x[..n]
            .iter()
            .map(|v| v.abs())
            .chain(self.y[..n].iter().map(|v| v.abs()))
            .sum()
    }
}

/// A differentiable cost term over cell positions.
///
/// This is the Rust analogue of a custom toolkit op with forward and
/// backward functions (paper §II-B). The provided
/// [`Operator::forward_backward`] simply chains the two; fused
/// implementations (the paper's merged kernel, Algorithm 2) override it.
///
/// Every method receives the persistent [`ExecCtx`]: the worker pool for
/// kernel launches, reusable scratch workspaces, and per-op counters. The
/// caller (the placement engine, a test, a bench) constructs the ctx once
/// and keeps it alive across iterations.
pub trait Operator<T: Float> {
    /// Short human-readable name used in timing breakdowns and counters.
    fn name(&self) -> &'static str;

    /// Computes the cost at `placement`.
    fn forward(
        &mut self,
        netlist: &Netlist<T>,
        placement: &Placement<T>,
        ctx: &mut ExecCtx<T>,
    ) -> T;

    /// Accumulates the gradient at `placement` into `grad`.
    ///
    /// May rely on buffers computed by the immediately preceding `forward`
    /// at the same placement, mirroring toolkit autograd semantics.
    fn backward(
        &mut self,
        netlist: &Netlist<T>,
        placement: &Placement<T>,
        grad: &mut Gradient<T>,
        ctx: &mut ExecCtx<T>,
    );

    /// Computes cost and gradient in one pass. Default: `forward` then
    /// `backward`.
    fn forward_backward(
        &mut self,
        netlist: &Netlist<T>,
        placement: &Placement<T>,
        grad: &mut Gradient<T>,
        ctx: &mut ExecCtx<T>,
    ) -> T {
        let cost = self.forward(netlist, placement, ctx);
        self.backward(netlist, placement, grad, ctx);
        cost
    }
}

/// A weighted sum of operators: the relaxed objective
/// `sum_e WL(e; x, y) + lambda * D(x, y)` of paper Eq. (2).
///
/// # Examples
///
/// See the crate-level example for defining an operator; an `Objective`
/// combines several with per-term weights that schedulers update between
/// iterations.
pub struct Objective<'a, T> {
    terms: Vec<(T, &'a mut dyn Operator<T>)>,
}

impl<'a, T: Float> Objective<'a, T> {
    /// Creates an empty objective.
    pub fn new() -> Self {
        Self { terms: Vec::new() }
    }

    /// Adds a term with the given weight; returns its index.
    pub fn push(&mut self, weight: T, op: &'a mut dyn Operator<T>) -> usize {
        self.terms.push((weight, op));
        self.terms.len() - 1
    }

    /// Updates the weight of term `index` (e.g. the density weight lambda).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_weight(&mut self, index: usize, weight: T) {
        self.terms[index].0 = weight;
    }

    /// The weight of term `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn weight(&self, index: usize) -> T {
        self.terms[index].0
    }

    /// Weighted total cost.
    pub fn forward(
        &mut self,
        netlist: &Netlist<T>,
        placement: &Placement<T>,
        ctx: &mut ExecCtx<T>,
    ) -> T {
        self.terms
            .iter_mut()
            .map(|(w, op)| *w * op.forward(netlist, placement, ctx))
            .sum()
    }

    /// Weighted cost plus gradient accumulation (gradient is *added* to
    /// `grad`; reset it first if a fresh gradient is wanted). The per-term
    /// scratch gradient is leased from the ctx, not allocated per call.
    pub fn forward_backward(
        &mut self,
        netlist: &Netlist<T>,
        placement: &Placement<T>,
        grad: &mut Gradient<T>,
        ctx: &mut ExecCtx<T>,
    ) -> T {
        let n = grad.len();
        let mut scratch = Gradient {
            x: ctx.lease("objective.scratch.x", n),
            y: ctx.lease("objective.scratch.y", n),
        };
        let mut total = T::ZERO;
        for (w, op) in self.terms.iter_mut() {
            scratch.reset();
            total += *w * op.forward_backward(netlist, placement, &mut scratch, ctx);
            grad.axpy(*w, &scratch);
        }
        let Gradient { x, y } = scratch;
        ctx.release("objective.scratch.x", x);
        ctx.release("objective.scratch.y", y);
        total
    }
}

impl<'a, T: Float> Default for Objective<'a, T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::NetlistBuilder;

    struct Linear {
        slope: f64,
    }

    impl Operator<f64> for Linear {
        fn name(&self) -> &'static str {
            "linear"
        }
        fn forward(
            &mut self,
            nl: &Netlist<f64>,
            p: &Placement<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) -> f64 {
            (0..nl.num_movable())
                .map(|i| self.slope * (p.x[i] + p.y[i]))
                .sum()
        }
        fn backward(
            &mut self,
            nl: &Netlist<f64>,
            _p: &Placement<f64>,
            g: &mut Gradient<f64>,
            _ctx: &mut ExecCtx<f64>,
        ) {
            for i in 0..nl.num_movable() {
                g.x[i] += self.slope;
                g.y[i] += self.slope;
            }
        }
    }

    fn tiny_netlist() -> Netlist<f64> {
        let mut b = NetlistBuilder::new(0.0, 0.0, 10.0, 10.0);
        let a = b.add_movable_cell(1.0, 1.0);
        let c = b.add_movable_cell(1.0, 1.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .expect("valid");
        b.build().expect("valid")
    }

    #[test]
    fn gradient_axpy_and_reset() {
        let mut g = Gradient::zeros(2);
        let mut h = Gradient::zeros(2);
        h.x[0] = 2.0;
        h.y[1] = -4.0;
        g.axpy(0.5, &h);
        assert_eq!(g.x[0], 1.0);
        assert_eq!(g.y[1], -2.0);
        assert_eq!(g.l1_norm(2), 3.0);
        g.reset();
        assert_eq!(g.l1_norm(2), 0.0);
    }

    #[test]
    fn objective_weights_compose() {
        let nl = tiny_netlist();
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![1.0, 2.0];
        p.y = vec![0.0, 0.0];

        let mut op1 = Linear { slope: 1.0 };
        let mut op2 = Linear { slope: 2.0 };
        let mut obj = Objective::new();
        obj.push(1.0, &mut op1);
        let density_idx = obj.push(0.5, &mut op2);

        let mut ctx = ExecCtx::serial();
        let mut g = Gradient::zeros(nl.num_cells());
        let cost = obj.forward_backward(&nl, &p, &mut g, &mut ctx);
        // term1 = 1*(1+2) = 3; term2 = 0.5 * 2*(1+2) = 3
        assert_eq!(cost, 6.0);
        // grad x per movable = 1*1 + 0.5*2 = 2
        assert_eq!(g.x[0], 2.0);

        obj.set_weight(density_idx, 2.0);
        assert_eq!(obj.weight(density_idx), 2.0);
        let cost2 = obj.forward(&nl, &p, &mut ctx);
        assert_eq!(cost2, 3.0 + 2.0 * 6.0);

        // The objective's scratch gradient comes from the ctx registry.
        let summary = ctx.summary();
        let scratch = summary
            .workspaces
            .iter()
            .find(|(k, _)| *k == "objective.scratch.x")
            .expect("leased")
            .1;
        assert_eq!(scratch.uses, 1);
    }

    #[test]
    fn objective_scratch_is_reused_across_calls() {
        let nl = tiny_netlist();
        let p = Placement::zeros(nl.num_cells());
        let mut op = Linear { slope: 1.0 };
        let mut obj = Objective::new();
        obj.push(1.0, &mut op);
        let mut ctx = ExecCtx::serial();
        let mut g = Gradient::zeros(nl.num_cells());
        for _ in 0..5 {
            g.reset();
            let _ = obj.forward_backward(&nl, &p, &mut g, &mut ctx);
        }
        let summary = ctx.summary();
        for key in ["objective.scratch.x", "objective.scratch.y"] {
            let ws = summary
                .workspaces
                .iter()
                .find(|(k, _)| *k == key)
                .expect("leased")
                .1;
            assert_eq!(ws.uses, 5, "{key}");
            assert_eq!(ws.reuses, 4, "{key}");
        }
    }

    #[test]
    fn default_forward_backward_chains() {
        let nl = tiny_netlist();
        let p = Placement::zeros(nl.num_cells());
        let mut op = Linear { slope: 3.0 };
        let mut ctx = ExecCtx::serial();
        let mut g = Gradient::zeros(nl.num_cells());
        let c = op.forward_backward(&nl, &p, &mut g, &mut ctx);
        assert_eq!(c, 0.0);
        assert_eq!(g.x, vec![3.0, 3.0]);
    }
}
