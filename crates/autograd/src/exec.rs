//! The persistent execution context threaded through every operator.
//!
//! GPU DREAMPlace gets its speed from launching kernels into a long-lived
//! CUDA context with stable device buffers. [`ExecCtx`] is the CPU
//! analogue: it owns
//!
//! * a persistent [`WorkerPool`] (spawned once per placement run, parked
//!   between kernel launches),
//! * a registry of reusable scratch workspaces keyed by kernel (pin
//!   gradient buffers, density maps, DCT work arrays), leased and released
//!   around each launch instead of allocated per call, and
//! * cheap per-operator counters (calls, nanoseconds, scratch bytes)
//!   that the engine surfaces in its run statistics.
//!
//! Operators receive `&mut ExecCtx` in [`Operator::forward`]/`backward`/
//! `forward_backward`; whoever drives them — [`GlobalPlacer`] for a
//! placement run, a test, a bench — constructs the ctx once and keeps it
//! alive across iterations, which is what turns per-call spawn/allocate
//! overhead into amortized reuse.
//!
//! # Workspace discipline
//!
//! [`ExecCtx::lease`] always returns a buffer of exactly the requested
//! length, **zero-filled** — kernels such as the WA forward rely on zeroed
//! scratch for degenerate nets, and a recycled buffer still carrying the
//! previous iteration's values is precisely the bug class this protocol
//! rules out. Kernels additionally `debug_assert` that workspace lengths
//! match the current pin/net counts so a netlist change cannot silently
//! reuse stale-shaped buffers.
//!
//! [`Operator::forward`]: crate::Operator::forward
//! [`GlobalPlacer`]: ../dp_gp/struct.GlobalPlacer.html

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dp_num::{Float, PoolTenant, WorkerPool};
use dp_telemetry::{KernelTimer, Telemetry};

/// Per-operator call counters (kept cheap: two saturating adds per call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounter {
    /// Number of forward/backward/forward_backward invocations recorded.
    pub calls: u64,
    /// Total wall-clock nanoseconds spent inside those invocations.
    pub nanos: u64,
}

/// Per-workspace reuse counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceCounter {
    /// Times the workspace was leased (or, for operator-owned buffers,
    /// prepared for a kernel launch).
    pub uses: u64,
    /// Uses that recycled an existing buffer instead of allocating one.
    pub reuses: u64,
    /// Bytes of scratch held at the most recent use.
    pub bytes: usize,
}

/// A snapshot of the context's counters, ordered by name for stable output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecSummary {
    /// Worker count launches are spread over (including the caller).
    pub pool_threads: usize,
    /// OS threads the pool spawned (constant for the pool's lifetime).
    pub threads_spawned: usize,
    /// Kernel launches dispatched through the pool.
    pub pool_runs: u64,
    /// Per-operator counters, sorted by operator name.
    pub ops: Vec<(&'static str, OpCounter)>,
    /// Per-workspace counters, sorted by workspace key.
    pub workspaces: Vec<(&'static str, WorkspaceCounter)>,
}

impl ExecSummary {
    /// Total bytes of scratch across all tracked workspaces.
    pub fn scratch_bytes(&self) -> usize {
        self.workspaces.iter().map(|(_, w)| w.bytes).sum()
    }

    /// Total operator invocations across all ops.
    pub fn total_op_calls(&self) -> u64 {
        self.ops.iter().map(|(_, c)| c.calls).sum()
    }

    /// Folds `other` into `self`, preserving per-op call/nanos totals
    /// across context restarts.
    ///
    /// A rollback restart (the GP conservative-preset fallback) builds a
    /// fresh `ExecCtx`, which resets every counter; without merging, the
    /// aborted attempt's kernel time simply vanishes from the run's
    /// statistics. Ops and workspaces are summed by key (workspace `bytes`
    /// takes the max — it is a high-water gauge, not a rate), `pool_runs`
    /// and `threads_spawned` add up (two pools really did spawn twice),
    /// and `pool_threads` keeps `self`'s value, describing the surviving
    /// context.
    pub fn merge(&mut self, other: &ExecSummary) {
        self.pool_runs += other.pool_runs;
        self.threads_spawned += other.threads_spawned;
        if self.pool_threads == 0 {
            self.pool_threads = other.pool_threads;
        }
        let mut ops: BTreeMap<&'static str, OpCounter> = self.ops.iter().copied().collect();
        for (name, c) in &other.ops {
            let e = ops.entry(name).or_default();
            e.calls += c.calls;
            e.nanos = e.nanos.saturating_add(c.nanos);
        }
        self.ops = ops.into_iter().collect();
        let mut workspaces: BTreeMap<&'static str, WorkspaceCounter> =
            self.workspaces.iter().copied().collect();
        for (name, w) in &other.workspaces {
            let e = workspaces.entry(name).or_default();
            e.uses += w.uses;
            e.reuses += w.reuses;
            e.bytes = e.bytes.max(w.bytes);
        }
        self.workspaces = workspaces.into_iter().collect();
    }
}

/// The persistent execution context; see the [module docs](self).
pub struct ExecCtx<T> {
    pool: Arc<WorkerPool>,
    /// Shared-pool mode: the job's tenancy handle onto the pool. `None`
    /// means the classic run-owned model (this ctx's run is the pool's
    /// only customer).
    tenant: Option<Arc<PoolTenant>>,
    workspaces: BTreeMap<&'static str, Vec<T>>,
    ws_counters: BTreeMap<&'static str, WorkspaceCounter>,
    ops: BTreeMap<&'static str, OpCounter>,
    telemetry: Telemetry,
    /// Cached sharded-timer handles so [`ExecCtx::record_op`] skips the
    /// telemetry registry lock on the per-call hot path.
    timers: BTreeMap<&'static str, Arc<KernelTimer>>,
}

impl<T: Float> ExecCtx<T> {
    /// A context whose pool spreads kernel launches over `threads` workers
    /// (the pool spawns `threads - 1` OS threads once, here).
    pub fn new(threads: usize) -> Self {
        Self::with_pool(Arc::new(WorkerPool::new(threads)))
    }

    /// A context that runs every kernel on the calling thread.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A context sharing an existing pool (e.g. several operators or runs
    /// sharing one set of workers).
    pub fn with_pool(pool: Arc<WorkerPool>) -> Self {
        Self {
            pool,
            tenant: None,
            workspaces: BTreeMap::new(),
            ws_counters: BTreeMap::new(),
            ops: BTreeMap::new(),
            telemetry: Telemetry::disabled(),
            timers: BTreeMap::new(),
        }
    }

    /// A context executing as one tenant of a shared pool (see
    /// [`dp_num::PoolHost`]). Kernel launches go to the shared pool;
    /// telemetry shards and launch counters are attributed through the
    /// tenant so concurrent jobs stay separate. The caller (the scheduler)
    /// must hold the tenant's [`dp_num::PoolLease`] around every kernel
    /// launch.
    pub fn with_tenant(tenant: Arc<PoolTenant>) -> Self {
        let mut ctx = Self::with_pool(Arc::clone(tenant.pool()));
        ctx.tenant = Some(tenant);
        ctx
    }

    /// The tenancy handle when this ctx runs on a shared pool.
    pub fn tenant(&self) -> Option<&Arc<PoolTenant>> {
        self.tenant.as_ref()
    }

    /// [`ExecCtx::new`] with a telemetry sink attached; see
    /// [`ExecCtx::set_telemetry`].
    pub fn with_telemetry(threads: usize, telemetry: Telemetry) -> Self {
        let mut ctx = Self::new(threads);
        ctx.set_telemetry(telemetry);
        ctx
    }

    /// Attaches a telemetry sink: operator timings recorded through
    /// [`ExecCtx::record_op`] are mirrored into sharded kernel timers, and
    /// the pool's per-worker busy time is captured under the `"pool"`
    /// label. A [`Telemetry::disabled`] sink (the default) costs one
    /// branch per record.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        if let Some(shards) = telemetry.worker_shards("pool", self.pool.threads()) {
            match &self.tenant {
                // Shared pool: the shards belong to this job only, so they
                // are parked on the tenant and installed into the pool for
                // the duration of each lease.
                Some(tenant) => tenant.set_worker_shards(shards),
                None => self.pool.set_worker_shards(shards),
            }
        }
        self.telemetry = telemetry;
        self.timers.clear();
    }

    /// The attached telemetry sink (disabled unless installed).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The worker pool; kernels clone the `Arc` so the borrow does not
    /// conflict with concurrent workspace leases.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Worker count of the pool (including the calling thread).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Leases the workspace `key` as a zero-filled buffer of exactly `len`
    /// elements, recycling the previously released buffer when present.
    /// Return it with [`ExecCtx::release`] after the kernel launch.
    pub fn lease(&mut self, key: &'static str, len: usize) -> Vec<T> {
        let recycled = self.workspaces.remove(key);
        let reused = recycled.is_some();
        let mut buf = recycled.unwrap_or_default();
        buf.clear();
        buf.resize(len, T::ZERO);
        let counter = self.ws_counters.entry(key).or_default();
        counter.uses += 1;
        counter.reuses += u64::from(reused);
        counter.bytes = buf.capacity() * std::mem::size_of::<T>();
        buf
    }

    /// Returns a leased buffer so the next [`ExecCtx::lease`] of `key`
    /// reuses its allocation.
    pub fn release(&mut self, key: &'static str, buf: Vec<T>) {
        self.workspaces.insert(key, buf);
    }

    /// Records a use of an *operator-owned* persistent workspace (buffers
    /// whose element type or structure does not fit the [`ExecCtx::lease`]
    /// registry, e.g. atomic density bins or the cached field solution) so
    /// the reuse counters still cover it.
    pub fn note_workspace(&mut self, key: &'static str, bytes: usize, reused: bool) {
        let counter = self.ws_counters.entry(key).or_default();
        counter.uses += 1;
        counter.reuses += u64::from(reused);
        counter.bytes = bytes;
    }

    /// Starts a per-op timing span; close it with [`ExecCtx::record_op`].
    pub fn op_timer(&self) -> Instant {
        Instant::now()
    }

    /// Records one operator invocation of `name` that started at `t0`.
    pub fn record_op(&mut self, name: &'static str, t0: Instant) {
        let elapsed: Duration = t0.elapsed();
        self.record_op_nanos(name, elapsed.as_nanos() as u64);
    }

    /// Records one invocation of `name` whose duration was measured by the
    /// caller (e.g. phase timers accumulated inside a kernel sweep and
    /// mirrored here afterwards).
    pub fn record_op_nanos(&mut self, name: &'static str, nanos: u64) {
        let counter = self.ops.entry(name).or_default();
        counter.calls += 1;
        counter.nanos = counter.nanos.saturating_add(nanos);
        if self.telemetry.is_enabled() {
            let threads = self.pool.threads();
            let timer = self.timers.entry(name).or_insert_with(|| {
                // The sink is enabled, so the registry always hands back a
                // timer; an (unreachable) disabled race falls back to a
                // detached timer rather than panicking.
                self.telemetry
                    .kernel_timer(name, threads)
                    .unwrap_or_else(|| Arc::new(KernelTimer::new(1)))
            });
            // Operators are driven from the calling thread: shard 0.
            timer.record(0, nanos);
        }
    }

    /// The counters for operator `name` recorded so far.
    pub fn op_counter(&self, name: &str) -> OpCounter {
        self.ops.get(name).copied().unwrap_or_default()
    }

    /// Snapshot of every counter, for run statistics.
    pub fn summary(&self) -> ExecSummary {
        ExecSummary {
            pool_threads: self.pool.threads(),
            // A tenant did not spawn the shared workers, and its launch
            // count is its own lease-attributed delta — not the pool-wide
            // total, which includes every other job's kernels.
            threads_spawned: match &self.tenant {
                Some(_) => 0,
                None => self.pool.threads_spawned(),
            },
            pool_runs: match &self.tenant {
                Some(tenant) => tenant.runs(),
                None => self.pool.runs(),
            },
            ops: self.ops.iter().map(|(k, v)| (*k, *v)).collect(),
            workspaces: self.ws_counters.iter().map(|(k, v)| (*k, *v)).collect(),
        }
    }
}

impl<T: Float> Default for ExecCtx<T> {
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn lease_zero_fills_and_counts_reuse() {
        let mut ctx = ExecCtx::<f64>::serial();
        let mut buf = ctx.lease("k", 8);
        assert_eq!(buf, vec![0.0; 8]);
        buf.iter_mut().for_each(|v| *v = 7.0);
        ctx.release("k", buf);

        // Second lease recycles the allocation but must come back zeroed.
        let buf = ctx.lease("k", 8);
        assert_eq!(buf, vec![0.0; 8]);
        ctx.release("k", buf);

        // Growing the lease still counts as a reuse of the registry slot.
        let buf = ctx.lease("k", 16);
        assert_eq!(buf.len(), 16);
        ctx.release("k", buf);

        let s = ctx.summary();
        let (key, ws) = s.workspaces[0];
        assert_eq!(key, "k");
        assert_eq!(ws.uses, 3);
        assert_eq!(ws.reuses, 2);
        assert!(ws.bytes >= 16 * std::mem::size_of::<f64>());
        assert!(s.scratch_bytes() >= ws.bytes);
    }

    #[test]
    fn op_counters_accumulate() {
        let mut ctx = ExecCtx::<f32>::serial();
        for _ in 0..3 {
            let t0 = ctx.op_timer();
            ctx.record_op("wa-wirelength", t0);
        }
        let c = ctx.op_counter("wa-wirelength");
        assert_eq!(c.calls, 3);
        assert_eq!(ctx.op_counter("never-recorded"), OpCounter::default());
    }

    #[test]
    fn note_workspace_tracks_operator_owned_buffers() {
        let mut ctx = ExecCtx::<f64>::serial();
        ctx.note_workspace("density.bins", 1024, false);
        ctx.note_workspace("density.bins", 1024, true);
        let s = ctx.summary();
        let ws = s
            .workspaces
            .iter()
            .find(|(k, _)| *k == "density.bins")
            .expect("tracked")
            .1;
        assert_eq!(ws.uses, 2);
        assert_eq!(ws.reuses, 1);
        assert_eq!(ws.bytes, 1024);
    }

    #[test]
    fn merge_preserves_per_op_nanos_across_restarts() {
        // Simulates the conservative-preset fallback: a first ctx records
        // kernel time, is torn down, and a fresh ctx runs the retry.
        let mut first = ExecCtx::<f64>::serial();
        let t0 = first.op_timer();
        first.record_op("wa.forward", t0);
        first.record_op("wa.forward", t0);
        first.record_op("density.forward", t0);
        first.note_workspace("density.bins", 2048, true);
        let aborted = first.summary();
        drop(first);

        let mut retry = ExecCtx::<f64>::serial();
        let t0 = retry.op_timer();
        retry.record_op("wa.forward", t0);
        retry.note_workspace("density.bins", 1024, false);
        let mut merged = retry.summary();
        merged.merge(&aborted);

        let wa = merged
            .ops
            .iter()
            .find(|(k, _)| *k == "wa.forward")
            .expect("merged op")
            .1;
        assert_eq!(wa.calls, 3, "aborted attempt's calls must survive");
        assert_eq!(merged.total_op_calls(), 4);
        let ws = merged
            .workspaces
            .iter()
            .find(|(k, _)| *k == "density.bins")
            .expect("merged ws")
            .1;
        assert_eq!(ws.uses, 2);
        assert_eq!(ws.reuses, 1);
        assert_eq!(ws.bytes, 2048, "bytes is a high-water gauge");
    }

    #[test]
    fn merge_with_default_is_identity_on_ops() {
        let mut ctx = ExecCtx::<f64>::serial();
        let t0 = ctx.op_timer();
        ctx.record_op("hpwl.forward", t0);
        let mut s = ctx.summary();
        let before = s.clone();
        s.merge(&ExecSummary::default());
        assert_eq!(s, before);
    }

    #[test]
    fn record_op_mirrors_into_telemetry_kernels() {
        let tel = Telemetry::enabled();
        let mut ctx = ExecCtx::<f64>::with_telemetry(1, tel.clone());
        for _ in 0..5 {
            let t0 = ctx.op_timer();
            ctx.record_op("wa.forward", t0);
        }
        let timer = tel.kernel_timer("wa.forward", 1).expect("registered");
        assert_eq!(timer.total().0, 5);
        assert_eq!(ctx.op_counter("wa.forward").calls, 5);
    }

    #[test]
    fn disabled_telemetry_keeps_plain_counters() {
        let mut ctx = ExecCtx::<f64>::serial();
        assert!(!ctx.telemetry().is_enabled());
        let t0 = ctx.op_timer();
        ctx.record_op("wa.forward", t0);
        assert_eq!(ctx.op_counter("wa.forward").calls, 1);
    }

    #[test]
    fn tenant_ctx_attributes_runs_and_shards_per_job() {
        let host = dp_num::PoolHost::new(2);
        let t_a = host.tenant();
        let t_b = host.tenant();
        let mut a = ExecCtx::<f64>::with_tenant(Arc::clone(&t_a));
        let b = ExecCtx::<f64>::with_tenant(Arc::clone(&t_b));
        let tel = Telemetry::enabled();
        a.set_telemetry(tel.clone());
        {
            let lease = t_a.lease();
            lease.pool().run(64, 8, |_| {});
        }
        {
            let lease = t_b.lease();
            lease.pool().run(64, 8, |_| {});
            lease.pool().run(64, 8, |_| {});
        }
        let sa = a.summary();
        let sb = b.summary();
        assert_eq!(sa.pool_runs, 1, "job A sees only its own launches");
        assert_eq!(sb.pool_runs, 2);
        assert_eq!(sa.threads_spawned, 0, "tenants spawn nothing");
        assert_eq!(sa.pool_threads, 2);
        // Job A's shards saw job A's launch only; job B ran unsharded.
        let shards = tel.worker_shards("pool", 2).expect("registered");
        assert_eq!(shards.per_worker()[0].0, 1);
    }

    #[test]
    fn shared_pool_contexts_report_pool_counters() {
        let pool = Arc::new(WorkerPool::new(2));
        let ctx = ExecCtx::<f64>::with_pool(Arc::clone(&pool));
        pool.run(10, 2, |_| {});
        let s = ctx.summary();
        assert_eq!(s.pool_threads, 2);
        assert_eq!(s.threads_spawned, 1);
        assert_eq!(s.pool_runs, 1);
    }
}
