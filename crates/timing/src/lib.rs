//! Static timing substrate for timing-driven placement.
//!
//! The paper lists timing as a framework extension (§III-G): "timing can be
//! considered by net weighting or additional differentiable timing costs in
//! the objective". This crate provides the substrate that extension needs —
//! a net-based static timing analyzer over the placement hypergraph — plus
//! the classic criticality-to-weight mapping.
//!
//! # Synthetic direction model
//!
//! Contest netlists carry no signal directions. Following the standard
//! synthetic-benchmark convention, the first pin of each net drives the
//! others, and only edges from a lower cell index to a higher one are kept,
//! which makes the graph acyclic by construction: the generator's cell
//! indices act as logic levels (its nets connect nearby indices, so paths
//! have realistic depth). DESIGN.md records this substitution.
//!
//! # Delay model
//!
//! A net-based lumped model, the usual choice for placement-stage timing:
//! every stage through net `e` costs `cell_delay + r * HPWL(e)`. Arrival
//! times propagate forward from sources, required times backward from
//! sinks against the clock period, and per-net criticality is mapped to a
//! weight `1 + (w_max - 1) * criticality^exponent`.
//!
//! # Examples
//!
//! ```
//! use dp_gen::GeneratorConfig;
//! use dp_gp::initial_placement;
//! use dp_timing::{analyze, TimingConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = GeneratorConfig::new("sta", 200, 220).generate::<f64>()?;
//! let p = initial_placement(&d.netlist, &d.fixed_positions, 0.2, 1);
//! let report = analyze(&d.netlist, &p, &TimingConfig::default());
//! assert!(report.max_arrival > 0.0);
//! # Ok(())
//! # }
//! ```

use dp_netlist::{net_hpwl, CellId, NetId, Netlist, Placement};
use dp_num::Float;

/// Timing model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Intrinsic delay of every cell (gate delay), in time units.
    pub cell_delay: f64,
    /// Wire delay per layout unit of net HPWL.
    pub wire_delay_per_unit: f64,
    /// Clock period; `None` derives it as `slack_target` times the maximum
    /// arrival at analysis time (creating realistic near-critical paths).
    pub clock_period: Option<f64>,
    /// When deriving the period: fraction of the max arrival (default 0.9,
    /// i.e. 10% of paths start out violating).
    pub derive_factor: f64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self {
            cell_delay: 1.0,
            wire_delay_per_unit: 0.1,
            clock_period: None,
            derive_factor: 0.9,
        }
    }
}

/// Result of one static timing analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Arrival time per cell.
    pub arrival: Vec<f64>,
    /// Required time per cell.
    pub required: Vec<f64>,
    /// Slack per net (minimum over the net's sink stages).
    pub net_slack: Vec<f64>,
    /// Worst negative slack (0 when all paths meet timing).
    pub wns: f64,
    /// Total negative slack (sum of negative endpoint slacks).
    pub tns: f64,
    /// Maximum arrival time (critical path delay).
    pub max_arrival: f64,
    /// The clock period used.
    pub clock_period: f64,
    /// Cells of the most critical path, source to endpoint.
    pub critical_path: Vec<CellId>,
}

/// Directed edges of a net under the synthetic direction model:
/// `(driver cell, sink cell)` pairs with `driver < sink` (by index).
fn net_edges<T: Float>(nl: &Netlist<T>, net: NetId) -> impl Iterator<Item = (usize, usize)> + '_ {
    let pins = nl.net_pins(net);
    // Degenerate nets (no pins) have no driver and thus no edges.
    let driver = pins.first().map_or(usize::MAX, |&p| nl.pin_cell(p).index());
    pins.iter()
        .skip(1)
        .map(move |&p| (driver, nl.pin_cell(p).index()))
        .filter(|&(d, s)| d < s)
}

/// Runs static timing analysis at the given placement.
///
/// See the [crate docs](crate) for the model.
pub fn analyze<T: Float>(
    nl: &Netlist<T>,
    placement: &Placement<T>,
    config: &TimingConfig,
) -> TimingReport {
    let n = nl.num_cells();

    // Stage delay per net: cell delay + wire delay * HPWL.
    let stage_delay: Vec<f64> = nl
        .nets()
        .map(|net| {
            config.cell_delay + config.wire_delay_per_unit * net_hpwl(nl, placement, net).to_f64()
        })
        .collect();

    // Forward pass in index order (edges always go low -> high).
    let mut arrival = vec![0.0f64; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    for net in nl.nets() {
        let d = stage_delay[net.index()];
        for (u, v) in net_edges(nl, net) {
            let a = arrival[u] + d;
            if a > arrival[v] {
                arrival[v] = a;
                pred[v] = Some(u);
            }
        }
    }
    let max_arrival = arrival.iter().cloned().fold(0.0, f64::max);
    let clock_period = config
        .clock_period
        .unwrap_or(max_arrival * config.derive_factor)
        .max(f64::MIN_POSITIVE);

    // Backward pass: required times from every endpoint (cells without
    // outgoing edges get required = clock period; we simply initialize all
    // to the period and relax backwards in reverse index order).
    let mut required = vec![clock_period; n];
    for net in nl.nets().collect::<Vec<_>>().into_iter().rev() {
        let d = stage_delay[net.index()];
        for (u, v) in net_edges(nl, net) {
            required[u] = required[u].min(required[v] - d);
        }
    }

    // Per-net slack: worst sink slack of its stages.
    let mut net_slack = vec![f64::INFINITY; nl.num_nets()];
    for net in nl.nets() {
        let d = stage_delay[net.index()];
        let mut worst = f64::INFINITY;
        for (u, v) in net_edges(nl, net) {
            worst = worst.min(required[v] - (arrival[u] + d));
        }
        if worst.is_finite() {
            net_slack[net.index()] = worst;
        } else {
            net_slack[net.index()] = clock_period; // no directed stage
        }
    }

    // Endpoint slacks for WNS/TNS: endpoints are cells with no outgoing
    // directed stage.
    let mut has_fanout = vec![false; n];
    for net in nl.nets() {
        for (u, _) in net_edges(nl, net) {
            has_fanout[u] = true;
        }
    }
    let mut wns = 0.0f64;
    let mut tns = 0.0f64;
    let mut worst_endpoint = None;
    for c in 0..n {
        if has_fanout[c] {
            continue;
        }
        let slack = clock_period - arrival[c];
        if slack < wns {
            wns = slack;
        }
        if slack < 0.0 {
            tns += slack;
            if worst_endpoint.is_none_or(|(s, _)| slack < s) {
                worst_endpoint = Some((slack, c));
            }
        }
    }

    // Critical path by predecessor backtracking from the worst endpoint
    // (or the max-arrival cell when timing is met).
    let start = worst_endpoint.map(|(_, c)| c).unwrap_or_else(|| {
        arrival
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite arrivals"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    });
    let mut critical_path = vec![CellId::new(start)];
    let mut cur = start;
    while let Some(p) = pred[cur] {
        critical_path.push(CellId::new(p));
        cur = p;
    }
    critical_path.reverse();

    TimingReport {
        arrival,
        required,
        net_slack,
        wns,
        tns,
        max_arrival,
        clock_period,
        critical_path,
    }
}

/// Maps net slacks to weights:
/// `w(e) = 1 + (w_max - 1) * criticality(e)^exponent` with
/// `criticality = clamp(1 - slack/period, 0, 1)` — the classic VPR-style
/// scheme the paper's net-weighting extension calls for.
pub fn criticality_weights<T: Float>(report: &TimingReport, w_max: f64, exponent: f64) -> Vec<T> {
    report
        .net_slack
        .iter()
        .map(|&slack| {
            let crit = (1.0 - slack / report.clock_period).clamp(0.0, 1.0);
            T::from_f64(1.0 + (w_max - 1.0) * crit.powf(exponent))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_netlist::NetlistBuilder;

    /// A 3-stage chain with hand-computable delays.
    fn chain() -> (Netlist<f64>, Placement<f64>) {
        let mut b = NetlistBuilder::new(0.0, 0.0, 100.0, 100.0);
        let cells: Vec<_> = (0..4).map(|_| b.add_movable_cell(1.0, 1.0)).collect();
        for i in 0..3 {
            b.add_net(1.0, vec![(cells[i], 0.0, 0.0), (cells[i + 1], 0.0, 0.0)])
                .expect("valid");
        }
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(4);
        p.x = vec![0.0, 10.0, 30.0, 60.0];
        p.y = vec![0.0, 0.0, 0.0, 0.0];
        (nl, p)
    }

    #[test]
    fn chain_arrivals_are_cumulative() {
        let (nl, p) = chain();
        let cfg = TimingConfig {
            cell_delay: 1.0,
            wire_delay_per_unit: 0.1,
            clock_period: Some(100.0),
            derive_factor: 0.9,
        };
        let r = analyze(&nl, &p, &cfg);
        // stage delays: 1 + 0.1*10 = 2; 1 + 0.1*20 = 3; 1 + 0.1*30 = 4
        assert_eq!(r.arrival[0], 0.0);
        assert!((r.arrival[1] - 2.0).abs() < 1e-12);
        assert!((r.arrival[2] - 5.0).abs() < 1e-12);
        assert!((r.arrival[3] - 9.0).abs() < 1e-12);
        assert!((r.max_arrival - 9.0).abs() < 1e-12);
        assert_eq!(r.wns, 0.0, "period 100 is met");
        assert_eq!(r.critical_path.len(), 4);
    }

    #[test]
    fn tight_clock_creates_negative_slack() {
        let (nl, p) = chain();
        let cfg = TimingConfig {
            clock_period: Some(5.0),
            ..TimingConfig::default()
        };
        let r = analyze(&nl, &p, &cfg);
        assert!((r.wns + 4.0).abs() < 1e-12, "wns {}", r.wns);
        assert!(r.tns <= r.wns);
        // All stages lie on the single critical path, so they share its
        // slack — the standard STA invariant.
        for (e, s) in r.net_slack.iter().enumerate() {
            assert!((s + 4.0).abs() < 1e-12, "net {e} slack {s}");
        }
    }

    #[test]
    fn derived_period_puts_critical_path_at_negative_slack() {
        let (nl, p) = chain();
        let r = analyze(&nl, &p, &TimingConfig::default());
        assert!((r.clock_period - 0.9 * r.max_arrival).abs() < 1e-12);
        assert!(r.wns < 0.0);
    }

    #[test]
    fn weights_increase_with_criticality() {
        let (nl, p) = chain();
        let cfg = TimingConfig {
            clock_period: Some(5.0),
            ..TimingConfig::default()
        };
        let r = analyze(&nl, &p, &cfg);
        let w: Vec<f64> = criticality_weights(&r, 4.0, 1.0);
        assert_eq!(w.len(), 3);
        // Later stages are more critical in a chain.
        assert!(w[2] >= w[1] && w[1] >= w[0], "{w:?}");
        assert!(w.iter().all(|&x| (1.0..=4.0).contains(&x)), "{w:?}");
    }

    #[test]
    fn moving_cells_closer_improves_wns() {
        let (nl, mut p) = chain();
        let cfg = TimingConfig {
            clock_period: Some(5.0),
            ..TimingConfig::default()
        };
        let before = analyze(&nl, &p, &cfg).wns;
        p.x = vec![0.0, 1.0, 2.0, 3.0];
        let after = analyze(&nl, &p, &cfg).wns;
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn graph_is_acyclic_by_construction() {
        // A net whose "driver" has a higher index contributes no edges.
        let mut b = NetlistBuilder::new(0.0, 0.0, 10.0, 10.0);
        let a = b.add_movable_cell(1.0, 1.0);
        let c = b.add_movable_cell(1.0, 1.0);
        b.add_net(1.0, vec![(c, 0.0, 0.0), (a, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let p = Placement::zeros(2);
        let r = analyze(
            &nl,
            &p,
            &TimingConfig {
                clock_period: Some(10.0),
                ..Default::default()
            },
        );
        assert_eq!(r.max_arrival, 0.0);
        // Undirected nets get the neutral full-period slack.
        assert_eq!(r.net_slack[0], 10.0);
    }
}
