//! Property-based checks of the static timing analyzer: the reported
//! WNS is re-derived from first principles, slack is monotone in wire
//! delay, and criticality weights respect their contract.

use dp_gen::GeneratorConfig;
use dp_gp::initial_placement;
use dp_netlist::{Netlist, Placement};
use dp_timing::{analyze, criticality_weights, TimingConfig};
use proptest::prelude::*;

fn design(seed: u64, cells: usize) -> (Netlist<f64>, Placement<f64>) {
    let d = GeneratorConfig::new("prop-sta", cells, cells + cells / 8)
        .with_seed(seed)
        .generate::<f64>()
        .expect("valid");
    let p = initial_placement(&d.netlist, &d.fixed_positions, 0.25, seed ^ 0x51a);
    (d.netlist, p)
}

/// Endpoints under the synthetic direction model, re-derived directly
/// from the pin lists: a cell with no outgoing `driver < sink` stage.
fn endpoint_mask(nl: &Netlist<f64>) -> Vec<bool> {
    let mut endpoint = vec![true; nl.num_cells()];
    for net in nl.nets() {
        let pins = nl.net_pins(net);
        if let Some(&first) = pins.first() {
            let driver = nl.pin_cell(first).index();
            if pins
                .iter()
                .skip(1)
                .any(|&p| driver < nl.pin_cell(p).index())
            {
                endpoint[driver] = false;
            }
        }
    }
    endpoint
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// WNS is exactly `min(0, min over endpoints of period - arrival)`,
    /// with the endpoint set re-derived independently of the analyzer.
    #[test]
    fn wns_is_the_worst_endpoint_slack(seed in 0u64..500, cells in 40usize..160) {
        let (nl, p) = design(seed, cells);
        let r = analyze(&nl, &p, &TimingConfig::default());
        let endpoint = endpoint_mask(&nl);
        let worst = (0..nl.num_cells())
            .filter(|&c| endpoint[c])
            .map(|c| r.clock_period - r.arrival[c])
            .fold(0.0f64, f64::min);
        prop_assert!((r.wns - worst).abs() < 1e-9, "wns {} vs re-derived {worst}", r.wns);
        prop_assert!(r.tns <= r.wns + 1e-12, "tns {} above wns {}", r.tns, r.wns);
    }

    /// At a fixed clock period, increasing the wire delay coefficient can
    /// only increase stage delays, so no slack may improve.
    #[test]
    fn more_wire_delay_never_improves_slack(
        seed in 0u64..500,
        cells in 40usize..160,
        r0 in 0.01f64..0.2,
        bump in 1.1f64..4.0,
    ) {
        let (nl, p) = design(seed, cells);
        let period = {
            // Derive once so both runs share the same fixed period.
            let probe = analyze(&nl, &p, &TimingConfig {
                wire_delay_per_unit: r0,
                ..TimingConfig::default()
            });
            probe.clock_period
        };
        let cfg = |r: f64| TimingConfig {
            wire_delay_per_unit: r,
            clock_period: Some(period),
            ..TimingConfig::default()
        };
        let slow = analyze(&nl, &p, &cfg(r0));
        let slower = analyze(&nl, &p, &cfg(r0 * bump));
        for (e, (a, b)) in slow.net_slack.iter().zip(&slower.net_slack).enumerate() {
            prop_assert!(b <= &(a + 1e-9), "net {e}: slack {a} -> {b} improved");
        }
        prop_assert!(slower.wns <= slow.wns + 1e-9);
        prop_assert!(slower.tns <= slow.tns + 1e-9);
    }

    /// Criticality weights live in `[1, w_max]` and are monotone
    /// non-increasing in slack.
    #[test]
    fn weights_are_bounded_and_monotone_in_slack(
        seed in 0u64..500,
        cells in 40usize..160,
        w_max in 1.5f64..8.0,
        exponent in 0.5f64..3.0,
    ) {
        let (nl, p) = design(seed, cells);
        let r = analyze(&nl, &p, &TimingConfig::default());
        let w: Vec<f64> = criticality_weights(&r, w_max, exponent);
        prop_assert_eq!(w.len(), nl.num_nets());
        for (e, &wi) in w.iter().enumerate() {
            prop_assert!(
                (1.0..=w_max + 1e-12).contains(&wi),
                "net {}: weight {} outside [1, {}]", e, wi, w_max
            );
        }
        // Sort nets by slack; weights must be non-increasing along it.
        let mut order: Vec<usize> = (0..w.len()).collect();
        order.sort_by(|&a, &b| {
            r.net_slack[a].partial_cmp(&r.net_slack[b]).expect("finite slack")
        });
        for pair in order.windows(2) {
            prop_assert!(
                w[pair[0]] >= w[pair[1]] - 1e-12,
                "slack {} got weight {} but larger slack {} got {}",
                r.net_slack[pair[0]], w[pair[0]], r.net_slack[pair[1]], w[pair[1]]
            );
        }
    }
}
