//! Determinism replays: same-seed bit-identity and thread-count
//! invariance of the global placer, diffed per iteration via
//! [`dp_check::replay_gp`] / [`dp_check::replay_across_threads`], plus
//! per-stage bit-identity of legalization and detailed placement via
//! [`dp_check::replay_lg`] / [`dp_check::replay_dp`].

use dp_check::{diff_placements, first_divergence, replay_across_threads, replay_dp, replay_gp, replay_lg};
use dp_dplace::DetailedPlacer;
use dp_gen::GeneratorConfig;
use dp_gp::{initial_placement, GlobalPlacer, GpConfig};
use dp_lg::Legalizer;
use dp_netlist::{Netlist, Placement};

fn design(seed: u64) -> (Netlist<f64>, Placement<f64>) {
    let d = GeneratorConfig::new("replay", 220, 250)
        .with_seed(seed)
        .with_utilization(0.6)
        .generate::<f64>()
        .expect("valid design");
    (d.netlist, d.fixed_positions)
}

fn quick_cfg(nl: &Netlist<f64>, threads: usize) -> GpConfig<f64> {
    let mut cfg = GpConfig::auto(nl);
    cfg.bins = (16, 16);
    cfg.max_iters = 30;
    cfg.min_iters = 5;
    cfg.threads = threads;
    cfg
}

#[test]
fn same_seed_same_threads_is_bit_identical() {
    let (nl, fixed) = design(91);
    for threads in [1usize, 4] {
        let cfg = quick_cfg(&nl, threads);
        let report = replay_gp(&nl, &fixed, &cfg, 2).expect("gp runs");
        assert!(report.iterations > 0);
        assert!(
            report.identical(),
            "threads {threads}: {}",
            report.divergence.as_deref().unwrap_or("?")
        );
    }
}

#[test]
fn deterministic_mode_is_invariant_across_thread_counts() {
    let (nl, fixed) = design(92);
    let cfg = quick_cfg(&nl, 1);
    let report =
        replay_across_threads(&nl, &fixed, &cfg, &[1, 2, 4]).expect("gp runs");
    assert_eq!(report.runs, 3);
    assert!(
        report.identical(),
        "{}",
        report.divergence.as_deref().unwrap_or("?")
    );
    assert!(report.final_hpwl.is_finite() && report.final_hpwl > 0.0);
}

#[test]
fn legalization_replay_is_bit_identical() {
    let (nl, fixed) = design(94);
    let start = initial_placement(&nl, &fixed, 0.05, 2);
    let report = replay_lg(&nl, &start, &Legalizer::new(), 3).expect("legalizes");
    assert_eq!(report.runs, 3);
    assert!(
        report.identical(),
        "{}",
        report.divergence.as_deref().unwrap_or("?")
    );
    assert!(report.final_hpwl.is_finite() && report.final_hpwl > 0.0);
}

#[test]
fn detailed_placement_replay_is_bit_identical() {
    let (nl, fixed) = design(95);
    let mut start = initial_placement(&nl, &fixed, 0.05, 2);
    Legalizer::new()
        .legalize(&nl, &mut start)
        .expect("legalizes");
    let report = replay_dp(&nl, &start, &DetailedPlacer::new(), 3);
    assert_eq!(report.runs, 3);
    assert!(
        report.identical(),
        "{}",
        report.divergence.as_deref().unwrap_or("?")
    );
    assert!(report.final_hpwl.is_finite() && report.final_hpwl > 0.0);
}

/// The placement differ must catch single-coordinate flips (it backstops
/// both stage replayers).
#[test]
fn placement_differ_detects_single_coordinate_change() {
    let (_, fixed) = design(96);
    let mut other = fixed.clone();
    assert!(diff_placements(&fixed, &other).is_none());
    other.x[0] += 1.0;
    let d = diff_placements(&fixed, &other).expect("must differ");
    assert!(d.contains("cell 0"), "{d}");
}

/// The differ itself must not be a rubber stamp: histories from different
/// seeds are different, and the divergence message names the first
/// mismatching field.
#[test]
fn differ_detects_real_divergence() {
    let (nl, fixed) = design(93);
    let cfg_a = quick_cfg(&nl, 1);
    let mut cfg_b = cfg_a.clone();
    cfg_b.seed = cfg_a.seed ^ 0xdead;
    let a = GlobalPlacer::new(cfg_a).place(&nl, &fixed).expect("gp");
    let b = GlobalPlacer::new(cfg_b).place(&nl, &fixed).expect("gp");
    let d = first_divergence(&a.stats, &b.stats);
    assert!(d.is_some(), "different seeds produced identical histories");
    // Self-comparison is clean.
    assert!(first_divergence(&a.stats, &a.stats).is_none());
}
