//! Differential suite: FFT-based 2-D DCT plans vs direct `O(n^2)` oracles.
//!
//! The fast plans (paper Algorithms 3-4: even/odd reordering + real FFT)
//! must reproduce the defining sums across shapes, including non-square
//! and minimum-size matrices, for all four transforms the density solver
//! uses.

use dp_check::{dct2_oracle, idct2_oracle, idct_idxst_oracle, idxst_idct_oracle};
use dp_dct::Dct2dPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(n1: usize, n2: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n1 * n2).map(|_| rng.gen_range(-2.0..2.0)).collect()
}

fn assert_close(tag: &str, fast: &[f64], oracle: &[f64], tol: f64) {
    assert_eq!(fast.len(), oracle.len(), "{tag}: length mismatch");
    let scale = oracle.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (b, (f, o)) in fast.iter().zip(oracle).enumerate() {
        assert!(
            (f - o).abs() / scale < tol,
            "{tag}: bin {b} fast {f} vs oracle {o} (scale {scale})"
        );
    }
}

const SHAPES: [(usize, usize); 5] = [(4, 4), (8, 4), (4, 8), (16, 16), (32, 8)];

#[test]
fn dct2_matches_direct_sum() {
    for (k, &(n1, n2)) in SHAPES.iter().enumerate() {
        let x = random_matrix(n1, n2, 100 + k as u64);
        let plan: Dct2dPlan<f64> = Dct2dPlan::new(n1, n2).expect("supported shape");
        assert_close(
            &format!("dct2 {n1}x{n2}"),
            &plan.dct2(&x),
            &dct2_oracle(&x, n1, n2),
            1e-12,
        );
    }
}

#[test]
fn idct2_matches_direct_sum() {
    for (k, &(n1, n2)) in SHAPES.iter().enumerate() {
        let x = random_matrix(n1, n2, 200 + k as u64);
        let plan: Dct2dPlan<f64> = Dct2dPlan::new(n1, n2).expect("supported shape");
        assert_close(
            &format!("idct2 {n1}x{n2}"),
            &plan.idct2(&x),
            &idct2_oracle(&x, n1, n2),
            1e-12,
        );
    }
}

#[test]
fn idct_idxst_matches_direct_sum() {
    for (k, &(n1, n2)) in SHAPES.iter().enumerate() {
        let x = random_matrix(n1, n2, 300 + k as u64);
        let plan: Dct2dPlan<f64> = Dct2dPlan::new(n1, n2).expect("supported shape");
        assert_close(
            &format!("idct_idxst {n1}x{n2}"),
            &plan.idct_idxst(&x),
            &idct_idxst_oracle(&x, n1, n2),
            1e-12,
        );
    }
}

#[test]
fn idxst_idct_matches_direct_sum() {
    for (k, &(n1, n2)) in SHAPES.iter().enumerate() {
        let x = random_matrix(n1, n2, 400 + k as u64);
        let plan: Dct2dPlan<f64> = Dct2dPlan::new(n1, n2).expect("supported shape");
        assert_close(
            &format!("idxst_idct {n1}x{n2}"),
            &plan.idxst_idct(&x),
            &idxst_idct_oracle(&x, n1, n2),
            1e-12,
        );
    }
}

/// The oracle round-trip (idct2 . dct2 == identity) transfers to the fast
/// plan by the two agreement tests above; assert it directly anyway so a
/// simultaneous, self-consistent normalization error in both oracles
/// cannot slip through.
#[test]
fn round_trip_identity() {
    let (n1, n2) = (16, 8);
    let x = random_matrix(n1, n2, 7);
    let plan: Dct2dPlan<f64> = Dct2dPlan::new(n1, n2).expect("supported shape");
    let back = plan.idct2(&plan.dct2(&x));
    assert_close("roundtrip", &back, &x, 1e-12);
}

/// Unsupported shapes must be structured errors, not panics — the
/// single-bin adversarial case funnels into this path.
#[test]
fn degenerate_shapes_error_gracefully() {
    assert!(Dct2dPlan::<f64>::new(3, 8).is_err());
    assert!(Dct2dPlan::<f64>::new(8, 12).is_err());
}
