//! Differential suite: the electrostatic density operator vs
//! definition-oracles.
//!
//! Covers, independently of `dp-density`'s and `dp-dct`'s internals:
//!
//! * scatter maps for every strategy (naive / sorted / sorted+subthreads),
//!   serial and parallel, float and deterministic fixed-point;
//! * the exact smoothing function against its restated definition;
//! * fixed (unsmoothed, clipped) maps and the overflow metric;
//! * potential / field / energy for all three DCT backends against the
//!   direct cosine-projection oracle;
//! * the backward gather against the oracle gradient;
//! * graceful errors for single-bin grids and numeric sanity on zero-area
//!   cells.

use dp_autograd::{ExecCtx, Gradient, Operator};
use dp_check::{
    charge_map_oracle, density_gradient_oracle, field_oracle, fixed_map_oracle,
    movable_map_oracle, overflow_oracle, smoothed_rect_oracle, OracleGrid,
};
use dp_density::{
    smoothed_footprint, BinGrid, DctBackendKind, DensityOp, DensityStrategy, ElectroField,
};
use dp_gen::adversarial::{adversarial_design, AdversarialCase};
use dp_gen::GeneratorConfig;
use dp_netlist::{Netlist, NetlistBuilder, Placement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MX: usize = 8;
const MY: usize = 8;

/// A design with explicit fixed macros and a deterministic random
/// placement strictly inside the region.
fn design(seed: u64) -> (Netlist<f64>, Placement<f64>) {
    let d = GeneratorConfig::new("density-diff", 80, 90)
        .with_seed(seed)
        .generate::<f64>()
        .expect("valid design");
    let region = d.netlist.region();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ff);
    let mut p = d.fixed_positions.clone();
    for c in 0..d.netlist.num_movable() {
        p.x[c] = region.xl + rng.gen_range(0.08..0.92) * region.width();
        p.y[c] = region.yl + rng.gen_range(0.08..0.92) * region.height();
    }
    (d.netlist, p)
}

fn grids(nl: &Netlist<f64>) -> (BinGrid<f64>, OracleGrid) {
    let grid = BinGrid::new(nl.region(), MX, MY).expect("supported grid");
    let oracle = OracleGrid::from_region(nl.region(), MX, MY);
    (grid, oracle)
}

fn assert_maps_close(tag: &str, kernel: &[f64], oracle: &[f64], tol: f64) {
    assert_eq!(kernel.len(), oracle.len(), "{tag}: bin count mismatch");
    let scale = oracle.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (b, (k, o)) in kernel.iter().zip(oracle).enumerate() {
        assert!(
            (k - o).abs() / scale < tol,
            "{tag}: bin {b} kernel {k} vs oracle {o} (scale {scale})"
        );
    }
}

#[test]
fn smoothing_matches_restated_definition() {
    let (nl, p) = design(21);
    let (grid, og) = grids(&nl);
    for c in 0..nl.num_cells() {
        let fp = smoothed_footprint(p.x[c], p.y[c], nl.cell_widths()[c], nl.cell_heights()[c], &grid);
        let (rect, scale) =
            smoothed_rect_oracle(p.x[c], p.y[c], nl.cell_widths()[c], nl.cell_heights()[c], &og);
        assert!((fp.scale - scale).abs() < 1e-12, "cell {c} scale");
        if scale > 0.0 {
            for (got, want) in [fp.rect.xl, fp.rect.yl, fp.rect.xh, fp.rect.yh]
                .iter()
                .zip(rect)
            {
                assert!((got - want).abs() < 1e-12, "cell {c} rect {got} vs {want}");
            }
        }
    }
    // Degenerate inputs scatter nothing in both implementations.
    for (w, h) in [(f64::NAN, 1.0), (1.0, f64::INFINITY), (-1.0, 1.0)] {
        let fp = smoothed_footprint(5.0, 5.0, w, h, &grid);
        let (_, scale) = smoothed_rect_oracle(5.0, 5.0, w, h, &og);
        assert_eq!(fp.scale, 0.0);
        assert_eq!(scale, 0.0);
    }
}

#[test]
fn scatter_map_matches_oracle_for_all_strategies() {
    let (nl, p) = design(22);
    let (grid, og) = grids(&nl);
    let oracle = movable_map_oracle(&nl, &p, &og);
    for strategy in [
        DensityStrategy::Naive,
        DensityStrategy::Sorted,
        DensityStrategy::SortedSubthreads { tx: 2, ty: 2 },
    ] {
        for threads in [1usize, 4] {
            for deterministic in [false, true] {
                let mut op = DensityOp::new(grid.clone(), strategy, 1.0)
                    .expect("supported grid")
                    .with_deterministic(deterministic);
                let mut ctx = ExecCtx::new(threads);
                let _ = op.forward(&nl, &p, &mut ctx);
                let map = op.last_density_map().expect("map cached after forward");
                // Fixed-point accumulation quantizes: allow a looser bound
                // there, exact-ish float agreement otherwise.
                let tol = if deterministic { 1e-6 } else { 1e-10 };
                assert_maps_close(
                    &format!("{strategy} threads {threads} det {deterministic}"),
                    &map,
                    &oracle,
                    tol,
                );
            }
        }
    }
}

#[test]
fn fixed_map_and_overflow_match_oracle() {
    // Hand-built design: a macro overhanging the region boundary must only
    // count its inside part; movable cells overflow a small target.
    let mut b = NetlistBuilder::new(0.0, 0.0, 32.0, 32.0);
    let a = b.add_movable_cell(3.0, 3.0);
    let c = b.add_movable_cell(3.0, 3.0);
    let m = b.add_fixed_cell(10.0, 6.0);
    b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0), (m, 0.0, 0.0)])
        .expect("valid");
    let nl = b.build().expect("valid");
    let mut p = Placement::zeros(nl.num_cells());
    p.x = vec![16.0, 17.0, 2.0]; // macro center near the left edge: clipped
    p.y = vec![16.0, 15.0, 16.0];

    let (grid, og) = grids(&nl);
    let fixed_oracle = fixed_map_oracle(&nl, &p, &og);
    let clipped: f64 = fixed_oracle.iter().sum();
    assert!((clipped - 7.0 * 6.0).abs() < 1e-9, "clipped macro area {clipped}");

    let mut op = DensityOp::new(grid, DensityStrategy::Sorted, 0.02).expect("supported grid");
    op.bake_fixed(&nl, &p);
    let mut ctx = ExecCtx::serial();
    let _ = op.forward(&nl, &p, &mut ctx);
    let combined = op.last_density_map().expect("map cached after forward");
    let movable_oracle = movable_map_oracle(&nl, &p, &og);
    let combined_oracle: Vec<f64> = movable_oracle
        .iter()
        .zip(&fixed_oracle)
        .map(|(m, f)| m + f)
        .collect();
    assert_maps_close("movable+fixed", &combined, &combined_oracle, 1e-10);

    let tau = op.overflow(&nl, &p, &mut ctx);
    let tau_oracle = overflow_oracle(&nl, &movable_oracle, Some(&fixed_oracle), &og, 0.02);
    assert!(
        (tau - tau_oracle).abs() < 1e-10,
        "overflow {tau} vs oracle {tau_oracle}"
    );
    assert!(tau_oracle > 0.0, "stacked cells at target 0.02 must overflow");
}

#[test]
fn field_solve_matches_oracle_for_all_backends() {
    let (nl, p) = design(23);
    let (grid, og) = grids(&nl);
    let movable = movable_map_oracle(&nl, &p, &og);
    let rho = charge_map_oracle(&movable, None, &og);
    let oracle = field_oracle(&rho, MX, MY);
    for backend in [
        DctBackendKind::RowColumn2n,
        DctBackendKind::RowColumnN,
        DctBackendKind::Direct2d,
        DctBackendKind::Batched,
    ] {
        let mut solver = ElectroField::<f64>::new(&grid, backend).expect("supported grid");
        let sol = solver.solve(&rho);
        assert_maps_close(&format!("{backend:?} potential"), &sol.potential, &oracle.potential, 1e-9);
        assert_maps_close(&format!("{backend:?} field_x"), &sol.field_x, &oracle.field_x, 1e-9);
        assert_maps_close(&format!("{backend:?} field_y"), &sol.field_y, &oracle.field_y, 1e-9);
        let scale = oracle.energy.abs().max(1e-12);
        assert!(
            (sol.energy - oracle.energy).abs() / scale < 1e-9,
            "{backend:?}: energy {} vs oracle {}",
            sol.energy,
            oracle.energy
        );
    }
}

#[test]
fn forward_energy_and_backward_gather_match_oracle() {
    let (nl, p) = design(24);
    let (grid, og) = grids(&nl);
    let movable = movable_map_oracle(&nl, &p, &og);
    let rho = charge_map_oracle(&movable, None, &og);
    let field = field_oracle(&rho, MX, MY);
    let (ogx, ogy) = density_gradient_oracle(&nl, &p, &og, &field.field_x, &field.field_y);

    for backend in [
        DctBackendKind::RowColumn2n,
        DctBackendKind::RowColumnN,
        DctBackendKind::Direct2d,
        DctBackendKind::Batched,
    ] {
        for threads in [1usize, 4] {
            let mut op = DensityOp::with_backend(grid.clone(), DensityStrategy::Sorted, 1.0, backend)
                .expect("supported grid");
            let mut ctx = ExecCtx::new(threads);
            let mut grad = Gradient::zeros(nl.num_cells());
            let energy = op.forward_backward(&nl, &p, &mut grad, &mut ctx);
            let scale = field.energy.abs().max(1e-12);
            assert!(
                (energy - field.energy).abs() / scale < 1e-9,
                "{backend:?} threads {threads}: energy {energy} vs oracle {}",
                field.energy
            );
            let gscale = ogx
                .iter()
                .chain(&ogy)
                .fold(1e-12f64, |m, v| m.max(v.abs()));
            for c in 0..nl.num_movable() {
                assert!(
                    (grad.x[c] - ogx[c]).abs() / gscale < 1e-9,
                    "{backend:?} threads {threads}: cell {c} grad_x {} vs oracle {}",
                    grad.x[c],
                    ogx[c]
                );
                assert!(
                    (grad.y[c] - ogy[c]).abs() / gscale < 1e-9,
                    "{backend:?} threads {threads}: cell {c} grad_y {} vs oracle {}",
                    grad.y[c],
                    ogy[c]
                );
            }
        }
    }
}

#[test]
fn zero_area_cells_are_inert() {
    let d = adversarial_design::<f64>(AdversarialCase::ZeroAreaCells, 9).expect("valid");
    let nl = &d.design.netlist;
    let (grid, og) = grids(nl);
    let oracle = movable_map_oracle(nl, &d.placement, &og);
    let mut op = DensityOp::new(grid, DensityStrategy::Sorted, 1.0).expect("supported grid");
    let mut ctx = ExecCtx::serial();
    let mut grad = Gradient::zeros(nl.num_cells());
    let energy = op.forward_backward(nl, &d.placement, &mut grad, &mut ctx);
    assert!(energy.is_finite());
    let map = op.last_density_map().expect("map cached after forward");
    assert_maps_close("zero-area scatter", &map, &oracle, 1e-10);
    // Fully zero-area cells feel no density force at all.
    for c in 0..nl.num_movable() {
        let area = nl.cell_widths()[c] * nl.cell_heights()[c];
        if area == 0.0 && nl.cell_widths()[c] == 0.0 && nl.cell_heights()[c] == 0.0 {
            assert_eq!(grad.x[c], 0.0, "cell {c}");
            assert_eq!(grad.y[c], 0.0, "cell {c}");
        }
        assert!(grad.x[c].is_finite() && grad.y[c].is_finite(), "cell {c}");
    }
}

#[test]
fn single_bin_grids_build_in_uniform_field_mode() {
    let d = adversarial_design::<f64>(AdversarialCase::SingleBinGrid, 3).expect("valid");
    let region = d.design.netlist.region();
    // The first suggested shape is the minimal legal grid...
    let (mx, my) = d.suggested_bins[0];
    let grid = BinGrid::new(region, mx, my).expect("minimal legal grid");
    let og = OracleGrid::from_region(region, mx, my);
    let mut op = DensityOp::new(grid, DensityStrategy::Sorted, 1.0).expect("supported grid");
    let mut ctx = ExecCtx::serial();
    let _ = op.forward(&d.design.netlist, &d.placement, &mut ctx);
    let map = op.last_density_map().expect("map cached after forward");
    let oracle = movable_map_oracle(&d.design.netlist, &d.placement, &og);
    assert_maps_close("minimal grid scatter", &map, &oracle, 1e-10);
    // ...the rest are sub-spectral single-bin shapes: they now build, but
    // flag that the spectral solve must be skipped (uniform-field mode).
    for &(mx, my) in &d.suggested_bins[1..] {
        let g = BinGrid::new(region, mx, my).expect("degenerate grid builds");
        assert!(
            !g.supports_spectral_solve(),
            "grid {mx}x{my} must be flagged sub-spectral"
        );
    }
}
