//! Finite-difference gradient checks for **every** `Operator` implementor
//! in the workspace, driven through the per-operator tolerance table.
//!
//! Each operator is checked twice per placement: with a unit upstream
//! gradient, and through an `Objective` at a non-unit weight into a
//! pre-seeded buffer (catching clobbering backwards and fused kernels
//! that ignore their term weight). Wirelength operators are additionally
//! checked on the adversarial designs.

use dp_autograd::Operator;
use dp_check::{check_operator, spec_for, CheckSpec};
use dp_density::{BinGrid, DctBackendKind, DensityOp, DensityStrategy};
use dp_gen::adversarial::{adversarial_design, AdversarialCase};
use dp_gen::GeneratorConfig;
use dp_gp::{FenceSpec, FencedDensityOp};
use dp_netlist::{Netlist, Placement};
use dp_wirelength::{HpwlOp, LseWirelength, WaStrategy, WaWirelength};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn design(seed: u64) -> (Netlist<f64>, Placement<f64>) {
    let d = GeneratorConfig::new("gradcheck", 60, 70)
        .with_seed(seed)
        .generate::<f64>()
        .expect("valid design");
    let region = d.netlist.region();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9add);
    let mut p = d.fixed_positions.clone();
    for c in 0..d.netlist.num_movable() {
        p.x[c] = region.xl + rng.gen_range(0.1..0.9) * region.width();
        p.y[c] = region.yl + rng.gen_range(0.1..0.9) * region.height();
    }
    (d.netlist, p)
}

fn run(op: &mut dyn Operator<f64>, nl: &Netlist<f64>, p: &Placement<f64>) {
    let spec = spec_for(op.name());
    let outcome = check_operator(op, nl, p, &spec);
    assert!(outcome.pass(), "{outcome}");
}

#[test]
fn hpwl_subgradient_passes_in_general_position() {
    let (nl, p) = design(31);
    run(&mut HpwlOp::new(), &nl, &p);
}

#[test]
fn wa_gradients_pass_for_all_strategies() {
    let (nl, p) = design(32);
    for strategy in [WaStrategy::NetByNet, WaStrategy::Atomic, WaStrategy::Merged] {
        for gamma in [1.0, 6.0] {
            run(&mut WaWirelength::<f64>::new(strategy, gamma), &nl, &p);
        }
    }
}

#[test]
fn lse_gradient_passes() {
    let (nl, p) = design(33);
    for gamma in [1.0, 6.0] {
        run(&mut LseWirelength::<f64>::new(gamma), &nl, &p);
    }
}

#[test]
fn density_gradient_passes_for_all_backends() {
    let (nl, p) = design(34);
    let grid = BinGrid::new(nl.region(), 8, 8).expect("supported grid");
    for backend in [
        DctBackendKind::RowColumn2n,
        DctBackendKind::RowColumnN,
        DctBackendKind::Direct2d,
    ] {
        let mut op = DensityOp::with_backend(grid.clone(), DensityStrategy::Sorted, 1.0, backend)
            .expect("supported grid");
        run(&mut op, &nl, &p);
    }
}

#[test]
fn density_gradient_passes_with_fixed_macros_baked() {
    let (nl, p) = design(35);
    let grid = BinGrid::new(nl.region(), 8, 8).expect("supported grid");
    let mut op = DensityOp::new(grid, DensityStrategy::SortedSubthreads { tx: 2, ty: 2 }, 0.9)
        .expect("supported grid");
    op.bake_fixed(&nl, &p);
    run(&mut op, &nl, &p);
}

#[test]
fn fenced_density_gradient_passes() {
    let d = adversarial_design::<f64>(AdversarialCase::FenceRegions, 36).expect("valid");
    let nl = &d.design.netlist;
    let grid = BinGrid::new(nl.region(), 8, 8).expect("supported grid");
    let spec = FenceSpec {
        regions: d.fence_regions.clone(),
        assignment: d.fence_assignment.clone(),
    };
    let mut op = FencedDensityOp::new(
        nl,
        grid,
        DensityStrategy::Sorted,
        1.0,
        DctBackendKind::Direct2d,
        spec,
    )
    .expect("supported grid");
    run(&mut op, nl, &d.placement);
}

/// The smooth wirelength models must keep correct (and finite) gradients
/// on the adversarial inputs — degenerate nets and zero-area cells. (The
/// coincident-pins case puts HPWL at its non-differentiable ties, so only
/// the smooth models are FD-checked there.)
#[test]
fn wirelength_gradients_pass_on_adversarial_designs() {
    for case in [
        AdversarialCase::DegenerateNets,
        AdversarialCase::ZeroAreaCells,
        AdversarialCase::CoincidentPins,
    ] {
        let d = adversarial_design::<f64>(case, 37).expect("valid");
        let nl = &d.design.netlist;
        for strategy in [WaStrategy::NetByNet, WaStrategy::Atomic, WaStrategy::Merged] {
            let mut op = WaWirelength::<f64>::new(strategy, 2.0);
            let spec = spec_for(Operator::<f64>::name(&op));
            let outcome = check_operator(&mut op, nl, &d.placement, &spec);
            assert!(outcome.pass(), "{case} {strategy:?}: {outcome}");
        }
        let mut op = LseWirelength::<f64>::new(2.0);
        let spec = spec_for(Operator::<f64>::name(&op));
        let outcome = check_operator(&mut op, nl, &d.placement, &spec);
        assert!(outcome.pass(), "{case} lse: {outcome}");
    }
}

/// A deliberately wrong tolerance must fail — guards the harness itself
/// against silently passing everything.
#[test]
fn harness_rejects_absurd_tolerance() {
    let (nl, p) = design(38);
    let mut op = WaWirelength::<f64>::new(WaStrategy::Merged, 1.0);
    let spec = CheckSpec {
        tol: 1e-300,
        ..spec_for("wa-wirelength")
    };
    let outcome = check_operator(&mut op, &nl, &p, &spec);
    assert!(!outcome.pass(), "an FD check at tol 1e-300 cannot pass: {outcome}");
}
