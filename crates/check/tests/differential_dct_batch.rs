//! Differential suite: batched SIMD-blocked DCT kernels vs direct `O(n^2)`
//! oracles.
//!
//! [`DctBatch`] must reproduce the defining cosine sums for every kernel
//! strategy, for all four transforms, across power-of-two shapes (fast
//! path) and the non-power-of-two-adjacent shapes (1xN, Nx1, 2x2,
//! tall/wide rectangles) served by the fallback — and the batched density
//! backend must match the field oracle at every thread count.

use dp_autograd::{ExecCtx, Gradient, Operator};
use dp_check::{
    charge_map_oracle, dct2_oracle, field_oracle, idct2_oracle, idct_idxst_oracle,
    idxst_idct_oracle, movable_map_oracle, OracleGrid,
};
use dp_dct::{BatchStrategy, Dct2dPlan, DctBatch};
use dp_density::{BinGrid, DctBackendKind, DensityOp, DensityStrategy, ElectroField};
use dp_gen::GeneratorConfig;
use dp_netlist::{Netlist, Placement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(n1: usize, n2: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n1 * n2).map(|_| rng.gen_range(-2.0..2.0)).collect()
}

fn assert_close(tag: &str, fast: &[f64], oracle: &[f64], tol: f64) {
    assert_eq!(fast.len(), oracle.len(), "{tag}: length mismatch");
    let scale = oracle.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (b, (f, o)) in fast.iter().zip(oracle).enumerate() {
        assert!(
            (f - o).abs() / scale < tol,
            "{tag}: bin {b} fast {f} vs oracle {o} (scale {scale})"
        );
    }
}

/// Power-of-two shapes (batched fast path) plus the fallback shapes the
/// satellite calls out: 1xN, Nx1, 2x2, tall and wide rectangles.
const SHAPES: [(usize, usize); 12] = [
    (1, 1),
    (1, 8),
    (8, 1),
    (2, 2),
    (3, 7),
    (5, 4),
    (2, 4),
    (4, 4),
    (32, 8),
    (8, 32),
    (16, 16),
    (64, 16),
];

const STRATEGIES: [BatchStrategy; 2] = [BatchStrategy::Scalar, BatchStrategy::Blocked];

#[test]
fn batched_dct2_matches_direct_sum_all_strategies() {
    for strategy in STRATEGIES {
        for (k, &(n1, n2)) in SHAPES.iter().enumerate() {
            let x = random_matrix(n1, n2, 500 + k as u64);
            let plan: DctBatch<f64> = DctBatch::with_strategy(n1, n2, strategy).expect("shape");
            assert_close(
                &format!("dct2 {strategy} {n1}x{n2}"),
                &plan.dct2(&x),
                &dct2_oracle(&x, n1, n2),
                1e-12,
            );
        }
    }
}

#[test]
fn batched_idct2_matches_direct_sum_all_strategies() {
    for strategy in STRATEGIES {
        for (k, &(n1, n2)) in SHAPES.iter().enumerate() {
            let x = random_matrix(n1, n2, 600 + k as u64);
            let plan: DctBatch<f64> = DctBatch::with_strategy(n1, n2, strategy).expect("shape");
            assert_close(
                &format!("idct2 {strategy} {n1}x{n2}"),
                &plan.idct2(&x),
                &idct2_oracle(&x, n1, n2),
                1e-12,
            );
        }
    }
}

#[test]
fn batched_mixed_transforms_match_direct_sums_all_strategies() {
    for strategy in STRATEGIES {
        for (k, &(n1, n2)) in SHAPES.iter().enumerate() {
            let x = random_matrix(n1, n2, 700 + k as u64);
            let plan: DctBatch<f64> = DctBatch::with_strategy(n1, n2, strategy).expect("shape");
            assert_close(
                &format!("idct_idxst {strategy} {n1}x{n2}"),
                &plan.idct_idxst(&x),
                &idct_idxst_oracle(&x, n1, n2),
                1e-12,
            );
            assert_close(
                &format!("idxst_idct {strategy} {n1}x{n2}"),
                &plan.idxst_idct(&x),
                &idxst_idct_oracle(&x, n1, n2),
                1e-12,
            );
        }
    }
}

#[test]
fn batched_strategies_agree_bitwise_with_each_other_and_the_plan() {
    // On fast-path shapes both strategies must also match the unbatched
    // Dct2dPlan bit for bit (same arithmetic, different sweep structure).
    for (k, &(n1, n2)) in SHAPES.iter().enumerate() {
        let x = random_matrix(n1, n2, 800 + k as u64);
        let scalar = DctBatch::with_strategy(n1, n2, BatchStrategy::Scalar).expect("shape");
        let blocked = DctBatch::with_strategy(n1, n2, BatchStrategy::Blocked).expect("shape");
        let a = scalar.dct2(&x);
        let b = blocked.dct2(&x);
        for (i, (p, q)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "strategy divergence at {n1}x{n2} idx {i}"
            );
        }
        if scalar.is_fast() {
            let direct = Dct2dPlan::new(n1, n2).expect("pow2");
            let want = direct.dct2(&x);
            for (i, (p, w)) in a.iter().zip(&want).enumerate() {
                assert_eq!(
                    p.to_bits(),
                    w.to_bits(),
                    "batched vs plan divergence at {n1}x{n2} idx {i}"
                );
            }
        }
    }
}

const MX: usize = 8;
const MY: usize = 8;

fn design(seed: u64) -> (Netlist<f64>, Placement<f64>) {
    let d = GeneratorConfig::new("dct-batch-diff", 80, 90)
        .with_seed(seed)
        .generate::<f64>()
        .expect("valid design");
    let region = d.netlist.region();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ff);
    let mut p = d.fixed_positions.clone();
    for c in 0..d.netlist.num_movable() {
        p.x[c] = region.xl + rng.gen_range(0.08..0.92) * region.width();
        p.y[c] = region.yl + rng.gen_range(0.08..0.92) * region.height();
    }
    (d.netlist, p)
}

#[test]
fn batched_field_solve_matches_oracle() {
    let (nl, p) = design(31);
    let grid = BinGrid::new(nl.region(), MX, MY).expect("supported grid");
    let og = OracleGrid::from_region(nl.region(), MX, MY);
    let movable = movable_map_oracle(&nl, &p, &og);
    let rho = charge_map_oracle(&movable, None, &og);
    let oracle = field_oracle(&rho, MX, MY);
    let mut solver = ElectroField::<f64>::new(&grid, DctBackendKind::Batched).expect("grid");
    let sol = solver.solve(&rho);
    assert_close("batched potential", &sol.potential, &oracle.potential, 1e-9);
    assert_close("batched field_x", &sol.field_x, &oracle.field_x, 1e-9);
    assert_close("batched field_y", &sol.field_y, &oracle.field_y, 1e-9);
    let scale = oracle.energy.abs().max(1e-12);
    assert!(
        (sol.energy - oracle.energy).abs() / scale < 1e-9,
        "energy {} vs oracle {}",
        sol.energy,
        oracle.energy
    );
}

#[test]
fn batched_density_op_matches_direct_backend_bitwise_across_threads() {
    let (nl, p) = design(32);
    let grid = BinGrid::new(nl.region(), MX, MY).expect("supported grid");
    for threads in [1usize, 2, 4] {
        let mut reference_grad = Gradient::zeros(nl.num_cells());
        let mut batched_grad = Gradient::zeros(nl.num_cells());
        let mut direct = DensityOp::with_backend(
            grid.clone(),
            DensityStrategy::Sorted,
            1.0,
            DctBackendKind::Direct2d,
        )
        .expect("grid");
        let mut batched = DensityOp::with_backend(
            grid.clone(),
            DensityStrategy::Sorted,
            1.0,
            DctBackendKind::Batched,
        )
        .expect("grid");
        let mut ctx = ExecCtx::new(threads);
        let e_direct = direct.forward_backward(&nl, &p, &mut reference_grad, &mut ctx);
        let e_batched = batched.forward_backward(&nl, &p, &mut batched_grad, &mut ctx);
        assert_eq!(
            e_direct.to_bits(),
            e_batched.to_bits(),
            "threads {threads}: energy differs"
        );
        for c in 0..nl.num_movable() {
            assert_eq!(
                reference_grad.x[c].to_bits(),
                batched_grad.x[c].to_bits(),
                "threads {threads}: grad_x cell {c}"
            );
            assert_eq!(
                reference_grad.y[c].to_bits(),
                batched_grad.y[c].to_bits(),
                "threads {threads}: grad_y cell {c}"
            );
        }
    }
}
