//! Cross-validation of the independent checkpoint reader against the
//! `dreamplace-core` writer: every checkpoint the durable flow driver can
//! produce must validate, and the independent CRC/schema checks must
//! catch the same corruptions the core reader catches.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dp_check::checkpoint::{validate_checkpoint_file, validate_checkpoint_str, CkptError};
use dreamplace_core::{
    checkpoint, CheckpointPolicy, DreamPlacer, DurableOutcome, FlowConfig, FlowFaultInjection,
    FlowState, ToolMode,
};

fn design() -> dp_gen::GeneratedDesign<f64> {
    dp_gen::GeneratorConfig::new("ckpt-xval", 150, 165)
        .with_seed(23)
        .with_utilization(0.6)
        .generate::<f64>()
        .expect("ok")
}

fn config(d: &dp_gen::GeneratedDesign<f64>) -> FlowConfig<f64> {
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceCpu { threads: 1 }, &d.netlist);
    cfg.gp.max_iters = 150;
    cfg.gp.target_overflow = 0.2;
    cfg
}

/// Runs the flow to an injected kill at `at`, leaving a checkpoint in a
/// fresh temp dir, and returns the checkpoint file contents.
fn checkpoint_killed_at(at: FlowState, tag: &str) -> String {
    let d = design();
    let dir = std::env::temp_dir().join(format!("dp-ckpt-xval-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = CheckpointPolicy::new(&dir).every(2);
    let outcome = DreamPlacer::new(config(&d))
        .place_durable(&d, None, Some(&policy), FlowFaultInjection::die_at(at))
        .expect("durable run");
    assert!(matches!(outcome, DurableOutcome::Killed { .. }));
    let text = std::fs::read_to_string(checkpoint::checkpoint_file(&dir)).expect("checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
    text
}

#[test]
fn validator_accepts_gp_lg_and_dp_checkpoints() {
    for (at, tag, stage) in [
        (FlowState::Gp { iteration: 6 }, "gp", "gp"),
        (FlowState::Lg, "lg", "lg"),
        (FlowState::Dp { pass: 1 }, "dp", "dp"),
    ] {
        let text = checkpoint_killed_at(at, tag);
        let s = validate_checkpoint_str(&text)
            .unwrap_or_else(|e| panic!("{stage} checkpoint rejected: {e}"));
        assert_eq!(s.stage, stage);
        assert_eq!(s.name, "ckpt-xval");
        assert_eq!(s.cells, 150);
        assert_eq!(s.nets, 165);
        assert_eq!(s.gp_next_iteration.is_some(), stage == "gp");
        assert!(s.records > 10, "suspiciously small: {} records", s.records);
    }
}

#[test]
fn validator_accepts_files_and_directories() {
    let d = design();
    let dir = std::env::temp_dir().join(format!("dp-ckpt-xval-dir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = CheckpointPolicy::new(&dir).every(2);
    DreamPlacer::new(config(&d))
        .place_durable(
            &d,
            None,
            Some(&policy),
            FlowFaultInjection::die_at(FlowState::Lg),
        )
        .expect("durable run");
    let via_dir = validate_checkpoint_file(&dir).expect("dir");
    let via_file = validate_checkpoint_file(&checkpoint::checkpoint_file(&dir)).expect("file");
    assert_eq!(via_dir, via_file);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn independent_crc_catches_bit_flips() {
    let text = checkpoint_killed_at(FlowState::Gp { iteration: 4 }, "crc");
    let idx = text.rfind("end\n").unwrap() - 2;
    let mut bytes = text.clone().into_bytes();
    bytes[idx] = if bytes[idx] == b'0' { b'1' } else { b'0' };
    let flipped = String::from_utf8(bytes).unwrap();
    match validate_checkpoint_str(&flipped) {
        Err(CkptError::Crc { .. }) => {}
        other => panic!("want Crc error, got {other:?}"),
    }
    // And the pristine text still passes (the flip was the only change).
    validate_checkpoint_str(&text).expect("pristine");
}

#[test]
fn independent_reader_rejects_truncation_version_skew_and_foreign_files() {
    let text = checkpoint_killed_at(FlowState::Gp { iteration: 4 }, "neg");
    match validate_checkpoint_str(&text[..text.len() / 2]) {
        Err(CkptError::Crc { .. }) => {}
        other => panic!("want Crc on truncation, got {other:?}"),
    }
    match validate_checkpoint_str(&text.replacen("DPCKPT v1", "DPCKPT v9", 1)) {
        Err(CkptError::Version {
            found: 9,
            supported: 1,
        }) => {}
        other => panic!("want Version, got {other:?}"),
    }
    match validate_checkpoint_str("{\"ev\":\"span\"}\n") {
        Err(CkptError::Header(_)) => {}
        other => panic!("want Header, got {other:?}"),
    }
}

#[test]
fn both_readers_agree_on_every_killed_state() {
    // The two independently implemented readers must accept exactly the
    // same set of checkpoints the driver writes.
    for (at, tag) in [
        (FlowState::Gp { iteration: 2 }, "agree-gp2"),
        (FlowState::Gp { iteration: 8 }, "agree-gp8"),
        (FlowState::Lg, "agree-lg"),
        (FlowState::Dp { pass: 0 }, "agree-dp0"),
        (FlowState::Dp { pass: 2 }, "agree-dp2"),
        (FlowState::Finish, "agree-finish"),
    ] {
        let text = checkpoint_killed_at(at, tag);
        checkpoint::deserialize::<f64>(&text)
            .unwrap_or_else(|e| panic!("core reader rejected {tag}: {e}"));
        validate_checkpoint_str(&text)
            .unwrap_or_else(|e| panic!("independent reader rejected {tag}: {e}"));
    }
}
