//! Differential suite: optimized wirelength kernels vs definition-oracles.
//!
//! Every strategy of every wirelength operator is compared against the
//! slow per-net/per-axis oracle — forward cost AND analytic gradient — on
//! a normal generated design, at several gammas, serial and parallel, and
//! on the adversarial designs (degenerate nets, coincident pins, zero-area
//! cells).

use dp_autograd::{ExecCtx, Gradient, Operator};
use dp_check::{hpwl_oracle, lse_oracle, wa_oracle, WlOracle};
use dp_gen::adversarial::{adversarial_design, AdversarialCase};
use dp_gen::GeneratorConfig;
use dp_netlist::{Netlist, Placement};
use dp_wirelength::{HpwlOp, LseWirelength, WaStrategy, WaWirelength};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn design(seed: u64) -> (Netlist<f64>, Placement<f64>) {
    let d = GeneratorConfig::new("wl-diff", 120, 140)
        .with_seed(seed)
        .generate::<f64>()
        .expect("valid design");
    let region = d.netlist.region();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = d.fixed_positions.clone();
    for c in 0..d.netlist.num_movable() {
        p.x[c] = region.xl + rng.gen_range(0.05..0.95) * region.width();
        p.y[c] = region.yl + rng.gen_range(0.05..0.95) * region.height();
    }
    (d.netlist, p)
}

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-12)
}

fn assert_grad_close(tag: &str, oracle: &WlOracle, grad: &Gradient<f64>, n_mov: usize, tol: f64) {
    for c in 0..n_mov {
        let scale = oracle.grad_x[c]
            .abs()
            .max(oracle.grad_y[c].abs())
            .max(1.0);
        assert!(
            (oracle.grad_x[c] - grad.x[c]).abs() / scale < tol,
            "{tag}: cell {c} grad_x oracle {} vs kernel {}",
            oracle.grad_x[c],
            grad.x[c]
        );
        assert!(
            (oracle.grad_y[c] - grad.y[c]).abs() / scale < tol,
            "{tag}: cell {c} grad_y oracle {} vs kernel {}",
            oracle.grad_y[c],
            grad.y[c]
        );
    }
}

#[test]
fn hpwl_operator_matches_oracle() {
    let (nl, p) = design(11);
    let mut ctx = ExecCtx::serial();
    let kernel = HpwlOp::new().forward(&nl, &p, &mut ctx);
    let oracle = hpwl_oracle(&nl, &p);
    assert!(rel(kernel, oracle) < 1e-12, "kernel {kernel} vs oracle {oracle}");
    // And against the independent free function used by the GP loop.
    assert!(rel(dp_netlist::hpwl(&nl, &p), oracle) < 1e-12);
}

#[test]
fn wa_all_strategies_match_oracle_cost_and_gradient() {
    let (nl, p) = design(12);
    let n_mov = nl.num_movable();
    for gamma in [0.8, 4.0] {
        let oracle = wa_oracle(&nl, &p, gamma);
        for strategy in [WaStrategy::NetByNet, WaStrategy::Atomic, WaStrategy::Merged] {
            for threads in [1usize, 4] {
                let mut ctx = ExecCtx::new(threads);
                let mut op = WaWirelength::<f64>::new(strategy, gamma);
                let mut grad = Gradient::zeros(nl.num_cells());
                let cost = op.forward_backward(&nl, &p, &mut grad, &mut ctx);
                let tag = format!("wa {strategy:?} gamma {gamma} threads {threads}");
                assert!(
                    rel(cost, oracle.cost) < 1e-9,
                    "{tag}: cost {cost} vs oracle {}",
                    oracle.cost
                );
                assert_grad_close(&tag, &oracle, &grad, n_mov, 1e-8);
            }
        }
    }
}

#[test]
fn lse_matches_oracle_cost_and_gradient() {
    let (nl, p) = design(13);
    let n_mov = nl.num_movable();
    for gamma in [0.8, 4.0] {
        let oracle = lse_oracle(&nl, &p, gamma);
        for threads in [1usize, 4] {
            let mut ctx = ExecCtx::new(threads);
            let mut op = LseWirelength::<f64>::new(gamma);
            let mut grad = Gradient::zeros(nl.num_cells());
            let cost = op.forward_backward(&nl, &p, &mut grad, &mut ctx);
            let tag = format!("lse gamma {gamma} threads {threads}");
            assert!(
                rel(cost, oracle.cost) < 1e-9,
                "{tag}: cost {cost} vs oracle {}",
                oracle.cost
            );
            assert_grad_close(&tag, &oracle, &grad, n_mov, 1e-8);
        }
    }
}

/// The oracle agreement must survive the adversarial designs: degenerate
/// nets contribute zero, coincident pins must not produce NaN, zero-area
/// cells still carry pins.
#[test]
fn kernels_match_oracle_on_adversarial_designs() {
    for case in [
        AdversarialCase::DegenerateNets,
        AdversarialCase::CoincidentPins,
        AdversarialCase::ZeroAreaCells,
    ] {
        let d = adversarial_design::<f64>(case, 5).expect("valid adversarial design");
        let (nl, p) = (&d.design.netlist, &d.placement);
        let mut ctx = ExecCtx::serial();

        let hp = HpwlOp::new().forward(nl, p, &mut ctx);
        let hp_oracle = hpwl_oracle(nl, p);
        assert!(
            rel(hp, hp_oracle) < 1e-12,
            "{case}: hpwl {hp} vs oracle {hp_oracle}"
        );

        let gamma = 1.5;
        let wa_ref = wa_oracle(nl, p, gamma);
        assert!(wa_ref.cost.is_finite(), "{case}: oracle cost not finite");
        for strategy in [WaStrategy::NetByNet, WaStrategy::Atomic, WaStrategy::Merged] {
            let mut op = WaWirelength::<f64>::new(strategy, gamma);
            let mut grad = Gradient::zeros(nl.num_cells());
            let cost = op.forward_backward(nl, p, &mut grad, &mut ctx);
            assert!(cost.is_finite(), "{case}: {strategy:?} cost not finite");
            assert!(
                rel(cost, wa_ref.cost) < 1e-9,
                "{case} {strategy:?}: {cost} vs {}",
                wa_ref.cost
            );
            assert!(
                grad.x.iter().chain(&grad.y).all(|g| g.is_finite()),
                "{case} {strategy:?}: non-finite gradient"
            );
        }

        let lse_ref = lse_oracle(nl, p, gamma);
        let mut op = LseWirelength::<f64>::new(gamma);
        let mut grad = Gradient::zeros(nl.num_cells());
        let cost = op.forward_backward(nl, p, &mut grad, &mut ctx);
        assert!(
            rel(cost, lse_ref.cost) < 1e-9,
            "{case} lse: {cost} vs {}",
            lse_ref.cost
        );
    }
}

/// Pin offsets must shift the oracle and the kernels identically — a net
/// whose pins sit away from the cell centers is the common case in real
/// designs.
#[test]
fn pin_offsets_are_honored() {
    let mut b = dp_netlist::NetlistBuilder::new(0.0, 0.0, 50.0, 50.0);
    let a = b.add_movable_cell(2.0, 2.0);
    let c = b.add_movable_cell(2.0, 2.0);
    let d = b.add_fixed_cell(4.0, 4.0);
    b.add_net(1.5, vec![(a, 0.9, -0.4), (c, -0.3, 0.8), (d, 1.0, 1.0)])
        .expect("valid");
    let nl = b.build().expect("valid");
    let mut p = Placement::zeros(nl.num_cells());
    p.x = vec![10.0, 30.0, 25.0];
    p.y = vec![20.0, 12.0, 40.0];

    let mut ctx = ExecCtx::serial();
    assert!(rel(HpwlOp::new().forward(&nl, &p, &mut ctx), hpwl_oracle(&nl, &p)) < 1e-12);

    let oracle = wa_oracle(&nl, &p, 1.0);
    let mut op = WaWirelength::<f64>::new(WaStrategy::Merged, 1.0);
    let mut grad = Gradient::zeros(nl.num_cells());
    let cost = op.forward_backward(&nl, &p, &mut grad, &mut ctx);
    assert!(rel(cost, oracle.cost) < 1e-12);
    assert_grad_close("pin-offsets", &oracle, &grad, nl.num_movable(), 1e-10);
}
