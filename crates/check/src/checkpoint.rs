//! Schema-validating reader for `dreamplace-core` flow checkpoints.
//!
//! Deliberately independent of the writer/reader pair in
//! `dreamplace_core::checkpoint` — this module re-derives the `DPCKPT v1`
//! format from its documented grammar with its own tokenizer and its own
//! (table-driven, rather than bitwise) CRC32, so an encode bug cannot hide
//! behind a shared implementation. The checks, in order:
//!
//! 1. header: magic line `DPCKPT v<N>` with a supported version, then a
//!    `crc 0x<8 hex>` line whose CRC32 (poly `0xEDB88320`) matches the
//!    payload bytes exactly;
//! 2. record schema: every payload line is a known record with the right
//!    arity and token types for its position in the stage-specific
//!    grammar, ending in a single `end` with nothing after it;
//! 3. cross-field invariants: `movable <= cells`, every parameter/solver
//!    vector is `2 x movable` long, every placement is `cells` long with
//!    matching x/y lengths, the GP history is strictly increasing and
//!    stays below the next-iteration counter, the scheduler iteration
//!    never exceeds the engine iteration, rollback state points inside
//!    the recorded history, workspace reuses never exceed uses, and DP
//!    pass indices are in range.
//!
//! The CLI exposes this as `dreamplace checkpoint-check <file|dir>`; the
//! CI crash-resume job runs it on the checkpoint left behind by an
//! injected kill before resuming from it.

use std::fmt;
use std::path::Path;

/// Version this validator understands (kept in lockstep with
/// `dreamplace_core::checkpoint::VERSION` through the cross-validation
/// tests).
pub const SUPPORTED_VERSION: u32 = 1;

/// Why a checkpoint failed validation.
#[derive(Debug)]
pub enum CkptError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The two-line header is malformed (magic or crc line).
    Header(String),
    /// The file is a checkpoint of an unsupported format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this validator supports.
        supported: u32,
    },
    /// The payload does not hash to the header CRC.
    Crc {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the payload as read.
        actual: u32,
    },
    /// A record failed parsing or an invariant, with its 1-based line.
    Line {
        /// 1-based line number in the file.
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "io: {e}"),
            CkptError::Header(msg) => write!(f, "header: {msg}"),
            CkptError::Version { found, supported } => {
                write!(f, "version v{found} not supported (validator knows v{supported})")
            }
            CkptError::Crc { expected, actual } => write!(
                f,
                "payload crc {actual:#010x} does not match header {expected:#010x}"
            ),
            CkptError::Line { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// What a valid checkpoint contained, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptSummary {
    /// Format version from the header.
    pub version: u32,
    /// Stage tag (`gp`, `lg`, `dp`).
    pub stage: String,
    /// Design name from the identity stamp.
    pub name: String,
    /// Total cell count.
    pub cells: usize,
    /// Movable cell count.
    pub movable: usize,
    /// Net count.
    pub nets: usize,
    /// Payload records validated (including `end`).
    pub records: usize,
    /// Float tokens validated.
    pub floats: usize,
    /// Degradation events recorded.
    pub degradations: usize,
    /// For GP-stage checkpoints, the next engine iteration to execute.
    pub gp_next_iteration: Option<usize>,
}

/// Table-driven CRC32 (reflected, poly `0xEDB88320`) — a different
/// construction from the writer's bitwise loop on purpose.
fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Validates a checkpoint file (or a directory containing `flow.ckpt`).
///
/// # Errors
///
/// See [`CkptError`].
pub fn validate_checkpoint_file(path: &Path) -> Result<CkptSummary, CkptError> {
    let file = if path.is_dir() {
        path.join("flow.ckpt")
    } else {
        path.to_path_buf()
    };
    let text = std::fs::read_to_string(&file)?;
    validate_checkpoint_str(&text)
}

/// Line cursor over the payload with 1-based file positions.
struct Cur<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    /// 1-based line number of the last line handed out.
    line: usize,
    records: usize,
    floats: usize,
}

impl<'a> Cur<'a> {
    fn err(&self, msg: impl Into<String>) -> CkptError {
        CkptError::Line {
            line: self.line,
            msg: msg.into(),
        }
    }

    /// Next payload line tokenized on whitespace, with the leading token
    /// required to be `tag`.
    fn rec(&mut self, tag: &str) -> Result<Vec<&'a str>, CkptError> {
        let Some((i, line)) = self.lines.next() else {
            self.line += 1;
            return Err(self.err(format!("unexpected end of file, expected `{tag}`")));
        };
        // Payload starts on file line 3.
        self.line = i + 3;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.first().copied() != Some(tag) {
            return Err(self.err(format!(
                "expected `{tag}` record, found {:?}",
                toks.first().copied().unwrap_or("")
            )));
        }
        self.records += 1;
        Ok(toks)
    }

    fn field<'t>(&self, toks: &[&'t str], idx: usize) -> Result<&'t str, CkptError> {
        toks.get(idx)
            .copied()
            .ok_or_else(|| self.err(format!("missing field {idx}")))
    }

    fn usize(&self, toks: &[&str], idx: usize) -> Result<usize, CkptError> {
        let tok = self.field(toks, idx)?;
        tok.parse()
            .map_err(|_| self.err(format!("bad integer {tok:?} at field {idx}")))
    }

    fn u64(&self, toks: &[&str], idx: usize) -> Result<u64, CkptError> {
        let tok = self.field(toks, idx)?;
        tok.parse()
            .map_err(|_| self.err(format!("bad integer {tok:?} at field {idx}")))
    }

    fn f64(&mut self, toks: &[&str], idx: usize) -> Result<f64, CkptError> {
        let tok = self.field(toks, idx)?;
        let v = match tok {
            "NaN" => f64::NAN,
            "inf" => f64::INFINITY,
            "-inf" => f64::NEG_INFINITY,
            // Raw IEEE-754 bits, `x` + 16 lowercase hex digits — the bulk
            // `vec` encoding. Implemented here from the format notes,
            // independently of the core reader.
            _ if tok.starts_with('x') => {
                let hex = &tok[1..];
                if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(self.err(format!("bad float bits {tok:?} at field {idx}")));
                }
                u64::from_str_radix(hex, 16)
                    .map(f64::from_bits)
                    .map_err(|_| self.err(format!("bad float bits {tok:?} at field {idx}")))?
            }
            _ => tok
                .parse()
                .map_err(|_| self.err(format!("bad float {tok:?} at field {idx}")))?,
        };
        self.floats += 1;
        Ok(v)
    }

    fn flag(&self, toks: &[&str], idx: usize) -> Result<bool, CkptError> {
        match self.field(toks, idx)? {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(self.err(format!("bad flag {other:?} at field {idx} (want 0|1)"))),
        }
    }

    fn arity(&self, toks: &[&str], n: usize) -> Result<(), CkptError> {
        if toks.len() != n {
            return Err(self.err(format!(
                "`{}` record carries {} fields, want {}",
                toks.first().copied().unwrap_or(""),
                toks.len() - 1,
                n - 1
            )));
        }
        Ok(())
    }

    /// `vec <name> <len> <floats...>` with the expected length, or
    /// (when `optional`) `vec <name> none`. Returns the length read.
    fn vec(&mut self, name: &str, want_len: usize, optional: bool) -> Result<usize, CkptError> {
        let toks = self.rec("vec")?;
        let found = self.field(&toks, 1)?;
        if found != name {
            return Err(self.err(format!("expected vector {name:?}, found {found:?}")));
        }
        if optional && self.field(&toks, 2)? == "none" {
            self.arity(&toks, 3)?;
            return Ok(0);
        }
        let len = self.usize(&toks, 2)?;
        if len != want_len {
            return Err(self.err(format!(
                "vector {name:?} has length {len}, want {want_len}"
            )));
        }
        self.arity(&toks, 3 + len)?;
        for i in 0..len {
            self.f64(&toks, 3 + i)?;
        }
        Ok(len)
    }

    /// A placement: `<prefix>.x` and `<prefix>.y`, both `cells` long.
    fn placement(&mut self, prefix: &str, cells: usize) -> Result<(), CkptError> {
        self.vec(&format!("{prefix}.x"), cells, false)?;
        self.vec(&format!("{prefix}.y"), cells, false)?;
        Ok(())
    }
}

const CAUSES: [&str; 5] = [
    "non-finite-cost",
    "non-finite-gradient",
    "non-finite-position",
    "non-finite-hpwl",
    "overflow-explosion",
];

fn is_cause(tok: &str) -> bool {
    CAUSES.contains(&tok)
}

/// Validates full checkpoint file contents.
///
/// # Errors
///
/// See [`CkptError`].
pub fn validate_checkpoint_str(text: &str) -> Result<CkptSummary, CkptError> {
    // -- Header ------------------------------------------------------------
    let mut header = text.lines();
    let magic = header.next().unwrap_or("");
    let version: u32 = magic
        .strip_prefix("DPCKPT v")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| {
            CkptError::Header(format!(
                "first line {:?} is not `DPCKPT v<N>`",
                magic.chars().take(40).collect::<String>()
            ))
        })?;
    if version != SUPPORTED_VERSION {
        return Err(CkptError::Version {
            found: version,
            supported: SUPPORTED_VERSION,
        });
    }
    let crc_line = header.next().unwrap_or("");
    let expected = crc_line
        .strip_prefix("crc 0x")
        .filter(|hex| hex.len() == 8)
        .and_then(|hex| u32::from_str_radix(hex, 16).ok())
        .ok_or_else(|| CkptError::Header("second line is not `crc 0x<8 hex digits>`".into()))?;
    let payload_start = magic.len() + 1 + crc_line.len() + 1;
    let payload = text.get(payload_start..).unwrap_or("");
    let actual = crc32(payload.as_bytes());
    if actual != expected {
        return Err(CkptError::Crc { expected, actual });
    }

    let mut cur = Cur {
        lines: payload.lines().enumerate(),
        line: 2,
        records: 0,
        floats: 0,
    };

    // -- Identity and flow-wide records -------------------------------------
    let toks = cur.rec("design")?;
    let cells = cur.usize(&toks, 1)?;
    let movable = cur.usize(&toks, 2)?;
    let nets = cur.usize(&toks, 3)?;
    if movable > cells {
        return Err(cur.err(format!("{movable} movable cells exceed {cells} total")));
    }
    if toks.len() < 5 {
        return Err(cur.err("design record missing name"));
    }
    let name = toks[4..].join(" ");
    let dim = 2 * movable;

    let toks = cur.rec("stage")?;
    cur.arity(&toks, 2)?;
    let stage = cur.field(&toks, 1)?.to_string();

    let toks = cur.rec("timing")?;
    cur.arity(&toks, 6)?;
    for i in 1..=5 {
        cur.f64(&toks, i)?;
    }
    let toks = cur.rec("consumed")?;
    cur.arity(&toks, 2)?;
    let consumed = cur.f64(&toks, 1)?;
    if consumed.is_nan() || consumed < 0.0 {
        return Err(cur.err(format!("consumed wall-clock {consumed} is not >= 0")));
    }

    let toks = cur.rec("fallback")?;
    match cur.field(&toks, 1)? {
        "none" => cur.arity(&toks, 2)?,
        "conservative" => {
            cur.arity(&toks, 3)?;
            let c = cur.field(&toks, 2)?;
            if !is_cause(c) {
                return Err(cur.err(format!("unknown divergence cause {c:?}")));
            }
        }
        "best-so-far" => {
            cur.arity(&toks, 4)?;
            let c = cur.field(&toks, 2)?;
            if !is_cause(c) {
                return Err(cur.err(format!("unknown divergence cause {c:?}")));
            }
            cur.usize(&toks, 3)?;
        }
        other => return Err(cur.err(format!("unknown gp fallback {other:?}"))),
    }

    let toks = cur.rec("degradations")?;
    cur.arity(&toks, 2)?;
    let n_degr = cur.usize(&toks, 1)?;
    for _ in 0..n_degr {
        degradation(&mut cur)?;
    }

    // -- Stage-specific payload ---------------------------------------------
    let mut gp_next_iteration = None;
    match stage.as_str() {
        "gp" => gp_next_iteration = Some(gp_stage(&mut cur, cells, dim)?),
        "lg" => {
            gp_stats(&mut cur)?;
            scalar(&mut cur, "hpwl.gp")?;
            cur.placement("gp", cells)?;
        }
        "dp" => {
            gp_stats(&mut cur)?;
            scalar(&mut cur, "hpwl.gp")?;
            lg_stats(&mut cur)?;
            scalar(&mut cur, "hpwl.legal")?;
            cur.placement("cur", cells)?;
            dp_run(&mut cur)?;
        }
        other => return Err(cur.err(format!("unknown stage tag {other:?}"))),
    }

    let toks = cur.rec("end")?;
    cur.arity(&toks, 1)?;
    if let Some((i, line)) = cur.lines.find(|(_, l)| !l.trim().is_empty()) {
        cur.line = i + 3;
        return Err(cur.err(format!("trailing content after `end`: {line:?}")));
    }

    Ok(CkptSummary {
        version,
        stage,
        name,
        cells,
        movable,
        nets,
        records: cur.records,
        floats: cur.floats,
        degradations: n_degr,
        gp_next_iteration,
    })
}

fn scalar(cur: &mut Cur<'_>, tag: &str) -> Result<f64, CkptError> {
    let toks = cur.rec(tag)?;
    cur.arity(&toks, 2)?;
    cur.f64(&toks, 1)
}

fn degradation(cur: &mut Cur<'_>) -> Result<(), CkptError> {
    let toks = cur.rec("degr")?;
    let stage = cur.field(&toks, 1)?;
    if !["sanitize", "gp", "lg", "dp"].contains(&stage) {
        return Err(cur.err(format!("unknown flow stage {stage:?}")));
    }
    let mut i = 2;
    let trig = cur.field(&toks, i)?;
    i += 1;
    match trig {
        "degenerate-grid" => {
            cur.usize(&toks, i)?;
            cur.usize(&toks, i + 1)?;
            i += 2;
        }
        "gp-diverged" => {
            let c = cur.field(&toks, i)?;
            if !is_cause(c) {
                return Err(cur.err(format!("unknown divergence cause {c:?}")));
            }
            i += 1;
        }
        "abacus-failed" | "displacement-exceeded" | "budget-exhausted" => {}
        "illegal-after-lg" => {
            cur.usize(&toks, i)?;
            i += 1;
        }
        "dp-pass-worsened" => {
            dp_pass(cur, &toks, i)?;
            cur.f64(&toks, i + 1)?;
            i += 2;
        }
        other => return Err(cur.err(format!("unknown trigger {other:?}"))),
    }
    let fb = cur.field(&toks, i)?;
    i += 1;
    match fb {
        "uniform-field-density" | "conservative-gp-preset" | "best-so-far-placement"
        | "tetris-result" | "retry-without-abacus" | "stopped-stage-early" => {}
        "disabled-dp-pass" => {
            dp_pass(cur, &toks, i)?;
            i += 1;
        }
        other => return Err(cur.err(format!("unknown fallback {other:?}"))),
    }
    cur.arity(&toks, i)
}

fn dp_pass(cur: &Cur<'_>, toks: &[&str], idx: usize) -> Result<usize, CkptError> {
    let p = cur.usize(toks, idx)?;
    if p > 2 {
        return Err(cur.err(format!("dp pass index {p} out of range (0..=2)")));
    }
    Ok(p)
}

fn solver(cur: &mut Cur<'_>, prefix: &str, dim: usize) -> Result<(), CkptError> {
    let toks = cur.rec(prefix)?;
    cur.arity(&toks, 2)?;
    match cur.field(&toks, 1)? {
        "nesterov" => {
            let s = cur.rec("sv.scalars")?;
            cur.arity(&s, 3)?;
            cur.f64(&s, 1)?;
            cur.f64(&s, 2)?;
            for v in ["v", "u_prev", "g_prev", "v_prev"] {
                cur.vec(v, dim, true)?;
            }
        }
        "adam" => {
            let s = cur.rec("sv.scalars")?;
            cur.arity(&s, 3)?;
            cur.f64(&s, 1)?;
            cur.field(&s, 2)?
                .parse::<u32>()
                .map_err(|_| cur.err("bad adam step counter"))?;
            cur.vec("m", dim, false)?;
            cur.vec("v", dim, false)?;
        }
        "sgd-momentum" => {
            let s = cur.rec("sv.scalars")?;
            cur.arity(&s, 2)?;
            cur.f64(&s, 1)?;
            cur.vec("velocity", dim, false)?;
        }
        "conjugate-gradient" => {
            let s = cur.rec("sv.scalars")?;
            cur.arity(&s, 2)?;
            cur.f64(&s, 1)?;
            for v in ["g_prev", "d_prev", "p_prev"] {
                cur.vec(v, dim, true)?;
            }
        }
        other => return Err(cur.err(format!("unknown solver tag {other:?}"))),
    }
    Ok(())
}

/// `<tag> <n>` then `n` `h` lines; returns the iteration indices, checked
/// strictly increasing.
fn history(cur: &mut Cur<'_>, tag: &str) -> Result<Vec<usize>, CkptError> {
    let toks = cur.rec(tag)?;
    cur.arity(&toks, 2)?;
    let n = cur.usize(&toks, 1)?;
    let mut iters = Vec::with_capacity(n);
    for _ in 0..n {
        let toks = cur.rec("h")?;
        cur.arity(&toks, 6)?;
        let k = cur.usize(&toks, 1)?;
        for i in 2..=5 {
            cur.f64(&toks, i)?;
        }
        if iters.last().is_some_and(|&last| k <= last) {
            return Err(cur.err(format!("history iteration {k} does not increase")));
        }
        iters.push(k);
    }
    Ok(iters)
}

fn recoveries(cur: &mut Cur<'_>, tag: &str) -> Result<(), CkptError> {
    let toks = cur.rec(tag)?;
    cur.arity(&toks, 2)?;
    let n = cur.usize(&toks, 1)?;
    for _ in 0..n {
        let toks = cur.rec("r")?;
        cur.arity(&toks, 6)?;
        let iteration = cur.usize(&toks, 1)?;
        let resumed_from = cur.usize(&toks, 2)?;
        if resumed_from > iteration {
            return Err(cur.err(format!(
                "recovery resumed from {resumed_from} which is after iteration {iteration}"
            )));
        }
        let c = cur.field(&toks, 3)?;
        if !is_cause(c) {
            return Err(cur.err(format!("unknown divergence cause {c:?}")));
        }
        cur.f64(&toks, 4)?;
        cur.f64(&toks, 5)?;
    }
    Ok(())
}

fn exec(cur: &mut Cur<'_>) -> Result<(), CkptError> {
    let toks = cur.rec("exec.pool")?;
    cur.arity(&toks, 4)?;
    for i in 1..=3 {
        cur.u64(&toks, i)?;
    }
    let toks = cur.rec("exec.ops")?;
    cur.arity(&toks, 2)?;
    let n_ops = cur.usize(&toks, 1)?;
    for _ in 0..n_ops {
        let toks = cur.rec("op")?;
        cur.u64(&toks, 1)?;
        cur.u64(&toks, 2)?;
        if toks.len() < 4 {
            return Err(cur.err("op record missing name"));
        }
    }
    let toks = cur.rec("exec.ws")?;
    cur.arity(&toks, 2)?;
    let n_ws = cur.usize(&toks, 1)?;
    for _ in 0..n_ws {
        let toks = cur.rec("ws")?;
        let uses = cur.u64(&toks, 1)?;
        let reuses = cur.u64(&toks, 2)?;
        cur.u64(&toks, 3)?;
        if toks.len() < 5 {
            return Err(cur.err("ws record missing name"));
        }
        if reuses > uses {
            return Err(cur.err(format!("workspace reuses {reuses} exceed uses {uses}")));
        }
    }
    Ok(())
}

fn gp_stats(cur: &mut Cur<'_>) -> Result<(), CkptError> {
    let toks = cur.rec("gp.stats")?;
    cur.arity(&toks, 6)?;
    cur.usize(&toks, 1)?;
    cur.f64(&toks, 2)?;
    cur.f64(&toks, 3)?;
    cur.flag(&toks, 4)?;
    cur.usize(&toks, 5)?;
    let toks = cur.rec("gp.timing")?;
    cur.arity(&toks, 7)?;
    for i in 1..=6 {
        let v = cur.f64(&toks, i)?;
        if v.is_nan() || v < 0.0 {
            return Err(cur.err(format!("gp timing field {i} is {v}, not >= 0")));
        }
    }
    history(cur, "gp.hist")?;
    recoveries(cur, "gp.recov")?;
    exec(cur)
}

fn lg_stats(cur: &mut Cur<'_>) -> Result<(), CkptError> {
    let toks = cur.rec("lg.stats")?;
    cur.arity(&toks, 5)?;
    for i in 1..=3 {
        cur.f64(&toks, i)?;
    }
    match cur.field(&toks, 4)? {
        "none" | "abacus-failed" | "displacement-exceeded" => Ok(()),
        other => Err(cur.err(format!("unknown lg fallback {other:?}"))),
    }
}

fn dp_run(cur: &mut Cur<'_>) -> Result<(), CkptError> {
    let toks = cur.rec("dp.run")?;
    cur.arity(&toks, 13)?;
    cur.usize(&toks, 1)?;
    // The cursor may rest at 3 (== pass count) transiently at a round
    // boundary; the next step folds it back to 0.
    let pass_idx = cur.usize(&toks, 2)?;
    if pass_idx > 3 {
        return Err(cur.err(format!("dp pass cursor {pass_idx} out of range (0..=3)")));
    }
    let moves = cur.usize(&toks, 3)?;
    let moves_at_round_start = cur.usize(&toks, 4)?;
    if moves_at_round_start > moves {
        return Err(cur.err(format!(
            "round-start move count {moves_at_round_start} exceeds total {moves}"
        )));
    }
    for i in 5..=7 {
        cur.flag(&toks, i)?;
    }
    cur.usize(&toks, 8)?;
    cur.flag(&toks, 9)?;
    let injected = cur.field(&toks, 10)?;
    if injected != "-1" {
        dp_pass(cur, &toks, 10)?;
    }
    cur.f64(&toks, 11)?;
    let consumed = cur.f64(&toks, 12)?;
    if consumed.is_nan() || consumed < 0.0 {
        return Err(cur.err(format!("dp consumed wall-clock {consumed} is not >= 0")));
    }
    let toks = cur.rec("dp.disabled")?;
    cur.arity(&toks, 2)?;
    let n = cur.usize(&toks, 1)?;
    if n > 3 {
        return Err(cur.err(format!("{n} disabled dp passes exceed the 3 that exist")));
    }
    for _ in 0..n {
        let toks = cur.rec("dd")?;
        cur.arity(&toks, 3)?;
        dp_pass(cur, &toks, 1)?;
        cur.f64(&toks, 2)?;
    }
    Ok(())
}

/// GP-stage payload; returns the next engine iteration.
fn gp_stage(cur: &mut Cur<'_>, cells: usize, dim: usize) -> Result<usize, CkptError> {
    let toks = cur.rec("gp.attempt")?;
    match cur.field(&toks, 1)? {
        "primary" => cur.arity(&toks, 2)?,
        "conservative" => {
            cur.arity(&toks, 5)?;
            let c = cur.field(&toks, 2)?;
            if !is_cause(c) {
                return Err(cur.err(format!("unknown divergence cause {c:?}")));
            }
            cur.usize(&toks, 3)?;
            cur.f64(&toks, 4)?;
            cur.placement("pbest", cells)?;
        }
        other => return Err(cur.err(format!("unknown gp attempt {other:?}"))),
    }

    let toks = cur.rec("eng.counters")?;
    cur.arity(&toks, 6)?;
    let next_iter = cur.usize(&toks, 1)?;
    cur.usize(&toks, 2)?;
    cur.usize(&toks, 3)?;
    cur.usize(&toks, 4)?;
    let sched_iteration = cur.usize(&toks, 5)?;
    // The λ scheduler advances at most once per engine iteration.
    if sched_iteration > next_iter {
        return Err(cur.err(format!(
            "scheduler iteration {sched_iteration} is ahead of engine iteration {next_iter}"
        )));
    }

    let toks = cur.rec("eng.scalars")?;
    cur.arity(&toks, 10)?;
    for i in 1..=9 {
        cur.f64(&toks, i)?;
    }

    cur.vec("params", dim, false)?;
    cur.vec("best", dim, false)?;
    solver(cur, "solver", dim)?;
    let hist = history(cur, "eng.hist")?;
    if hist.last().is_some_and(|&last| last >= next_iter) {
        return Err(cur.err(format!(
            "history reaches iteration {} but the engine has only executed up to {}",
            hist.last().copied().unwrap_or(0),
            next_iter
        )));
    }
    recoveries(cur, "eng.recov")?;

    let toks = cur.rec("rollback")?;
    cur.arity(&toks, 8)?;
    let rb_iteration = cur.usize(&toks, 1)?;
    cur.usize(&toks, 2)?;
    let rb_history_len = cur.usize(&toks, 3)?;
    if rb_iteration > next_iter {
        return Err(cur.err(format!(
            "rollback anchor {rb_iteration} is ahead of engine iteration {next_iter}"
        )));
    }
    if rb_history_len > hist.len() {
        return Err(cur.err(format!(
            "rollback keeps {rb_history_len} history records but only {} exist",
            hist.len()
        )));
    }
    for i in 4..=7 {
        cur.f64(&toks, i)?;
    }
    cur.vec("rb.params", dim, false)?;
    solver(cur, "solver.rb", dim)?;
    exec(cur)?;
    Ok(next_iter)
}
