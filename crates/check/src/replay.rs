//! Determinism replayer: run placement stages repeatedly and diff the
//! statistics bit-exactly.
//!
//! Four kinds of replay:
//!
//! * [`replay_gp`] — same seed, same config, `N` runs: any divergence
//!   means hidden state (uninitialized scratch, iteration-order-dependent
//!   accumulation, a stray `HashMap` iteration) leaked into the math;
//! * [`replay_across_threads`] — same seed at several worker counts with
//!   [`dp_gp::GpConfig::deterministic`] forced on, which switches density
//!   accumulation to fixed point: the histories must then match across
//!   thread counts, the strongest reproducibility contract the engine
//!   offers;
//! * [`replay_lg`] / [`replay_dp`] — the same contract per downstream
//!   stage: legalization and detailed placement run `N` times from an
//!   identical starting placement and must produce bit-identical
//!   placements and stats (Abacus iterates a `HashMap` of segments, ISM
//!   batches by scan order — exactly the constructs that silently go
//!   nondeterministic).
//!
//! GP comparison is on [`IterRecord`]s (`hpwl`, `overflow`, `lambda`,
//! `gamma` per iteration) plus the final HPWL/overflow; LG/DP comparison
//! is on their stage stats plus every cell coordinate — all compared for
//! exact equality, not within tolerance.

use dp_dplace::DetailedPlacer;
use dp_gp::{GlobalPlacer, GpConfig, GpError, GpStats, IterRecord};
use dp_lg::{Legalizer, LgError, LgStats};
use dp_netlist::{hpwl, Netlist, Placement};
use dp_num::Float;

/// Outcome of a replay: the reference run's summary plus the first
/// divergence found, if any.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Number of runs compared (>= 2).
    pub runs: usize,
    /// Human-readable description of the first difference, `None` when all
    /// runs were bit-identical.
    pub divergence: Option<String>,
    /// Iterations of the reference run.
    pub iterations: usize,
    /// Final HPWL of the reference run.
    pub final_hpwl: f64,
    /// Final overflow of the reference run.
    pub final_overflow: f64,
}

impl ReplayReport {
    /// `true` when every run matched the reference bit-for-bit.
    pub fn identical(&self) -> bool {
        self.divergence.is_none()
    }
}

fn describe(iter: usize, field: &str, a: f64, b: f64) -> String {
    format!("iteration {iter}: {field} {a:.17e} != {b:.17e}")
}

fn diff_records(i: usize, a: &IterRecord, b: &IterRecord) -> Option<String> {
    if a.hpwl != b.hpwl {
        return Some(describe(i, "hpwl", a.hpwl, b.hpwl));
    }
    if a.overflow != b.overflow {
        return Some(describe(i, "overflow", a.overflow, b.overflow));
    }
    if a.lambda != b.lambda {
        return Some(describe(i, "lambda", a.lambda, b.lambda));
    }
    if a.gamma != b.gamma {
        return Some(describe(i, "gamma", a.gamma, b.gamma));
    }
    None
}

/// First difference between two run histories, or `None` when they are
/// bit-identical (including final HPWL/overflow and iteration count).
pub fn first_divergence(a: &GpStats, b: &GpStats) -> Option<String> {
    if a.iterations != b.iterations {
        return Some(format!(
            "iteration count {} != {}",
            a.iterations, b.iterations
        ));
    }
    if a.history.len() != b.history.len() {
        return Some(format!(
            "history length {} != {}",
            a.history.len(),
            b.history.len()
        ));
    }
    for (i, (ra, rb)) in a.history.iter().zip(&b.history).enumerate() {
        if let Some(d) = diff_records(i, ra, rb) {
            return Some(d);
        }
    }
    if a.final_hpwl != b.final_hpwl {
        return Some(describe(a.iterations, "final_hpwl", a.final_hpwl, b.final_hpwl));
    }
    if a.final_overflow != b.final_overflow {
        return Some(describe(
            a.iterations,
            "final_overflow",
            a.final_overflow,
            b.final_overflow,
        ));
    }
    None
}

/// First coordinate difference between two placements, or `None` when
/// they are bit-identical.
pub fn diff_placements<T: Float>(a: &Placement<T>, b: &Placement<T>) -> Option<String> {
    for (c, (xa, xb)) in a.x.iter().zip(&b.x).enumerate() {
        if xa.to_f64() != xb.to_f64() {
            return Some(format!("cell {c}: x {} != {}", xa.to_f64(), xb.to_f64()));
        }
    }
    for (c, (ya, yb)) in a.y.iter().zip(&b.y).enumerate() {
        if ya.to_f64() != yb.to_f64() {
            return Some(format!("cell {c}: y {} != {}", ya.to_f64(), yb.to_f64()));
        }
    }
    None
}

/// Runs GP `runs` times with identical config and compares every run to
/// the first, per-iteration and on the final placement.
///
/// # Errors
///
/// Propagates [`GpError`] from any run.
pub fn replay_gp<T: Float>(
    nl: &Netlist<T>,
    fixed: &Placement<T>,
    cfg: &GpConfig<T>,
    runs: usize,
) -> Result<ReplayReport, GpError<T>> {
    let runs = runs.max(2);
    let reference = GlobalPlacer::new(cfg.clone()).place(nl, fixed)?;
    let mut divergence = None;
    for r in 1..runs {
        let other = GlobalPlacer::new(cfg.clone()).place(nl, fixed)?;
        if divergence.is_none() {
            divergence = first_divergence(&reference.stats, &other.stats)
                .or_else(|| diff_placements(&reference.placement, &other.placement))
                .map(|d| format!("run 0 vs run {r}: {d}"));
        }
    }
    Ok(ReplayReport {
        runs,
        divergence,
        iterations: reference.stats.iterations,
        final_hpwl: reference.stats.final_hpwl,
        final_overflow: reference.stats.final_overflow,
    })
}

/// Runs GP once per entry of `threads` with density accumulation forced to
/// the deterministic fixed-point path, and requires bit-identical
/// histories across all thread counts.
///
/// # Errors
///
/// Propagates [`GpError`] from any run.
pub fn replay_across_threads<T: Float>(
    nl: &Netlist<T>,
    fixed: &Placement<T>,
    cfg: &GpConfig<T>,
    threads: &[usize],
) -> Result<ReplayReport, GpError<T>> {
    let mut runs = Vec::new();
    for &t in threads {
        let mut c = cfg.clone();
        c.threads = t.max(1);
        // The whole point of the exercise: force the thread-count-invariant
        // accumulation path even for the serial run.
        c.deterministic = Some(true);
        runs.push((t, GlobalPlacer::new(c).place(nl, fixed)?));
    }
    let mut divergence = None;
    if let Some(((t0, reference), rest)) = runs.split_first() {
        for (t, other) in rest {
            if divergence.is_none() {
                divergence = first_divergence(&reference.stats, &other.stats)
                    .or_else(|| diff_placements(&reference.placement, &other.placement))
                    .map(|d| format!("threads {t0} vs threads {t}: {d}"));
            }
        }
        Ok(ReplayReport {
            runs: runs.len(),
            divergence,
            iterations: reference.stats.iterations,
            final_hpwl: reference.stats.final_hpwl,
            final_overflow: reference.stats.final_overflow,
        })
    } else {
        Ok(ReplayReport {
            runs: 0,
            divergence: Some("no thread counts given".to_string()),
            iterations: 0,
            final_hpwl: 0.0,
            final_overflow: 0.0,
        })
    }
}

/// Outcome of a per-stage (LG/DP) replay.
#[derive(Debug, Clone)]
pub struct StageReplay {
    /// Number of runs compared (>= 2).
    pub runs: usize,
    /// First difference found (stats field or cell coordinate), `None`
    /// when every run was bit-identical.
    pub divergence: Option<String>,
    /// HPWL of the reference run's output placement.
    pub final_hpwl: f64,
}

impl StageReplay {
    /// `true` when every run matched the reference bit-for-bit.
    pub fn identical(&self) -> bool {
        self.divergence.is_none()
    }
}

fn diff_lg_stats(a: &LgStats, b: &LgStats) -> Option<String> {
    if a.avg_displacement != b.avg_displacement {
        return Some(format!(
            "avg_displacement {:.17e} != {:.17e}",
            a.avg_displacement, b.avg_displacement
        ));
    }
    if a.max_displacement != b.max_displacement {
        return Some(format!(
            "max_displacement {:.17e} != {:.17e}",
            a.max_displacement, b.max_displacement
        ));
    }
    if a.fallback != b.fallback {
        return Some(format!("fallback {:?} != {:?}", a.fallback, b.fallback));
    }
    None
}

/// Legalizes `start` `runs` times with the same legalizer and compares
/// stats and every cell coordinate to the first run. Runtime is excluded
/// (wall-clock is never golden).
///
/// # Errors
///
/// Propagates [`LgError`] from any run.
pub fn replay_lg<T: Float>(
    nl: &Netlist<T>,
    start: &Placement<T>,
    legalizer: &Legalizer,
    runs: usize,
) -> Result<StageReplay, LgError> {
    let runs = runs.max(2);
    let mut reference = start.clone();
    let ref_stats = legalizer.clone().legalize(nl, &mut reference)?;
    let mut divergence = None;
    for r in 1..runs {
        let mut other = start.clone();
        let other_stats = legalizer.clone().legalize(nl, &mut other)?;
        if divergence.is_none() {
            divergence = diff_lg_stats(&ref_stats, &other_stats)
                .or_else(|| diff_placements(&reference, &other))
                .map(|d| format!("run 0 vs run {r}: {d}"));
        }
    }
    Ok(StageReplay {
        runs,
        divergence,
        final_hpwl: hpwl(nl, &reference).to_f64(),
    })
}

/// Runs detailed placement `runs` times from the same legal placement and
/// compares stats (moves, HPWL) and every cell coordinate to the first
/// run.
pub fn replay_dp<T: Float>(
    nl: &Netlist<T>,
    start: &Placement<T>,
    placer: &DetailedPlacer,
    runs: usize,
) -> StageReplay {
    let runs = runs.max(2);
    let mut reference = start.clone();
    let ref_stats = placer.run(nl, &mut reference);
    let mut divergence = None;
    for r in 1..runs {
        let mut other = start.clone();
        let other_stats = placer.run(nl, &mut other);
        if divergence.is_none() {
            let d = if ref_stats.moves != other_stats.moves {
                Some(format!(
                    "moves {} != {}",
                    ref_stats.moves, other_stats.moves
                ))
            } else if ref_stats.final_hpwl != other_stats.final_hpwl {
                Some(format!(
                    "final_hpwl {:.17e} != {:.17e}",
                    ref_stats.final_hpwl, other_stats.final_hpwl
                ))
            } else {
                diff_placements(&reference, &other)
            };
            divergence = d.map(|d| format!("run 0 vs run {r}: {d}"));
        }
    }
    StageReplay {
        runs,
        divergence,
        final_hpwl: ref_stats.final_hpwl,
    }
}
