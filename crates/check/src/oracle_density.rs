//! Definition-oracles for the electrostatic density system (paper §III-B).
//!
//! Everything here is stated from first principles, independent of
//! `dp-density`'s scatter tricks and of `dp-dct`'s FFT machinery:
//!
//! * the density map is a plain loop over *all* bins per cell, with the
//!   ePlace smoothing restated from its definition (cells thinner than
//!   `sqrt(2)` bins stretch to that width with proportionally reduced
//!   density);
//! * the Poisson solve is a direct cosine-basis projection: spectral
//!   coefficients via the orthogonality relation, then potential / field /
//!   energy as explicit double sums over all `(u, v)` modes (paper
//!   Eqs. (5)–(9), quadratic time);
//! * overflow and the per-cell gradient gather follow the same
//!   definitions the operator implements.
//!
//! All arrays are x-major: bin `(i, j)` lives at `i * my + j`.

use std::f64::consts::{PI, SQRT_2};

use dp_netlist::{Netlist, Placement, Rect};
use dp_num::Float;

/// A bin grid restated in `f64`, independent of `dp_density::BinGrid`.
#[derive(Debug, Clone, Copy)]
pub struct OracleGrid {
    /// Region lower-left x.
    pub xl: f64,
    /// Region lower-left y.
    pub yl: f64,
    /// Bin width.
    pub bin_w: f64,
    /// Bin height.
    pub bin_h: f64,
    /// Bin count along x.
    pub mx: usize,
    /// Bin count along y.
    pub my: usize,
}

impl OracleGrid {
    /// Builds the grid covering `region` with `mx x my` bins.
    pub fn from_region<T: Float>(region: Rect<T>, mx: usize, my: usize) -> Self {
        let (xl, yl) = (region.xl.to_f64(), region.yl.to_f64());
        let (xh, yh) = (region.xh.to_f64(), region.yh.to_f64());
        Self {
            xl,
            yl,
            bin_w: (xh - xl) / mx as f64,
            bin_h: (yh - yl) / my as f64,
            mx,
            my,
        }
    }

    /// Flat index of bin `(i, j)`.
    pub fn index(&self, i: usize, j: usize) -> usize {
        i * self.my + j
    }

    /// Area of one bin.
    pub fn bin_area(&self) -> f64 {
        self.bin_w * self.bin_h
    }

    /// Bin `(i, j)` as `[xl, yl, xh, yh]`.
    fn bin_rect(&self, i: usize, j: usize) -> [f64; 4] {
        [
            self.xl + i as f64 * self.bin_w,
            self.yl + j as f64 * self.bin_h,
            self.xl + (i + 1) as f64 * self.bin_w,
            self.yl + (j + 1) as f64 * self.bin_h,
        ]
    }
}

fn overlap(a: &[f64; 4], b: &[f64; 4]) -> f64 {
    let w = a[2].min(b[2]) - a[0].max(b[0]);
    let h = a[3].min(b[3]) - a[1].max(b[1]);
    if w > 0.0 && h > 0.0 {
        w * h
    } else {
        0.0
    }
}

/// The ePlace-smoothed footprint, restated from its definition: a cell of
/// size `w x h` centered at `(cx, cy)` scatters over a rectangle at least
/// `sqrt(2)` bins wide/tall, with density scaled so total charge stays
/// `w * h`. Non-finite or negative inputs scatter nothing.
///
/// Returns `([xl, yl, xh, yh], scale)`.
pub fn smoothed_rect_oracle(
    cx: f64,
    cy: f64,
    w: f64,
    h: f64,
    grid: &OracleGrid,
) -> ([f64; 4], f64) {
    if !(cx.is_finite() && cy.is_finite() && w.is_finite() && h.is_finite()) || w < 0.0 || h < 0.0
    {
        return ([0.0; 4], 0.0);
    }
    let min_w = SQRT_2 * grid.bin_w;
    let min_h = SQRT_2 * grid.bin_h;
    let (w2, sx) = if w < min_w { (min_w, w / min_w) } else { (w, 1.0) };
    let (h2, sy) = if h < min_h { (min_h, h / min_h) } else { (h, 1.0) };
    (
        [cx - w2 / 2.0, cy - h2 / 2.0, cx + w2 / 2.0, cy + h2 / 2.0],
        sx * sy,
    )
}

/// Movable density map in **area units**: per bin, the summed smoothed
/// overlap area of every movable cell. Plain per-cell loop over all bins.
pub fn movable_map_oracle<T: Float>(
    nl: &Netlist<T>,
    p: &Placement<T>,
    grid: &OracleGrid,
) -> Vec<f64> {
    let mut map = vec![0.0; grid.mx * grid.my];
    for c in 0..nl.num_movable() {
        let (rect, scale) = smoothed_rect_oracle(
            p.x[c].to_f64(),
            p.y[c].to_f64(),
            nl.cell_widths()[c].to_f64(),
            nl.cell_heights()[c].to_f64(),
            grid,
        );
        if scale == 0.0 {
            continue;
        }
        for i in 0..grid.mx {
            for j in 0..grid.my {
                let a = overlap(&rect, &grid.bin_rect(i, j));
                if a > 0.0 {
                    map[grid.index(i, j)] += a * scale;
                }
            }
        }
    }
    map
}

/// Fixed density map in area units: fixed cells scatter their *unsmoothed*
/// rectangle, clipped to the region (a pad overhanging the boundary only
/// counts the inside part).
pub fn fixed_map_oracle<T: Float>(
    nl: &Netlist<T>,
    p: &Placement<T>,
    grid: &OracleGrid,
) -> Vec<f64> {
    let mut map = vec![0.0; grid.mx * grid.my];
    let region = [
        grid.xl,
        grid.yl,
        grid.xl + grid.mx as f64 * grid.bin_w,
        grid.yl + grid.my as f64 * grid.bin_h,
    ];
    for c in nl.num_movable()..nl.num_cells() {
        let (cx, cy) = (p.x[c].to_f64(), p.y[c].to_f64());
        let (w, h) = (nl.cell_widths()[c].to_f64(), nl.cell_heights()[c].to_f64());
        if !(cx.is_finite() && cy.is_finite() && w.is_finite() && h.is_finite())
            || w < 0.0
            || h < 0.0
        {
            continue;
        }
        let rect = [
            (cx - w / 2.0).max(region[0]),
            (cy - h / 2.0).max(region[1]),
            (cx + w / 2.0).min(region[2]),
            (cy + h / 2.0).min(region[3]),
        ];
        for i in 0..grid.mx {
            for j in 0..grid.my {
                let a = overlap(&rect, &grid.bin_rect(i, j));
                if a > 0.0 {
                    map[grid.index(i, j)] += a;
                }
            }
        }
    }
    map
}

/// Charge map in density units: `(movable + fixed) / bin_area`.
pub fn charge_map_oracle(movable: &[f64], fixed: Option<&[f64]>, grid: &OracleGrid) -> Vec<f64> {
    let inv = 1.0 / grid.bin_area();
    movable
        .iter()
        .enumerate()
        .map(|(b, &m)| (m + fixed.map_or(0.0, |f| f[b])) * inv)
        .collect()
}

/// Density overflow `tau` (paper's stopping criterion): the movable area
/// exceeding each bin's free capacity `target * (bin_area - fixed)`,
/// summed and normalized by total movable area. Zero when there is no
/// movable area.
pub fn overflow_oracle<T: Float>(
    nl: &Netlist<T>,
    movable: &[f64],
    fixed: Option<&[f64]>,
    grid: &OracleGrid,
    target_density: f64,
) -> f64 {
    let bin_area = grid.bin_area();
    let mut over = 0.0;
    for (b, &m) in movable.iter().enumerate() {
        let f = fixed.map_or(0.0, |f| f[b]);
        let capacity = (target_density * (bin_area - f)).max(0.0);
        over += (m - capacity).max(0.0);
    }
    let area: f64 = (0..nl.num_movable())
        .map(|c| nl.cell_widths()[c].to_f64() * nl.cell_heights()[c].to_f64())
        .sum();
    if area <= 0.0 {
        return 0.0;
    }
    over / area
}

/// Potential, field, and energy from a direct cosine-basis projection.
#[derive(Debug, Clone)]
pub struct FieldOracle {
    /// Electric potential `psi` per bin.
    pub potential: Vec<f64>,
    /// Field `xi_x = -d psi / dx` per bin (bin units).
    pub field_x: Vec<f64>,
    /// Field `xi_y = -d psi / dy` per bin (bin units).
    pub field_y: Vec<f64>,
    /// System energy `0.5 * sum rho * psi`.
    pub energy: f64,
}

/// Solves the Neumann-boundary Poisson problem for charge map `rho`
/// (x-major `mx x my`, density units) by explicit spectral sums.
///
/// The density expands as
/// `rho_ij = sum_{u,v} a_uv cos(w_u (i+1/2)) cos(w_v (j+1/2))` with
/// `w_u = pi u / mx`; the coefficients come from the cosine orthogonality
/// relation (`a_uv = c_u c_v / (mx my) * sum_ij rho_ij cos cos`, `c_0 = 1`,
/// `c_u = 2` otherwise) — so this oracle also independently validates the
/// DCT normalization conventions. Then (paper Eqs. (8)–(9), DC removed):
///
/// * `psi   = sum a_uv / (w_u^2 + w_v^2) cos cos`
/// * `xi_x  = sum a_uv w_u / (w_u^2 + w_v^2) sin cos`
/// * `xi_y  = sum a_uv w_v / (w_u^2 + w_v^2) cos sin`
///
/// # Panics
///
/// Panics if `rho.len() != mx * my`.
pub fn field_oracle(rho: &[f64], mx: usize, my: usize) -> FieldOracle {
    assert_eq!(rho.len(), mx * my, "charge map shape mismatch");
    let wu = |u: usize| PI * u as f64 / mx as f64;
    let wv = |v: usize| PI * v as f64 / my as f64;
    // Spectral coefficients via orthogonality.
    let mut a = vec![0.0; mx * my];
    for u in 0..mx {
        for v in 0..my {
            let cu = if u == 0 { 1.0 } else { 2.0 };
            let cv = if v == 0 { 1.0 } else { 2.0 };
            let mut acc = 0.0;
            for i in 0..mx {
                for j in 0..my {
                    acc += rho[i * my + j]
                        * (wu(u) * (i as f64 + 0.5)).cos()
                        * (wv(v) * (j as f64 + 0.5)).cos();
                }
            }
            a[u * my + v] = cu * cv / (mx * my) as f64 * acc;
        }
    }
    let mut potential = vec![0.0; mx * my];
    let mut field_x = vec![0.0; mx * my];
    let mut field_y = vec![0.0; mx * my];
    for i in 0..mx {
        for j in 0..my {
            let (mut psi, mut fx, mut fy) = (0.0, 0.0, 0.0);
            for u in 0..mx {
                for v in 0..my {
                    if u == 0 && v == 0 {
                        continue; // DC mode: zero-mean potential
                    }
                    let denom = wu(u) * wu(u) + wv(v) * wv(v);
                    let auv = a[u * my + v];
                    let (cx, sx) = {
                        let t = wu(u) * (i as f64 + 0.5);
                        (t.cos(), t.sin())
                    };
                    let (cy, sy) = {
                        let t = wv(v) * (j as f64 + 0.5);
                        (t.cos(), t.sin())
                    };
                    psi += auv / denom * cx * cy;
                    fx += auv * wu(u) / denom * sx * cy;
                    fy += auv * wv(v) / denom * cx * sy;
                }
            }
            potential[i * my + j] = psi;
            field_x[i * my + j] = fx;
            field_y[i * my + j] = fy;
        }
    }
    let energy = 0.5
        * rho
            .iter()
            .zip(&potential)
            .map(|(r, p)| r * p)
            .sum::<f64>();
    FieldOracle {
        potential,
        field_x,
        field_y,
        energy,
    }
}

/// The per-cell gradient gather (paper §III-B2): each movable cell
/// accumulates `overlap * scale / bin_area * field` over its smoothed
/// footprint's bins; gradient is minus the force, converted from bin units
/// to layout units.
///
/// Returns `(grad_x, grad_y)` over all cells (fixed entries zero).
pub fn density_gradient_oracle<T: Float>(
    nl: &Netlist<T>,
    p: &Placement<T>,
    grid: &OracleGrid,
    field_x: &[f64],
    field_y: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let n = nl.num_cells();
    let mut gx = vec![0.0; n];
    let mut gy = vec![0.0; n];
    let inv_bin = 1.0 / grid.bin_area();
    for c in 0..nl.num_movable() {
        let (rect, scale) = smoothed_rect_oracle(
            p.x[c].to_f64(),
            p.y[c].to_f64(),
            nl.cell_widths()[c].to_f64(),
            nl.cell_heights()[c].to_f64(),
            grid,
        );
        if scale == 0.0 {
            continue;
        }
        let (mut fx, mut fy) = (0.0, 0.0);
        for i in 0..grid.mx {
            for j in 0..grid.my {
                let a = overlap(&rect, &grid.bin_rect(i, j));
                if a > 0.0 {
                    let q = a * scale * inv_bin;
                    fx += q * field_x[grid.index(i, j)];
                    fy += q * field_y[grid.index(i, j)];
                }
            }
        }
        gx[c] = -fx / grid.bin_w;
        gy[c] = -fy / grid.bin_h;
    }
    (gx, gy)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::NetlistBuilder;

    fn grid() -> OracleGrid {
        OracleGrid::from_region(Rect::new(0.0, 0.0, 16.0, 16.0), 4, 4)
    }

    #[test]
    fn movable_map_conserves_area() {
        let mut b = NetlistBuilder::new(0.0, 0.0, 16.0, 16.0);
        let a = b.add_movable_cell(2.0, 3.0);
        let c = b.add_movable_cell(0.5, 0.5); // thinner than sqrt(2) bins
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)]).expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![8.0, 5.0];
        p.y = vec![8.0, 11.0];
        let map = movable_map_oracle(&nl, &p, &grid());
        let total: f64 = map.iter().sum();
        assert!((total - (6.0 + 0.25)).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn zero_area_cells_scatter_nothing() {
        let mut b = NetlistBuilder::new(0.0, 0.0, 16.0, 16.0);
        let a = b.add_movable_cell(0.0, 0.0);
        let c = b.add_movable_cell(0.0, 5.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)]).expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![8.0, 8.0];
        p.y = vec![8.0, 8.0];
        let map = movable_map_oracle(&nl, &p, &grid());
        assert!(map.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn uniform_charge_has_zero_field() {
        let rho = vec![0.75; 16];
        let sol = field_oracle(&rho, 4, 4);
        for b in 0..16 {
            assert!(sol.field_x[b].abs() < 1e-12);
            assert!(sol.field_y[b].abs() < 1e-12);
            assert!(sol.potential[b].abs() < 1e-12);
        }
        assert!(sol.energy.abs() < 1e-12);
    }

    #[test]
    fn point_charge_field_points_away() {
        // Charge concentrated in bin (0, 0): the field in distant bins must
        // push charge away (positive x-field at larger i on row j=0).
        let mut rho = vec![0.0; 16];
        rho[0] = 1.0;
        let sol = field_oracle(&rho, 4, 4);
        assert!(sol.field_x[2 * 4] > 0.0, "field {:?}", sol.field_x);
        assert!(sol.energy > 0.0);
    }

    #[test]
    fn overflow_zero_when_spread_out() {
        let mut b = NetlistBuilder::new(0.0, 0.0, 16.0, 16.0);
        let a = b.add_movable_cell(2.0, 2.0);
        let c = b.add_movable_cell(2.0, 2.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)]).expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![2.0, 14.0];
        p.y = vec![2.0, 14.0];
        let g = grid();
        let map = movable_map_oracle(&nl, &p, &g);
        let tau = overflow_oracle(&nl, &map, None, &g, 1.0);
        assert_eq!(tau, 0.0);
        // Stacked on one spot they must overflow a 1.0-target bin.
        p.x = vec![8.0, 8.0];
        p.y = vec![8.0, 8.0];
        let map = movable_map_oracle(&nl, &p, &g);
        let tau = overflow_oracle(&nl, &map, None, &g, 0.1);
        assert!(tau > 0.0);
    }
}
