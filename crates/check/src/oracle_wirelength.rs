//! Definition-oracles for the wirelength models.
//!
//! Every function here is a direct transcription of the paper formula it
//! implements — one net at a time, one axis at a time, `f64` accumulation,
//! no scratch reuse, no fusion, no parallelism. The optimized kernels in
//! `dp-wirelength` must agree with these to tight tolerances on any
//! design, including the adversarial ones from `dp_gen::adversarial`.

use dp_netlist::{Netlist, Placement};
use dp_num::Float;

/// Oracle cost plus analytic gradient (all cells; fixed-cell entries are
/// populated too — compare only the movable prefix against operators that
/// skip fixed cells).
#[derive(Debug, Clone)]
pub struct WlOracle {
    /// Total cost over both axes, weighted per net.
    pub cost: f64,
    /// `d cost / d x` per cell.
    pub grad_x: Vec<f64>,
    /// `d cost / d y` per cell.
    pub grad_y: Vec<f64>,
}

/// Pin coordinates of one net along one axis, with owning cells.
fn axis_pins<T: Float>(
    nl: &Netlist<T>,
    p: &Placement<T>,
    net: dp_netlist::NetId,
    x_axis: bool,
) -> Vec<(usize, f64)> {
    nl.net_pins(net)
        .iter()
        .map(|&pin| {
            let cell = nl.pin_cell(pin).index();
            let (dx, dy) = nl.pin_offset(pin);
            let v = if x_axis {
                p.x[cell].to_f64() + dx.to_f64()
            } else {
                p.y[cell].to_f64() + dy.to_f64()
            };
            (cell, v)
        })
        .collect()
}

/// Exact weighted half-perimeter wirelength:
/// `sum_nets w_e * (max x - min x + max y - min y)`, degenerate nets
/// contributing zero.
pub fn hpwl_oracle<T: Float>(nl: &Netlist<T>, p: &Placement<T>) -> f64 {
    let mut total = 0.0;
    for net in nl.nets() {
        if nl.net_degree(net) < 2 {
            continue;
        }
        let w = nl.net_weight(net).to_f64();
        for x_axis in [true, false] {
            let pins = axis_pins(nl, p, net, x_axis);
            let hi = pins.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
            let lo = pins.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            total += w * (hi - lo);
        }
    }
    total
}

/// Weighted-average wirelength (paper Eq. (3)) with the analytic gradient
/// of Eq. (6), stabilized with the usual max/min shifts.
///
/// Per net and axis, with `a+_i = exp((p_i - max)/gamma)` and
/// `a-_i = exp(-(p_i - min)/gamma)`:
///
/// ```text
/// WA = sum_i p_i a+_i / sum_i a+_i  -  sum_i p_i a-_i / sum_i a-_i
/// ```
pub fn wa_oracle<T: Float>(nl: &Netlist<T>, p: &Placement<T>, gamma: f64) -> WlOracle {
    let n = nl.num_cells();
    let mut out = WlOracle {
        cost: 0.0,
        grad_x: vec![0.0; n],
        grad_y: vec![0.0; n],
    };
    for net in nl.nets() {
        if nl.net_degree(net) < 2 {
            continue;
        }
        let w = nl.net_weight(net).to_f64();
        for x_axis in [true, false] {
            let pins = axis_pins(nl, p, net, x_axis);
            let hi = pins.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
            let lo = pins.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            let ap: Vec<f64> = pins.iter().map(|&(_, v)| ((v - hi) / gamma).exp()).collect();
            let am: Vec<f64> = pins.iter().map(|&(_, v)| (-(v - lo) / gamma).exp()).collect();
            let bp: f64 = ap.iter().sum();
            let bm: f64 = am.iter().sum();
            let cp: f64 = pins.iter().zip(&ap).map(|(&(_, v), a)| v * a).sum();
            let cm: f64 = pins.iter().zip(&am).map(|(&(_, v), a)| v * a).sum();
            out.cost += w * (cp / bp - cm / bm);
            for (&(cell, v), (&a_p, &a_m)) in pins.iter().zip(ap.iter().zip(&am)) {
                // d(cp/bp)/dp_j and d(cm/bm)/dp_j from the quotient rule;
                // the stabilization shifts cancel exactly.
                let dplus = a_p * ((1.0 + v / gamma) / bp - cp / (gamma * bp * bp));
                let dminus = a_m * ((1.0 - v / gamma) / bm + cm / (gamma * bm * bm));
                let g = w * (dplus - dminus);
                if x_axis {
                    out.grad_x[cell] += g;
                } else {
                    out.grad_y[cell] += g;
                }
            }
        }
    }
    out
}

/// Log-sum-exp wirelength with its softmax gradient.
///
/// Per net and axis:
/// `gamma * (ln sum_i e^{p_i/gamma} + ln sum_i e^{-p_i/gamma})`,
/// stabilized by the max/min shifts.
pub fn lse_oracle<T: Float>(nl: &Netlist<T>, p: &Placement<T>, gamma: f64) -> WlOracle {
    let n = nl.num_cells();
    let mut out = WlOracle {
        cost: 0.0,
        grad_x: vec![0.0; n],
        grad_y: vec![0.0; n],
    };
    for net in nl.nets() {
        if nl.net_degree(net) < 2 {
            continue;
        }
        let w = nl.net_weight(net).to_f64();
        for x_axis in [true, false] {
            let pins = axis_pins(nl, p, net, x_axis);
            let hi = pins.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
            let lo = pins.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            let sp: f64 = pins.iter().map(|&(_, v)| ((v - hi) / gamma).exp()).sum();
            let sm: f64 = pins.iter().map(|&(_, v)| ((lo - v) / gamma).exp()).sum();
            // gamma ln sum e^{p/gamma} = gamma (ln sp) + hi, and the mirror
            // term with -lo.
            out.cost += w * (gamma * (sp.ln() + sm.ln()) + hi - lo);
            for &(cell, v) in &pins {
                let g = w
                    * (((v - hi) / gamma).exp() / sp - ((lo - v) / gamma).exp() / sm);
                if x_axis {
                    out.grad_x[cell] += g;
                } else {
                    out.grad_y[cell] += g;
                }
            }
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::NetlistBuilder;

    fn two_cell() -> (Netlist<f64>, Placement<f64>) {
        let mut b = NetlistBuilder::new(0.0, 0.0, 100.0, 100.0);
        let a = b.add_movable_cell(1.0, 1.0);
        let c = b.add_movable_cell(1.0, 1.0);
        b.add_net(2.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)]).expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![10.0, 25.0];
        p.y = vec![40.0, 34.0];
        (nl, p)
    }

    #[test]
    fn hpwl_oracle_matches_hand_computation() {
        let (nl, p) = two_cell();
        assert_eq!(hpwl_oracle(&nl, &p), 2.0 * (15.0 + 6.0));
    }

    #[test]
    fn wa_approaches_hpwl_at_small_gamma() {
        let (nl, p) = two_cell();
        let exact = hpwl_oracle(&nl, &p);
        let wa = wa_oracle(&nl, &p, 0.05).cost;
        assert!((wa - exact).abs() < 0.02, "wa {wa} vs hpwl {exact}");
    }

    #[test]
    fn lse_upper_bounds_hpwl() {
        let (nl, p) = two_cell();
        let exact = hpwl_oracle(&nl, &p);
        let lse = lse_oracle(&nl, &p, 1.0).cost;
        assert!(lse >= exact, "lse {lse} must dominate hpwl {exact}");
        assert!(lse - exact < 2.0 * 4.0 * 1.0_f64.ln().max(2.0f64.ln()) * 4.0);
    }

    #[test]
    fn oracle_gradients_match_finite_differences() {
        let (nl, mut p) = two_cell();
        for gamma in [0.5, 2.0] {
            type Oracle = fn(&Netlist<f64>, &Placement<f64>, f64) -> WlOracle;
            for oracle in [wa_oracle::<f64> as Oracle, lse_oracle::<f64> as Oracle] {
                let g = oracle(&nl, &p, gamma);
                let eps = 1e-6;
                for i in 0..2 {
                    let orig = p.x[i];
                    p.x[i] = orig + eps;
                    let fp = oracle(&nl, &p, gamma).cost;
                    p.x[i] = orig - eps;
                    let fm = oracle(&nl, &p, gamma).cost;
                    p.x[i] = orig;
                    let fd = (fp - fm) / (2.0 * eps);
                    assert!(
                        (g.grad_x[i] - fd).abs() < 1e-6,
                        "gamma {gamma} cell {i}: analytic {} vs fd {fd}",
                        g.grad_x[i]
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_nets_contribute_nothing() {
        let mut b = NetlistBuilder::new(0.0, 0.0, 10.0, 10.0).allow_degenerate_nets(true);
        let a = b.add_movable_cell(1.0, 1.0);
        let c = b.add_movable_cell(1.0, 1.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)]).expect("valid");
        b.add_net(5.0, vec![(a, 0.25, 0.25)]).expect("degenerate allowed");
        b.add_net(5.0, vec![]).expect("degenerate allowed");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![1.0, 4.0];
        assert_eq!(hpwl_oracle(&nl, &p), 3.0);
        let wa = wa_oracle(&nl, &p, 0.5);
        assert!(wa.cost.is_finite());
    }
}
