//! Direct `O(n^2)` oracles for the 2-D DCT family (paper Eqs. (7)–(9)).
//!
//! Each transform is written as its defining double sum in the library
//! normalization (the one under which `idct2(dct2(x)) == x`):
//!
//! * 1-D DCT: `y[k] = (2/N) sum_n x[n] cos(pi (n+1/2) k / N)`;
//! * 1-D IDCT: `y[k] = x[0]/2 + sum_{n>=1} x[n] cos(pi n (k+1/2) / N)`;
//! * 1-D IDXST: `y[k] = sum_n x[n] sin(pi n (k+1/2) / N)`.
//!
//! 2-D transforms apply the row transform along the second axis and the
//! column transform along the first, exactly like `dp_dct`'s plans; the
//! mixed transforms pair IDXST on one axis with IDCT on the other (paper
//! Eq. (9), the electric-field transforms). Matrices are row-major
//! `n1 x n2` (`x[i * n2 + j]`).
//!
//! No FFT, no recursion, no reordering tricks: these run in quadratic time
//! and exist purely so the fast plans have something trustworthy to be
//! compared against.

use std::f64::consts::PI;

/// `cos(pi (n + 1/2) k / len)` — forward DCT basis.
fn fwd(n: usize, k: usize, len: usize) -> f64 {
    (PI * (n as f64 + 0.5) * k as f64 / len as f64).cos()
}

/// `cos(pi n (k + 1/2) / len)` — inverse DCT basis.
fn inv_cos(n: usize, k: usize, len: usize) -> f64 {
    (PI * n as f64 * (k as f64 + 0.5) / len as f64).cos()
}

/// `sin(pi n (k + 1/2) / len)` — inverse DXST basis.
fn inv_sin(n: usize, k: usize, len: usize) -> f64 {
    (PI * n as f64 * (k as f64 + 0.5) / len as f64).sin()
}

fn assert_shape(x: &[f64], n1: usize, n2: usize) {
    assert_eq!(x.len(), n1 * n2, "matrix shape mismatch: {} != {n1}x{n2}", x.len());
}

/// Forward 2-D DCT by the defining quadruple sum:
/// `Y[k1][k2] = (4/(n1 n2)) sum_{i,j} x[i][j] fwd(i,k1,n1) fwd(j,k2,n2)`.
///
/// # Panics
///
/// Panics if `x.len() != n1 * n2`.
pub fn dct2_oracle(x: &[f64], n1: usize, n2: usize) -> Vec<f64> {
    assert_shape(x, n1, n2);
    let scale = 4.0 / (n1 * n2) as f64;
    let mut out = vec![0.0; n1 * n2];
    for k1 in 0..n1 {
        for k2 in 0..n2 {
            let mut acc = 0.0;
            for i in 0..n1 {
                for j in 0..n2 {
                    acc += x[i * n2 + j] * fwd(i, k1, n1) * fwd(j, k2, n2);
                }
            }
            out[k1 * n2 + k2] = scale * acc;
        }
    }
    out
}

/// `1/2` on the DC term, `1` elsewhere — the inverse-DCT weighting.
fn half0(u: usize) -> f64 {
    if u == 0 {
        0.5
    } else {
        1.0
    }
}

/// Inverse 2-D DCT:
/// `Y[i][j] = sum_{u,v} c_u c_v X[u][v] inv_cos(u,i,n1) inv_cos(v,j,n2)`
/// with `c_0 = 1/2`.
///
/// # Panics
///
/// Panics if `x.len() != n1 * n2`.
pub fn idct2_oracle(x: &[f64], n1: usize, n2: usize) -> Vec<f64> {
    assert_shape(x, n1, n2);
    let mut out = vec![0.0; n1 * n2];
    for i in 0..n1 {
        for j in 0..n2 {
            let mut acc = 0.0;
            for u in 0..n1 {
                for v in 0..n2 {
                    acc += half0(u) * half0(v) * x[u * n2 + v] * inv_cos(u, i, n1)
                        * inv_cos(v, j, n2);
                }
            }
            out[i * n2 + j] = acc;
        }
    }
    out
}

/// IDXST along rows (second axis), IDCT along columns (first axis) —
/// the x-field transform of paper Eq. (9a):
/// `Y[i][j] = sum_{u,v} c_u X[u][v] inv_cos(u,i,n1) inv_sin(v,j,n2)`.
///
/// # Panics
///
/// Panics if `x.len() != n1 * n2`.
pub fn idct_idxst_oracle(x: &[f64], n1: usize, n2: usize) -> Vec<f64> {
    assert_shape(x, n1, n2);
    let mut out = vec![0.0; n1 * n2];
    for i in 0..n1 {
        for j in 0..n2 {
            let mut acc = 0.0;
            for u in 0..n1 {
                for v in 1..n2 {
                    acc += half0(u) * x[u * n2 + v] * inv_cos(u, i, n1) * inv_sin(v, j, n2);
                }
            }
            out[i * n2 + j] = acc;
        }
    }
    out
}

/// IDCT along rows, IDXST along columns — the y-field transform of paper
/// Eq. (9b):
/// `Y[i][j] = sum_{u,v} c_v X[u][v] inv_sin(u,i,n1) inv_cos(v,j,n2)`.
///
/// # Panics
///
/// Panics if `x.len() != n1 * n2`.
pub fn idxst_idct_oracle(x: &[f64], n1: usize, n2: usize) -> Vec<f64> {
    assert_shape(x, n1, n2);
    let mut out = vec![0.0; n1 * n2];
    for i in 0..n1 {
        for j in 0..n2 {
            let mut acc = 0.0;
            for u in 1..n1 {
                for v in 0..n2 {
                    acc += half0(v) * x[u * n2 + v] * inv_sin(u, i, n1) * inv_cos(v, j, n2);
                }
            }
            out[i * n2 + j] = acc;
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.37).sin() + 0.1 * i as f64).collect()
    }

    #[test]
    fn idct2_inverts_dct2() {
        let (n1, n2) = (8, 4);
        let x = ramp(n1 * n2);
        let back = idct2_oracle(&dct2_oracle(&x, n1, n2), n1, n2);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn dc_input_transforms_to_constant() {
        let (n1, n2) = (4, 4);
        let mut spec = vec![0.0; 16];
        spec[0] = 4.0; // DC coefficient
        let y = idct2_oracle(&spec, n1, n2);
        for v in &y {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn idxst_of_dc_is_zero() {
        let (n1, n2) = (4, 8);
        let mut spec = vec![0.0; n1 * n2];
        spec[0] = 3.0;
        assert!(idct_idxst_oracle(&spec, n1, n2).iter().all(|&v| v == 0.0));
        assert!(idxst_idct_oracle(&spec, n1, n2).iter().all(|&v| v == 0.0));
    }
}
