//! Differential verification harness for the placement kernels.
//!
//! The optimized kernels in this workspace (merged wirelength, scattered
//! density, FFT-based DCT) buy their speed with exactly the tricks that
//! make bugs subtle: fused passes, reordered accumulation, spectral
//! identities. This crate holds the *slow, obviously correct* counterpart
//! of each kernel plus the machinery to compare them continuously:
//!
//! * [`oracle_wirelength`] — HPWL, weighted-average (paper Eq. (3)/(6)) and
//!   log-sum-exp wirelength, written as direct per-net/per-axis sums with
//!   analytic gradients;
//! * [`oracle_density`] — the density scatter (with ePlace smoothing
//!   restated from its definition) and the electrostatic field/potential/
//!   energy computed as direct `O(n^2)` cosine-basis sums, independent of
//!   the FFT machinery in `dp-dct`;
//! * [`oracle_dct`] — direct `O(n^2)` DCT/IDCT/IDXST transforms in the
//!   library normalization;
//! * [`gradcheck`] — a central finite-difference gradient checker driven
//!   through the [`dp_autograd::Operator`] trait with a per-operator
//!   tolerance table (wraps [`dp_autograd::check_gradient`] and the
//!   non-unit-seed [`dp_autograd::check_gradient_scaled`]);
//! * [`replay`] — the determinism replayer: runs global placement several
//!   times from the same seed (and across thread counts) and diffs the
//!   per-iteration [`dp_gp::GpStats`] histories bit-exactly; legalization
//!   and detailed placement get the same treatment per stage
//!   ([`replay::replay_lg`] / [`replay::replay_dp`]);
//! * [`golden`] — golden full-flow regression records (hand-rolled JSON,
//!   regenerate with `DP_UPDATE_GOLDEN=1`);
//! * [`trace`] — schema-validating reader for `dp-telemetry` JSONL traces
//!   (balanced span nesting, per-thread timestamp monotonicity),
//!   deliberately independent of the writer;
//! * [`checkpoint`] — schema-validating reader for `DPCKPT` flow
//!   checkpoints (own tokenizer, own table-driven CRC32, cross-field
//!   invariants), deliberately independent of the
//!   `dreamplace_core::checkpoint` writer/reader pair.
//!
//! The differential test suites live in `crates/check/tests/`; the golden
//! full-flow regression lives in the workspace root `tests/differential.rs`
//! against `results/golden/*.json`.

// Library code must surface structured errors instead of panicking;
// tests opt out module-by-module.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod checkpoint;
pub mod golden;
pub mod gradcheck;
pub mod oracle_dct;
pub mod oracle_density;
pub mod oracle_wirelength;
pub mod replay;
pub mod trace;

pub use golden::{update_requested, GoldenError, GoldenRecord, GoldenTolerance};
pub use gradcheck::{check_operator, sample_cells, spec_for, CheckOutcome, CheckSpec};
pub use oracle_dct::{dct2_oracle, idct2_oracle, idct_idxst_oracle, idxst_idct_oracle};
pub use oracle_density::{
    charge_map_oracle, density_gradient_oracle, field_oracle, fixed_map_oracle,
    movable_map_oracle, overflow_oracle, smoothed_rect_oracle, FieldOracle, OracleGrid,
};
pub use oracle_wirelength::{hpwl_oracle, lse_oracle, wa_oracle, WlOracle};
pub use replay::{
    diff_placements, first_divergence, replay_across_threads, replay_dp, replay_gp, replay_lg,
    ReplayReport, StageReplay,
};
pub use checkpoint::{validate_checkpoint_file, validate_checkpoint_str, CkptError, CkptSummary};
pub use trace::{
    validate_file, validate_postmortem_file, validate_postmortem_str, validate_str,
    PostmortemSummary, TraceError, TraceSummary, POSTMORTEM_EVENT_CAP,
};
