//! Central finite-difference gradient checking with per-operator
//! tolerances.
//!
//! Every [`Operator`] implementor in the workspace is validated here: the
//! analytic gradient is compared against central differences of the
//! forward pass, both with a unit upstream gradient
//! ([`dp_autograd::check_gradient`]) and through an `Objective` at a
//! non-unit weight into a pre-seeded buffer
//! ([`dp_autograd::check_gradient_scaled`]), which catches backward passes
//! that overwrite instead of accumulate and fused kernels that ignore
//! their term weight.
//!
//! Tolerances are per-operator ([`spec_for`]): the smooth wirelength
//! models check tightly, the density operator — whose forward is only
//! piecewise smooth in cell positions (bin-boundary crossings) — gets a
//! larger step and a looser bound, and exact HPWL is checked as the
//! piecewise-linear function it is (valid only in general position, away
//! from ties).

use dp_autograd::{check_gradient, check_gradient_scaled, GradientReport, Operator};
use dp_netlist::{Netlist, Placement};
use dp_num::Float;

/// How to finite-difference one operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckSpec {
    /// Central-difference half step.
    pub eps: f64,
    /// Acceptance bound on [`GradientReport::within`].
    pub tol: f64,
    /// Objective term weight for the scaled check (non-unit on purpose).
    pub scale: f64,
    /// Cap on checked cells; larger designs are stride-sampled.
    pub max_cells: usize,
}

impl Default for CheckSpec {
    fn default() -> Self {
        Self {
            eps: 1e-5,
            tol: 1e-5,
            scale: 0.37,
            max_cells: 64,
        }
    }
}

/// The tolerance table, keyed by [`Operator::name`].
///
/// Unknown names get the conservative default — new operators are checked
/// from day one without editing this table, just possibly more strictly
/// than they like.
pub fn spec_for(op_name: &str) -> CheckSpec {
    match op_name {
        // Piecewise linear: exact derivatives away from ties, so the FD
        // error is pure roundoff.
        "hpwl" => CheckSpec {
            eps: 1e-6,
            tol: 1e-6,
            ..CheckSpec::default()
        },
        // Smooth models: analytic everywhere, tight check.
        "wa-wirelength" | "lse-wirelength" => CheckSpec {
            eps: 1e-5,
            tol: 1e-5,
            ..CheckSpec::default()
        },
        // The ePlace backward is a deliberate approximation: the force
        // gathers the *field* over the cell's bin overlaps instead of
        // differentiating the overlap stencil against the potential, so it
        // differs from the exact derivative of the discrete energy by
        // O(bin discretization) — FD can only bound it loosely. This entry
        // is a sanity check on sign and magnitude (a flipped or mis-scaled
        // gradient still trips it); the bit-tight validation of the
        // density backward is the agreement with the definition oracle at
        // 1e-9 in `tests/differential_density.rs`.
        "density" | "fenced-density" => CheckSpec {
            eps: 1e-4,
            tol: 6e-2,
            ..CheckSpec::default()
        },
        _ => CheckSpec::default(),
    }
}

/// Deterministic stride sample of `max_cells` movable cells.
pub fn sample_cells(num_movable: usize, max_cells: usize) -> Vec<usize> {
    if num_movable <= max_cells {
        return (0..num_movable).collect();
    }
    let stride = num_movable as f64 / max_cells as f64;
    (0..max_cells)
        .map(|k| ((k as f64 * stride) as usize).min(num_movable - 1))
        .collect()
}

/// Outcome of checking one operator at one placement.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The operator's [`Operator::name`].
    pub name: String,
    /// Unit-upstream-gradient report.
    pub unit: GradientReport,
    /// Seeded, weighted (objective-path) report.
    pub scaled: GradientReport,
    /// The spec both reports were produced with.
    pub spec: CheckSpec,
}

impl CheckOutcome {
    /// `true` when both reports meet the spec's tolerance.
    pub fn pass(&self) -> bool {
        self.unit.within(self.spec.tol) && self.scaled.within(self.spec.tol)
    }
}

impl std::fmt::Display for CheckOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: unit(abs {:.3e} rel {:.3e}) scaled(abs {:.3e} rel {:.3e}) tol {:.1e} over {} coords",
            self.name,
            self.unit.max_abs_err,
            self.unit.max_rel_err,
            self.scaled.max_abs_err,
            self.scaled.max_rel_err,
            self.spec.tol,
            self.unit.checked + self.scaled.checked,
        )
    }
}

/// Runs both finite-difference checks on `op` at `placement` under `spec`.
pub fn check_operator<T: Float>(
    op: &mut dyn Operator<T>,
    netlist: &Netlist<T>,
    placement: &Placement<T>,
    spec: &CheckSpec,
) -> CheckOutcome {
    let cells = sample_cells(netlist.num_movable(), spec.max_cells);
    let unit = check_gradient(op, netlist, placement, &cells, spec.eps);
    let scaled = check_gradient_scaled(op, netlist, placement, &cells, spec.eps, spec.scale);
    CheckOutcome {
        name: op.name().to_string(),
        unit,
        scaled,
        spec: *spec,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_bounded_and_sorted() {
        let cells = sample_cells(1000, 64);
        assert_eq!(cells.len(), 64);
        assert!(cells.windows(2).all(|w| w[0] < w[1]));
        assert!(*cells.last().expect("non-empty") < 1000);
        assert_eq!(sample_cells(10, 64).len(), 10);
    }

    #[test]
    fn table_distinguishes_density_from_wirelength() {
        assert!(spec_for("density").tol > spec_for("wa-wirelength").tol);
        assert_eq!(spec_for("never-heard-of-it"), CheckSpec::default());
    }
}
