//! Schema-validating reader for `dp-telemetry` JSONL traces.
//!
//! Deliberately independent of the writer in `dp_telemetry::jsonl` — this
//! module re-derives the schema from scratch (its own JSON tokenizer, its
//! own key tables) so an encode bug cannot hide behind a shared
//! implementation. The checks, in order, per line:
//!
//! 1. the line is a flat JSON object (string keys; string or number
//!    values; no nesting) with a known `"ev"` discriminator;
//! 2. exactly the schema's keys for that event kind are present, each
//!    with the right type;
//! 3. structural invariants hold across lines: span ids are unique,
//!    `end` matches an open `begin`, parents are open at begin time and
//!    coarser-grained than their children (`flow < stage < iteration <
//!    kernel`), `iter`/`point` reference an open span (or 0 = root), and
//!    timestamps are monotone non-decreasing per thread;
//! 4. at end of input every span has been closed (balanced nesting —
//!    spans are RAII in the writer, so even a failed flow balances).
//!
//! The CLI exposes this as `dreamplace trace-check <file>`; CI runs it on
//! the trace produced by the smoke job.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// Why a trace failed validation.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read.
    Io(std::io::Error),
    /// A line failed parsing or an invariant, with its 1-based number.
    Line {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// End-of-input invariant failure (e.g. unclosed spans).
    Eof(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "io: {e}"),
            TraceError::Line { line, msg } => write!(f, "line {line}: {msg}"),
            TraceError::Eof(msg) => write!(f, "end of trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// What a valid trace contained, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Non-empty lines validated.
    pub lines: usize,
    /// Spans opened (and, by the balance check, closed).
    pub spans: usize,
    /// Convergence-trace `iter` events.
    pub iters: usize,
    /// Timeline `point` events.
    pub points: usize,
    /// Degradation points among them (name == "degradation").
    pub degradations: usize,
    /// Checkpoint-resume points among them (name == "resume"); a trace
    /// from a `--resume` run carries one per process restart.
    pub resumes: usize,
    /// Scheduler retry points among them (name == "retry"); a trace from
    /// a job that panicked or timed out and was retried from its last
    /// checkpoint carries one per attempt after the first.
    pub retries: usize,
    /// Contained-panic points among them (name == "panic"); the scheduler
    /// records one per attempt that died inside `catch_unwind`.
    pub panics: usize,
    /// Deadline-timeout points among them (name == "timeout").
    pub timeouts: usize,
    /// Kernel counter summaries.
    pub kernels: usize,
    /// Per-worker pool summaries.
    pub workers: usize,
    /// Workspace counter summaries.
    pub workspaces: usize,
    /// Metadata entries.
    pub metas: usize,
}

/// A parsed scalar from a trace line.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    /// Raw number text, kept verbatim so integer and float interpretation
    /// both stay exact.
    Num(String),
}

impl Value {
    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            Value::Str(_) => None,
        }
    }

    /// Floats, including the writer's quoted non-finite markers.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            Value::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Num(_) => None,
        }
    }
}

/// Minimal JSON tokenizer for one flat object. Accepts full JSON string
/// escapes and the full number grammar; rejects nesting, booleans, and
/// null (the schema has neither).
fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let mut fields = Vec::new();

    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && matches!(bytes[*i], b' ' | b'\t' | b'\r' | b'\n') {
            *i += 1;
        }
    };

    fn parse_string(bytes: &[u8], i: &mut usize) -> Result<String, String> {
        if bytes.get(*i) != Some(&b'"') {
            return Err("expected '\"'".to_string());
        }
        *i += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = bytes.get(*i) else {
                return Err("unterminated string".to_string());
            };
            *i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = bytes.get(*i) else {
                        return Err("unterminated escape".to_string());
                    };
                    *i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = bytes
                                .get(*i..*i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            *i += 4;
                            // The writer never emits surrogate pairs
                            // (escapes only C0 controls), so a lone
                            // surrogate is malformed here.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?;
                            out.push(c);
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                // Multi-byte UTF-8: copy the whole char.
                _ if b >= 0x80 => {
                    let start = *i - 1;
                    let s = std::str::from_utf8(&bytes[start..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = s.chars().next().ok_or("empty char")?;
                    out.push(c);
                    *i = start + c.len_utf8();
                }
                _ if b < 0x20 => return Err("unescaped control character".to_string()),
                _ => out.push(b as char),
            }
        }
    }

    fn parse_number(bytes: &[u8], i: &mut usize) -> Result<String, String> {
        let start = *i;
        if bytes.get(*i) == Some(&b'-') {
            *i += 1;
        }
        let digits = |i: &mut usize| {
            let s = *i;
            while *i < bytes.len() && bytes[*i].is_ascii_digit() {
                *i += 1;
            }
            *i > s
        };
        if !digits(i) {
            return Err("expected digits".to_string());
        }
        if bytes.get(*i) == Some(&b'.') {
            *i += 1;
            if !digits(i) {
                return Err("expected digits after '.'".to_string());
            }
        }
        if matches!(bytes.get(*i), Some(b'e' | b'E')) {
            *i += 1;
            if matches!(bytes.get(*i), Some(b'+' | b'-')) {
                *i += 1;
            }
            if !digits(i) {
                return Err("expected exponent digits".to_string());
            }
        }
        std::str::from_utf8(&bytes[start..*i])
            .map(str::to_string)
            .map_err(|_| "invalid utf-8 in number".to_string())
    }

    skip_ws(&mut i);
    if bytes.get(i) != Some(&b'{') {
        return Err("expected '{'".to_string());
    }
    i += 1;
    skip_ws(&mut i);
    if bytes.get(i) == Some(&b'}') {
        i += 1;
    } else {
        loop {
            skip_ws(&mut i);
            let key = parse_string(bytes, &mut i)?;
            skip_ws(&mut i);
            if bytes.get(i) != Some(&b':') {
                return Err(format!("expected ':' after key `{key}`"));
            }
            i += 1;
            skip_ws(&mut i);
            let value = match bytes.get(i) {
                Some(&b'"') => Value::Str(parse_string(bytes, &mut i)?),
                Some(&b'-') | Some(b'0'..=b'9') => Value::Num(parse_number(bytes, &mut i)?),
                Some(&b'{') | Some(&b'[') => {
                    return Err(format!("nested value for key `{key}` (schema is flat)"));
                }
                _ => return Err(format!("unsupported value for key `{key}`")),
            };
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key `{key}`"));
            }
            fields.push((key, value));
            skip_ws(&mut i);
            match bytes.get(i) {
                Some(&b',') => i += 1,
                Some(&b'}') => {
                    i += 1;
                    break;
                }
                _ => return Err("expected ',' or '}'".to_string()),
            }
        }
    }
    skip_ws(&mut i);
    if i != bytes.len() {
        return Err("trailing bytes after object".to_string());
    }
    Ok(fields)
}

/// Span granularity, coarse to fine; parents must be coarser.
fn kind_level(kind: &str) -> Option<u8> {
    match kind {
        "flow" => Some(0),
        "stage" => Some(1),
        "iteration" => Some(2),
        "kernel" => Some(3),
        _ => None,
    }
}

struct OpenSpan {
    level: u8,
}

/// Validates a whole trace held in memory.
///
/// # Errors
///
/// The first schema or invariant violation, with its line number.
pub fn validate_str(text: &str) -> Result<TraceSummary, TraceError> {
    let mut summary = TraceSummary::default();
    // id -> open span (removed on end); `seen` keeps every id ever begun
    // for the uniqueness check.
    let mut open: HashMap<u64, OpenSpan> = HashMap::new();
    let mut seen: HashMap<u64, ()> = HashMap::new();
    let mut last_t: HashMap<u64, u64> = HashMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let err = |msg: String| TraceError::Line { line: line_no, msg };
        let fields = parse_flat_object(raw).map_err(err)?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let need = |key: &str| {
            get(key).ok_or(TraceError::Line {
                line: line_no,
                msg: format!("missing key `{key}`"),
            })
        };
        let need_u64 = |key: &str| {
            need(key)?.as_u64().ok_or(TraceError::Line {
                line: line_no,
                msg: format!("`{key}` is not an unsigned integer"),
            })
        };
        let need_f64 = |key: &str| {
            need(key)?.as_f64().ok_or(TraceError::Line {
                line: line_no,
                msg: format!("`{key}` is not a float or non-finite marker"),
            })
        };
        let need_str = |key: &str| {
            need(key)?.as_str().ok_or(TraceError::Line {
                line: line_no,
                msg: format!("`{key}` is not a string"),
            })
        };
        let ev = need_str("ev")?;
        let expect_keys = |expected: &[&str]| -> Result<(), TraceError> {
            for (k, _) in &fields {
                if k != "ev" && !expected.contains(&k.as_str()) {
                    return Err(TraceError::Line {
                        line: line_no,
                        msg: format!("unknown key `{k}` for ev `{ev}`"),
                    });
                }
            }
            Ok(())
        };
        // Timestamped events must be monotone non-decreasing per thread.
        let mut check_time = |t: u64, tid: u64| -> Result<(), TraceError> {
            if let Some(&prev) = last_t.get(&tid) {
                if t < prev {
                    return Err(TraceError::Line {
                        line: line_no,
                        msg: format!("timestamp {t} before {prev} on tid {tid}"),
                    });
                }
            }
            last_t.insert(tid, t);
            Ok(())
        };

        match ev {
            "begin" => {
                expect_keys(&["id", "parent", "kind", "name", "t", "tid"])?;
                let id = need_u64("id")?;
                let parent = need_u64("parent")?;
                let kind = need_str("kind")?;
                need_str("name")?;
                check_time(need_u64("t")?, need_u64("tid")?)?;
                let level = kind_level(kind).ok_or(TraceError::Line {
                    line: line_no,
                    msg: format!("unknown span kind `{kind}`"),
                })?;
                if id == 0 {
                    return Err(err("span id 0 is reserved for root".to_string()));
                }
                if seen.insert(id, ()).is_some() {
                    return Err(err(format!("span id {id} reused")));
                }
                if parent != 0 {
                    let p = open.get(&parent).ok_or(TraceError::Line {
                        line: line_no,
                        msg: format!("parent span {parent} is not open"),
                    })?;
                    if p.level >= level {
                        return Err(err(format!(
                            "span kind `{kind}` cannot nest under a level-{} parent",
                            p.level
                        )));
                    }
                }
                open.insert(id, OpenSpan { level });
                summary.spans += 1;
            }
            "end" => {
                expect_keys(&["id", "t", "tid"])?;
                let id = need_u64("id")?;
                check_time(need_u64("t")?, need_u64("tid")?)?;
                if open.remove(&id).is_none() {
                    return Err(err(format!("end for span {id} which is not open")));
                }
            }
            "iter" => {
                expect_keys(&["span", "k", "hpwl", "overflow", "lambda", "gamma", "t", "tid"])?;
                let span = need_u64("span")?;
                need_u64("k")?;
                for key in ["hpwl", "overflow", "lambda", "gamma"] {
                    need_f64(key)?;
                }
                check_time(need_u64("t")?, need_u64("tid")?)?;
                if span != 0 && !open.contains_key(&span) {
                    return Err(err(format!("iter references closed span {span}")));
                }
                summary.iters += 1;
            }
            "point" => {
                expect_keys(&["span", "name", "detail", "t", "tid"])?;
                let span = need_u64("span")?;
                let name = need_str("name")?;
                need_str("detail")?;
                check_time(need_u64("t")?, need_u64("tid")?)?;
                if span != 0 && !open.contains_key(&span) {
                    return Err(err(format!("point references closed span {span}")));
                }
                if name == "degradation" {
                    summary.degradations += 1;
                }
                if name == "resume" {
                    summary.resumes += 1;
                }
                if name == "retry" {
                    summary.retries += 1;
                }
                if name == "panic" {
                    summary.panics += 1;
                }
                if name == "timeout" {
                    summary.timeouts += 1;
                }
                summary.points += 1;
            }
            "kernel" => {
                expect_keys(&["name", "calls", "nanos"])?;
                need_str("name")?;
                need_u64("calls")?;
                need_u64("nanos")?;
                summary.kernels += 1;
            }
            "ws" => {
                expect_keys(&["name", "uses", "reuses", "bytes"])?;
                need_str("name")?;
                let uses = need_u64("uses")?;
                let reuses = need_u64("reuses")?;
                need_u64("bytes")?;
                if reuses > uses {
                    return Err(err(format!("workspace reuses {reuses} exceed uses {uses}")));
                }
                summary.workspaces += 1;
            }
            "worker" => {
                expect_keys(&["pool", "worker", "launches", "nanos"])?;
                need_str("pool")?;
                need_u64("worker")?;
                need_u64("launches")?;
                need_u64("nanos")?;
                summary.workers += 1;
            }
            "meta" => {
                expect_keys(&["key", "value"])?;
                need_str("key")?;
                need_str("value")?;
                summary.metas += 1;
            }
            other => return Err(err(format!("unknown ev `{other}`"))),
        }
        summary.lines += 1;
    }

    if !open.is_empty() {
        let mut ids: Vec<u64> = open.keys().copied().collect();
        ids.sort_unstable();
        return Err(TraceError::Eof(format!("unclosed spans: {ids:?}")));
    }
    if summary.lines == 0 {
        return Err(TraceError::Eof("empty trace".to_string()));
    }
    Ok(summary)
}

/// Reads and validates a trace file.
///
/// # Errors
///
/// [`TraceError::Io`] if unreadable, otherwise the first violation.
pub fn validate_file(path: &Path) -> Result<TraceSummary, TraceError> {
    validate_str(&std::fs::read_to_string(path)?)
}

// ---------------------------------------------------------------------------
// Postmortem (flight recorder) dumps
// ---------------------------------------------------------------------------

/// The dp-serve flight recorder keeps at most this many trace events per
/// job; a `job-N.postmortem.jsonl` dump is that window plus one terminal
/// `postmortem` marker point, so its line count is bounded by this + 1.
/// Mirrors `dreamplace::serve::POSTMORTEM_EVENTS` (asserted equal by the
/// tier-1 metrics smoke test, since the crates must not depend on each
/// other just to share one constant).
pub const POSTMORTEM_EVENT_CAP: usize = 64;

/// What a valid postmortem dump contained, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostmortemSummary {
    /// Non-empty lines validated (recorded events + the marker).
    pub lines: usize,
    /// Timeline `point` events, the marker included.
    pub points: usize,
    /// Contained-panic points (name == "panic").
    pub panics: usize,
    /// Deadline-timeout points (name == "timeout").
    pub timeouts: usize,
    /// Retry points (name == "retry").
    pub retries: usize,
}

/// Required keys per event kind, for the windowed (per-line) check.
fn event_keys(ev: &str) -> Option<&'static [&'static str]> {
    match ev {
        "begin" => Some(&["id", "parent", "kind", "name", "t", "tid"]),
        "end" => Some(&["id", "t", "tid"]),
        "iter" => Some(&["span", "k", "hpwl", "overflow", "lambda", "gamma", "t", "tid"]),
        "point" => Some(&["span", "name", "detail", "t", "tid"]),
        "kernel" => Some(&["name", "calls", "nanos"]),
        "ws" => Some(&["name", "uses", "reuses", "bytes"]),
        "worker" => Some(&["pool", "worker", "launches", "nanos"]),
        "meta" => Some(&["key", "value"]),
        _ => None,
    }
}

/// Per-key type in the trace schema.
fn key_type_ok(key: &str, value: &Value) -> bool {
    match key {
        "kind" | "name" | "detail" | "key" | "value" | "pool" | "ev" => value.as_str().is_some(),
        "hpwl" | "overflow" | "lambda" | "gamma" => value.as_f64().is_some(),
        _ => value.as_u64().is_some(),
    }
}

/// Validates a flight-recorder dump held in memory.
///
/// A postmortem is a *window* over a live trace, so the whole-trace
/// invariants (balanced spans, open-parent references) cannot apply: the
/// window may start mid-span. What must hold instead:
///
/// 1. every line is a flat JSON object matching one event kind's exact
///    key set, with the right value types (same per-line schema as
///    [`validate_str`]);
/// 2. the dump is bounded: at most [`POSTMORTEM_EVENT_CAP`] recorded
///    events plus the marker;
/// 3. the last line — and only the last — is a `point` named
///    `postmortem`, proving the dump was terminated deliberately rather
///    than truncated by a crash.
///
/// # Errors
///
/// The first violated rule, with its line number where applicable.
pub fn validate_postmortem_str(text: &str) -> Result<PostmortemSummary, TraceError> {
    let mut summary = PostmortemSummary::default();
    let mut last_marker = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let err = |msg: String| TraceError::Line { line: line_no, msg };
        if last_marker {
            return Err(err("events after the terminal `postmortem` marker".into()));
        }
        let fields = parse_flat_object(raw).map_err(err)?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let ev = get("ev")
            .and_then(Value::as_str)
            .ok_or_else(|| err("missing string key `ev`".into()))?
            .to_string();
        let expected = event_keys(&ev).ok_or_else(|| err(format!("unknown ev `{ev}`")))?;
        for key in expected {
            let value = get(key).ok_or_else(|| err(format!("missing key `{key}`")))?;
            if !key_type_ok(key, value) {
                return Err(err(format!("`{key}` has the wrong type for ev `{ev}`")));
            }
        }
        for (k, _) in &fields {
            if k != "ev" && !expected.contains(&k.as_str()) {
                return Err(err(format!("unknown key `{k}` for ev `{ev}`")));
            }
        }
        if ev == "point" {
            summary.points += 1;
            match get("name").and_then(Value::as_str) {
                Some("panic") => summary.panics += 1,
                Some("timeout") => summary.timeouts += 1,
                Some("retry") => summary.retries += 1,
                Some("postmortem") => last_marker = true,
                _ => {}
            }
        }
        summary.lines += 1;
    }
    if summary.lines == 0 {
        return Err(TraceError::Eof("empty postmortem".to_string()));
    }
    if !last_marker {
        return Err(TraceError::Eof(
            "missing terminal `postmortem` marker point".to_string(),
        ));
    }
    if summary.lines > POSTMORTEM_EVENT_CAP + 1 {
        return Err(TraceError::Eof(format!(
            "{} lines exceed the flight-recorder bound of {} events + marker",
            summary.lines,
            POSTMORTEM_EVENT_CAP
        )));
    }
    Ok(summary)
}

/// Reads and validates a `job-N.postmortem.jsonl` flight-recorder dump.
///
/// # Errors
///
/// [`TraceError::Io`] if unreadable, otherwise the first violation.
pub fn validate_postmortem_file(path: &Path) -> Result<PostmortemSummary, TraceError> {
    validate_postmortem_str(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_minimal_well_formed_trace() {
        let text = concat!(
            "{\"ev\":\"meta\",\"key\":\"design\",\"value\":\"t\"}\n",
            "{\"ev\":\"begin\",\"id\":1,\"parent\":0,\"kind\":\"flow\",\"name\":\"t\",\"t\":0,\"tid\":0}\n",
            "{\"ev\":\"begin\",\"id\":2,\"parent\":1,\"kind\":\"stage\",\"name\":\"gp\",\"t\":5,\"tid\":0}\n",
            "{\"ev\":\"iter\",\"span\":2,\"k\":0,\"hpwl\":1.0e0,\"overflow\":5.0e-1,\"lambda\":1.0e-4,\"gamma\":\"inf\",\"t\":6,\"tid\":0}\n",
            "{\"ev\":\"point\",\"span\":2,\"name\":\"degradation\",\"detail\":\"gp: x, y -> z\",\"t\":7,\"tid\":0}\n",
            "{\"ev\":\"end\",\"id\":2,\"t\":9,\"tid\":0}\n",
            "{\"ev\":\"end\",\"id\":1,\"t\":10,\"tid\":0}\n",
            "{\"ev\":\"kernel\",\"name\":\"wa.forward\",\"calls\":3,\"nanos\":99}\n",
            "{\"ev\":\"ws\",\"name\":\"grad\",\"uses\":4,\"reuses\":3,\"bytes\":1024}\n",
            "{\"ev\":\"worker\",\"pool\":\"pool\",\"worker\":1,\"launches\":7,\"nanos\":50}\n",
        );
        let s = validate_str(text).expect("valid");
        assert_eq!(s.spans, 2);
        assert_eq!(s.iters, 1);
        assert_eq!(s.points, 1);
        assert_eq!(s.degradations, 1);
        assert_eq!(s.kernels, 1);
        assert_eq!(s.workspaces, 1);
        assert_eq!(s.workers, 1);
        assert_eq!(s.metas, 1);
    }

    #[test]
    fn rejects_unbalanced_nesting() {
        let text = "{\"ev\":\"begin\",\"id\":1,\"parent\":0,\"kind\":\"flow\",\"name\":\"t\",\"t\":0,\"tid\":0}\n";
        let err = validate_str(text).unwrap_err();
        assert!(matches!(err, TraceError::Eof(_)), "{err}");
    }

    #[test]
    fn rejects_end_without_begin() {
        let text = "{\"ev\":\"end\",\"id\":7,\"t\":0,\"tid\":0}\n";
        let err = validate_str(text).unwrap_err();
        assert!(err.to_string().contains("not open"), "{err}");
    }

    #[test]
    fn rejects_inverted_nesting_order() {
        let text = concat!(
            "{\"ev\":\"begin\",\"id\":1,\"parent\":0,\"kind\":\"stage\",\"name\":\"gp\",\"t\":0,\"tid\":0}\n",
            "{\"ev\":\"begin\",\"id\":2,\"parent\":1,\"kind\":\"flow\",\"name\":\"f\",\"t\":1,\"tid\":0}\n",
        );
        let err = validate_str(text).unwrap_err();
        assert!(err.to_string().contains("cannot nest"), "{err}");
    }

    #[test]
    fn rejects_non_monotone_timestamps_per_tid() {
        let text = concat!(
            "{\"ev\":\"begin\",\"id\":1,\"parent\":0,\"kind\":\"flow\",\"name\":\"t\",\"t\":10,\"tid\":0}\n",
            "{\"ev\":\"end\",\"id\":1,\"t\":4,\"tid\":0}\n",
        );
        let err = validate_str(text).unwrap_err();
        assert!(err.to_string().contains("before"), "{err}");
    }

    #[test]
    fn allows_interleaved_threads_with_independent_clocks() {
        let text = concat!(
            "{\"ev\":\"begin\",\"id\":1,\"parent\":0,\"kind\":\"flow\",\"name\":\"t\",\"t\":10,\"tid\":0}\n",
            "{\"ev\":\"point\",\"span\":1,\"name\":\"n\",\"detail\":\"d\",\"t\":3,\"tid\":1}\n",
            "{\"ev\":\"end\",\"id\":1,\"t\":11,\"tid\":0}\n",
        );
        validate_str(text).expect("per-tid clocks are independent");
    }

    #[test]
    fn rejects_id_reuse() {
        let text = concat!(
            "{\"ev\":\"begin\",\"id\":1,\"parent\":0,\"kind\":\"flow\",\"name\":\"a\",\"t\":0,\"tid\":0}\n",
            "{\"ev\":\"end\",\"id\":1,\"t\":1,\"tid\":0}\n",
            "{\"ev\":\"begin\",\"id\":1,\"parent\":0,\"kind\":\"flow\",\"name\":\"b\",\"t\":2,\"tid\":0}\n",
        );
        let err = validate_str(text).unwrap_err();
        assert!(err.to_string().contains("reused"), "{err}");
    }

    #[test]
    fn rejects_unknown_keys_and_kinds() {
        let bad_key = "{\"ev\":\"end\",\"id\":1,\"t\":0,\"tid\":0,\"extra\":1}\n";
        assert!(validate_str(bad_key).is_err());
        let bad_kind = "{\"ev\":\"begin\",\"id\":1,\"parent\":0,\"kind\":\"phase\",\"name\":\"x\",\"t\":0,\"tid\":0}\n";
        assert!(validate_str(bad_kind).is_err());
        let bad_ev = "{\"ev\":\"bogus\"}\n";
        assert!(validate_str(bad_ev).is_err());
    }

    #[test]
    fn parses_escapes_and_rejects_nesting() {
        let text = "{\"ev\":\"meta\",\"key\":\"k\",\"value\":\"a\\\"b\\\\c\\nd\\u0041\"}\n";
        let s = validate_str(text).expect("escapes ok");
        assert_eq!(s.metas, 1);
        assert!(validate_str("{\"ev\":\"meta\",\"key\":\"k\",\"value\":{}}\n").is_err());
        assert!(validate_str("not json\n").is_err());
    }

    fn marker_line(t: u64) -> String {
        format!(
            "{{\"ev\":\"point\",\"span\":0,\"name\":\"postmortem\",\"detail\":\"d\",\"t\":{t},\"tid\":0}}"
        )
    }

    #[test]
    fn postmortem_accepts_a_bounded_window_and_counts_faults() {
        let text = concat!(
            // A window may start mid-span: this `end` has no `begin`.
            "{\"ev\":\"end\",\"id\":9,\"t\":3,\"tid\":0}\n",
            "{\"ev\":\"point\",\"span\":0,\"name\":\"panic\",\"detail\":\"boom\",\"t\":4,\"tid\":0}\n",
            "{\"ev\":\"point\",\"span\":0,\"name\":\"retry\",\"detail\":\"attempt 2\",\"t\":5,\"tid\":0}\n",
            "{\"ev\":\"point\",\"span\":0,\"name\":\"timeout\",\"detail\":\"late\",\"t\":6,\"tid\":0}\n",
        )
        .to_string()
            + &marker_line(6)
            + "\n";
        let s = validate_postmortem_str(&text).expect("valid postmortem");
        assert_eq!(s.lines, 5);
        assert_eq!(s.panics, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.retries, 1);
        // The same window fails whole-trace validation (unbalanced spans),
        // which is exactly why postmortems get their own validator.
        assert!(validate_str(&text).is_err());
    }

    #[test]
    fn postmortem_requires_the_terminal_marker_last() {
        // No marker at all: truncated dump.
        let no_marker =
            "{\"ev\":\"point\",\"span\":0,\"name\":\"panic\",\"detail\":\"x\",\"t\":1,\"tid\":0}\n";
        let err = validate_postmortem_str(no_marker).unwrap_err();
        assert!(err.to_string().contains("marker"), "{err}");
        // Events after the marker: corrupt dump.
        let trailing = marker_line(1)
            + "\n{\"ev\":\"point\",\"span\":0,\"name\":\"n\",\"detail\":\"d\",\"t\":2,\"tid\":0}\n";
        let err = validate_postmortem_str(&trailing).unwrap_err();
        assert!(err.to_string().contains("after the terminal"), "{err}");
        // Schema still applies per line.
        let bad = "{\"ev\":\"bogus\"}\n".to_string() + &marker_line(1) + "\n";
        assert!(validate_postmortem_str(&bad).is_err());
    }

    #[test]
    fn postmortem_rejects_an_oversized_dump() {
        let mut text = String::new();
        for t in 0..POSTMORTEM_EVENT_CAP + 1 {
            text.push_str(&format!(
                "{{\"ev\":\"point\",\"span\":0,\"name\":\"n\",\"detail\":\"d\",\"t\":{t},\"tid\":0}}\n"
            ));
        }
        text.push_str(&marker_line(POSTMORTEM_EVENT_CAP as u64 + 1));
        text.push('\n');
        let err = validate_postmortem_str(&text).unwrap_err();
        assert!(err.to_string().contains("exceed"), "{err}");
    }

    #[test]
    fn trace_summary_counts_panic_and_timeout_points() {
        let text = concat!(
            "{\"ev\":\"begin\",\"id\":1,\"parent\":0,\"kind\":\"flow\",\"name\":\"t\",\"t\":0,\"tid\":0}\n",
            "{\"ev\":\"point\",\"span\":1,\"name\":\"panic\",\"detail\":\"boom\",\"t\":1,\"tid\":0}\n",
            "{\"ev\":\"point\",\"span\":1,\"name\":\"retry\",\"detail\":\"a2\",\"t\":2,\"tid\":0}\n",
            "{\"ev\":\"point\",\"span\":1,\"name\":\"timeout\",\"detail\":\"late\",\"t\":3,\"tid\":0}\n",
            "{\"ev\":\"end\",\"id\":1,\"t\":4,\"tid\":0}\n",
        );
        let s = validate_str(text).expect("valid");
        assert_eq!(s.panics, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.retries, 1);
    }

    #[test]
    fn non_finite_markers_parse_as_floats() {
        let text = concat!(
            "{\"ev\":\"begin\",\"id\":1,\"parent\":0,\"kind\":\"iteration\",\"name\":\"i\",\"t\":0,\"tid\":0}\n",
            "{\"ev\":\"iter\",\"span\":1,\"k\":2,\"hpwl\":\"NaN\",\"overflow\":\"inf\",\"lambda\":\"-inf\",\"gamma\":1.5e0,\"t\":1,\"tid\":0}\n",
            "{\"ev\":\"end\",\"id\":1,\"t\":2,\"tid\":0}\n",
        );
        let s = validate_str(text).expect("markers ok");
        assert_eq!(s.iters, 1);
    }
}
