//! Golden full-flow regression records.
//!
//! A golden record pins the outcome of one seeded GP -> LG -> DP run:
//! design name, seed, thread count, iteration count, the three HPWL
//! checkpoints, and the final overflow. Records live under
//! `results/golden/*.json` and are compared with [`GoldenRecord::compare`]
//! (HPWL relative, overflow absolute). Regenerate by running the suite
//! with `DP_UPDATE_GOLDEN=1`.
//!
//! The vendored `serde` is an empty API stub (the build is fully offline),
//! so the JSON here is hand-rolled: one flat object, stable key order,
//! `{:.17e}` floats so values round-trip exactly.

use std::fmt;
use std::path::Path;

use dp_num::Float;
use dreamplace_core::FlowResult;

/// One pinned full-flow outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenRecord {
    /// Design / scenario name.
    pub name: String,
    /// Generator seed.
    pub seed: u64,
    /// Worker threads the run was pinned to.
    pub threads: usize,
    /// GP iterations executed.
    pub iterations: usize,
    /// HPWL after global placement.
    pub hpwl_gp: f64,
    /// HPWL after legalization.
    pub hpwl_legal: f64,
    /// HPWL after detailed placement.
    pub hpwl_final: f64,
    /// Final GP density overflow.
    pub overflow: f64,
}

/// Comparison tolerances; the defaults are the acceptance thresholds of
/// the differential suite (HPWL within 0.1%, overflow within `1e-6`).
#[derive(Debug, Clone, Copy)]
pub struct GoldenTolerance {
    /// Relative bound on each HPWL checkpoint.
    pub hpwl_rel: f64,
    /// Absolute bound on the final overflow.
    pub overflow_abs: f64,
}

impl Default for GoldenTolerance {
    fn default() -> Self {
        Self {
            hpwl_rel: 1e-3,
            overflow_abs: 1e-6,
        }
    }
}

/// Failure to read or parse a golden record.
#[derive(Debug)]
pub enum GoldenError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed record content.
    Parse(String),
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::Io(e) => write!(f, "golden record io error: {e}"),
            GoldenError::Parse(msg) => write!(f, "golden record parse error: {msg}"),
        }
    }
}

impl std::error::Error for GoldenError {}

impl From<std::io::Error> for GoldenError {
    fn from(e: std::io::Error) -> Self {
        GoldenError::Io(e)
    }
}

impl GoldenRecord {
    /// Captures a record from a finished flow run.
    pub fn from_flow<T: Float>(
        name: impl Into<String>,
        seed: u64,
        threads: usize,
        result: &FlowResult<T>,
    ) -> Self {
        Self {
            name: name.into(),
            seed,
            threads,
            iterations: result.gp.iterations,
            hpwl_gp: result.hpwl_gp,
            hpwl_legal: result.hpwl_legal,
            hpwl_final: result.hpwl_final,
            overflow: result.gp.final_overflow,
        }
    }

    /// Serializes to a single-object JSON document (stable key order).
    pub fn to_json(&self) -> String {
        // Escape the only two characters a design name could plausibly
        // smuggle in; everything else the generator emits is ASCII.
        let name = self.name.replace('\\', "\\\\").replace('"', "\\\"");
        format!(
            concat!(
                "{{\n",
                "  \"name\": \"{}\",\n",
                "  \"seed\": {},\n",
                "  \"threads\": {},\n",
                "  \"iterations\": {},\n",
                "  \"hpwl_gp\": {:.17e},\n",
                "  \"hpwl_legal\": {:.17e},\n",
                "  \"hpwl_final\": {:.17e},\n",
                "  \"overflow\": {:.17e}\n",
                "}}\n",
            ),
            name,
            self.seed,
            self.threads,
            self.iterations,
            self.hpwl_gp,
            self.hpwl_legal,
            self.hpwl_final,
            self.overflow,
        )
    }

    /// Parses a record written by [`GoldenRecord::to_json`] (tolerant of
    /// whitespace and key order, not a general JSON parser).
    ///
    /// # Errors
    ///
    /// Returns [`GoldenError::Parse`] on any malformed or missing field.
    pub fn from_json(text: &str) -> Result<Self, GoldenError> {
        let mut name = None;
        let mut fields: [(& str, Option<f64>); 7] = [
            ("seed", None),
            ("threads", None),
            ("iterations", None),
            ("hpwl_gp", None),
            ("hpwl_legal", None),
            ("hpwl_final", None),
            ("overflow", None),
        ];
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| GoldenError::Parse("missing object braces".to_string()))?;
        for raw in body.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (key, value) = raw
                .split_once(':')
                .ok_or_else(|| GoldenError::Parse(format!("missing ':' in `{raw}`")))?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            if key == "name" {
                let v = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| GoldenError::Parse("name is not a string".to_string()))?;
                name = Some(v.replace("\\\"", "\"").replace("\\\\", "\\"));
                continue;
            }
            let parsed: f64 = value
                .parse()
                .map_err(|_| GoldenError::Parse(format!("bad number for `{key}`: `{value}`")))?;
            match fields.iter_mut().find(|(k, _)| *k == key) {
                Some((_, slot)) => *slot = Some(parsed),
                None => {
                    return Err(GoldenError::Parse(format!("unknown key `{key}`")));
                }
            }
        }
        let get = |idx: usize| -> Result<f64, GoldenError> {
            fields[idx]
                .1
                .ok_or_else(|| GoldenError::Parse(format!("missing key `{}`", fields[idx].0)))
        };
        Ok(Self {
            name: name.ok_or_else(|| GoldenError::Parse("missing key `name`".to_string()))?,
            seed: get(0)? as u64,
            threads: get(1)? as usize,
            iterations: get(2)? as usize,
            hpwl_gp: get(3)?,
            hpwl_legal: get(4)?,
            hpwl_final: get(5)?,
            overflow: get(6)?,
        })
    }

    /// Loads a record from disk.
    ///
    /// # Errors
    ///
    /// [`GoldenError::Io`] if unreadable, [`GoldenError::Parse`] if
    /// malformed.
    pub fn load(path: &Path) -> Result<Self, GoldenError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Writes the record to disk, creating parent directories.
    ///
    /// # Errors
    ///
    /// [`GoldenError::Io`] on any filesystem failure.
    pub fn store(&self, path: &Path) -> Result<(), GoldenError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Compares `actual` against this (expected) record. Identity fields
    /// (`name`, `seed`, `threads`) and the iteration count must match
    /// exactly; HPWLs within `tol.hpwl_rel` relative, overflow within
    /// `tol.overflow_abs` absolute.
    ///
    /// # Errors
    ///
    /// Returns every violated field as a human-readable list.
    pub fn compare(&self, actual: &Self, tol: &GoldenTolerance) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        if self.name != actual.name {
            errs.push(format!("name `{}` != `{}`", self.name, actual.name));
        }
        if self.seed != actual.seed {
            errs.push(format!("seed {} != {}", self.seed, actual.seed));
        }
        if self.threads != actual.threads {
            errs.push(format!("threads {} != {}", self.threads, actual.threads));
        }
        if self.iterations != actual.iterations {
            errs.push(format!(
                "iterations {} != {}",
                self.iterations, actual.iterations
            ));
        }
        let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1e-30);
        for (label, e, a) in [
            ("hpwl_gp", self.hpwl_gp, actual.hpwl_gp),
            ("hpwl_legal", self.hpwl_legal, actual.hpwl_legal),
            ("hpwl_final", self.hpwl_final, actual.hpwl_final),
        ] {
            if rel(e, a) > tol.hpwl_rel {
                errs.push(format!(
                    "{label} {a:.6e} deviates {:.3e} (rel) from golden {e:.6e}, tol {:.1e}",
                    rel(e, a),
                    tol.hpwl_rel
                ));
            }
        }
        if (self.overflow - actual.overflow).abs() > tol.overflow_abs {
            errs.push(format!(
                "overflow {:.6e} deviates {:.3e} (abs) from golden {:.6e}, tol {:.1e}",
                actual.overflow,
                (self.overflow - actual.overflow).abs(),
                self.overflow,
                tol.overflow_abs
            ));
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }
}

/// `true` when the environment asks for golden files to be rewritten
/// (`DP_UPDATE_GOLDEN=1`).
pub fn update_requested() -> bool {
    std::env::var("DP_UPDATE_GOLDEN").map(|v| v == "1").unwrap_or(false)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn record() -> GoldenRecord {
        GoldenRecord {
            name: "golden-small".to_string(),
            seed: 7,
            threads: 2,
            iterations: 123,
            hpwl_gp: 1.234567890123456e5,
            hpwl_legal: 1.3e5,
            hpwl_final: 1.25e5,
            overflow: 0.0654321,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = record();
        let back = GoldenRecord::from_json(&r.to_json()).expect("parse");
        assert_eq!(r, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(GoldenRecord::from_json("not json").is_err());
        assert!(GoldenRecord::from_json("{\"name\": \"x\"}").is_err());
        assert!(GoldenRecord::from_json("{\"name\": \"x\", \"seed\": true}").is_err());
    }

    #[test]
    fn compare_flags_each_field() {
        let r = record();
        assert!(r.compare(&r, &GoldenTolerance::default()).is_ok());
        let mut bad = record();
        bad.hpwl_final *= 1.01; // 1% off: over the 0.1% tolerance
        bad.overflow += 1e-3;
        let errs = r
            .compare(&bad, &GoldenTolerance::default())
            .expect_err("must flag");
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn store_and_load() {
        let r = record();
        let path = std::env::temp_dir().join("dp_check_golden_unit_test.json");
        r.store(&path).expect("store");
        let back = GoldenRecord::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(r, back);
    }
}
