//! Named presets mirroring the paper's benchmark suites.
//!
//! Cell and net counts are the paper's Table II / Table III / Table V
//! figures (in thousands); the bench harness scales them down uniformly so
//! every experiment runs on laptop-class hardware. DAC 2012 presets carry
//! [`RoutingHints`] for the routability-driven flow.

use crate::generator::GeneratorConfig;

/// Routing-grid hints for routability-driven placement (DAC 2012 style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingHints {
    /// Number of metal layers (alternating preferred directions, starting
    /// horizontal).
    pub num_layers: usize,
    /// Track capacity per horizontal-layer tile edge.
    pub capacity_h: usize,
    /// Track capacity per vertical-layer tile edge.
    pub capacity_v: usize,
    /// Routing tile edge in placement-site units.
    pub tile_sites: usize,
}

impl Default for RoutingHints {
    fn default() -> Self {
        Self {
            num_layers: 6,
            capacity_h: 18,
            capacity_v: 18,
            tile_sites: 32,
        }
    }
}

/// A named design preset: generator configuration plus optional routing
/// hints.
#[derive(Debug, Clone)]
pub struct DesignPreset {
    /// The generator configuration (paper-scale sizes).
    pub config: GeneratorConfig,
    /// Routing hints for routability-driven suites.
    pub routing: Option<RoutingHints>,
}

impl DesignPreset {
    /// Returns the preset scaled down by `1/denominator`.
    pub fn scaled_down(mut self, denominator: usize) -> Self {
        self.config = self.config.scaled_down(denominator);
        self
    }
}

fn preset(name: &str, kcells: usize, knets: usize, macros: usize, seed: u64) -> DesignPreset {
    let config = GeneratorConfig::new(name, kcells * 1000, knets * 1000)
        .with_seed(seed)
        .with_macros(macros, 0.08)
        .with_utilization(0.7);
    DesignPreset {
        config,
        routing: None,
    }
}

/// The eight ISPD 2005 contest designs of paper Table II (paper-scale cell
/// and net counts; macros stand in for the suites' fixed blocks).
///
/// # Examples
///
/// ```
/// let suite = dp_gen::ispd2005_suite();
/// assert_eq!(suite.len(), 8);
/// assert_eq!(suite[0].config.name, "adaptec1");
/// assert_eq!(suite[7].config.num_cells, 2_177_000);
/// ```
pub fn ispd2005_suite() -> Vec<DesignPreset> {
    vec![
        preset("adaptec1", 211, 221, 4, 101),
        preset("adaptec2", 255, 266, 6, 102),
        preset("adaptec3", 452, 467, 8, 103),
        preset("adaptec4", 496, 516, 8, 104),
        preset("bigblue1", 278, 284, 4, 105),
        preset("bigblue2", 558, 577, 12, 106),
        preset("bigblue3", 1097, 1123, 12, 107),
        preset("bigblue4", 2177, 2230, 16, 108),
    ]
}

/// The six industrial designs of paper Table III (1.3M to 10.5M cells).
pub fn industrial_suite() -> Vec<DesignPreset> {
    vec![
        preset("design1", 1345, 1389, 10, 201),
        preset("design2", 1306, 1355, 10, 202),
        preset("design3", 2265, 2276, 14, 203),
        preset("design4", 1525, 1528, 10, 204),
        preset("design5", 1316, 1364, 10, 205),
        preset("design6", 10504, 10747, 24, 206),
    ]
}

/// The ten DAC 2012 routability designs of paper Table V, with routing
/// hints (denser suites get tighter capacities, mirroring the contest's
/// congested profiles).
pub fn dac2012_suite() -> Vec<DesignPreset> {
    let rows = [
        ("superblue2", 1014, 991, 14u64, 16usize),
        ("superblue3", 920, 898, 15, 18),
        ("superblue6", 1014, 1007, 16, 18),
        ("superblue7", 1365, 1340, 17, 20),
        ("superblue9", 847, 834, 18, 18),
        ("superblue11", 955, 936, 19, 16),
        ("superblue12", 1293, 1293, 20, 14),
        ("superblue14", 635, 620, 21, 18),
        ("superblue16", 699, 697, 22, 16),
        ("superblue19", 523, 512, 23, 18),
    ];
    rows.iter()
        .map(|&(name, kc, kn, seed, cap)| {
            let mut p = preset(name, kc, kn, 8, 300 + seed);
            p.config.utilization = 0.75;
            p.routing = Some(RoutingHints {
                num_layers: 6,
                capacity_h: cap,
                capacity_v: cap,
                tile_sites: 32,
            });
            p
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_counts() {
        let ispd = ispd2005_suite();
        assert_eq!(ispd.len(), 8);
        assert_eq!(ispd[7].config.name, "bigblue4");
        assert_eq!(ispd[7].config.num_cells, 2_177_000);

        let ind = industrial_suite();
        assert_eq!(ind.len(), 6);
        assert_eq!(ind[5].config.num_cells, 10_504_000);

        let dac = dac2012_suite();
        assert_eq!(dac.len(), 10);
        assert!(dac.iter().all(|p| p.routing.is_some()));
    }

    #[test]
    fn scaled_presets_generate() {
        let p = ispd2005_suite().remove(0).scaled_down(64);
        let d = p.config.generate::<f64>().expect("valid");
        assert!(d.netlist.num_movable() >= 3000);
        assert!(d.netlist.num_movable() < 4000);
    }

    #[test]
    fn seeds_are_distinct_across_suite() {
        let seeds: Vec<u64> = ispd2005_suite().iter().map(|p| p.config.seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
