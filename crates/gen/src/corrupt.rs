//! Corrupted-design generator: well-formed designs degraded with the
//! exact defect classes the flow's design sanitizer recognizes.
//!
//! Where [`crate::adversarial`] stresses the *numerics* (degenerate nets,
//! zero-area cells, coincident pins), this module stresses the *design
//! contract*: geometry that a sane Bookshelf writer would never emit but a
//! real-world flow still meets — fixed cells outside the core, pins hung
//! outside their cell, duplicated pins, movables wider than the die.
//! Each helper starts from a healthy [`GeneratedDesign`] and injects one
//! defect class, so a test can assert the sanitizer finds (and repairs or
//! fatally reports) exactly that class.

use dp_netlist::{NetlistBuilder, NetlistError};
use dp_num::Float;

use crate::generator::{GeneratedDesign, GeneratorConfig};

/// One class of design-contract corruption, mirroring the sanitizer's
/// repairable/fatal taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// A fixed macro pushed partly outside the core region (repairable:
    /// the sanitizer clamps it back inside).
    FixedOutsideCore,
    /// A movable cell wider than the entire core (repairable: shrunk).
    OversizedMovable,
    /// Pin offsets far outside their cell's rectangle (repairable:
    /// clamped to the half-extent).
    PinOffsetsOutsideCell,
    /// Nets carrying the same pin several times (repairable: duplicates
    /// dropped).
    DuplicatePins,
    /// A fixed cell at a NaN position (fatal: its blockage footprint is
    /// undefined).
    NonFiniteFixedPosition,
}

impl CorruptKind {
    /// Every corruption class, for exhaustive suites.
    pub const ALL: [CorruptKind; 5] = [
        CorruptKind::FixedOutsideCore,
        CorruptKind::OversizedMovable,
        CorruptKind::PinOffsetsOutsideCell,
        CorruptKind::DuplicatePins,
        CorruptKind::NonFiniteFixedPosition,
    ];

    /// Whether the flow sanitizer must abort on this class (rather than
    /// repair it).
    pub fn is_fatal(self) -> bool {
        matches!(self, CorruptKind::NonFiniteFixedPosition)
    }
}

impl std::fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CorruptKind::FixedOutsideCore => "fixed_outside_core",
            CorruptKind::OversizedMovable => "oversized_movable",
            CorruptKind::PinOffsetsOutsideCell => "pin_offsets_outside_cell",
            CorruptKind::DuplicatePins => "duplicate_pins",
            CorruptKind::NonFiniteFixedPosition => "non_finite_fixed_position",
        };
        f.write_str(s)
    }
}

/// Generates a healthy base design (with fixed macros) and injects the
/// given corruption class.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the generator or the rebuild.
pub fn corrupt_design<T: Float>(
    kind: CorruptKind,
    seed: u64,
) -> Result<GeneratedDesign<T>, NetlistError> {
    let base = GeneratorConfig::new(format!("corrupt-{kind}"), 160, 180)
        .with_seed(seed)
        .with_utilization(0.55)
        .with_macros(2, 0.1)
        .generate::<T>()?;
    match kind {
        CorruptKind::FixedOutsideCore => {
            let mut d = base;
            let c = d.netlist.num_movable();
            // Push the first macro's center past the right core edge.
            d.fixed_positions.x[c] =
                d.netlist.region().xh + d.netlist.cell_widths()[c];
            Ok(d)
        }
        CorruptKind::NonFiniteFixedPosition => {
            let mut d = base;
            let c = d.netlist.num_movable();
            d.fixed_positions.y[c] = T::from_f64(f64::NAN);
            Ok(d)
        }
        CorruptKind::OversizedMovable => rebuild(base, |nl, c, w, _h| {
            // Make the first movable three cores wide.
            if c == 0 {
                nl.region().width() * T::from_f64(3.0)
            } else {
                w
            }
        }, |_net, pins| pins),
        CorruptKind::PinOffsetsOutsideCell => rebuild(
            base,
            |_nl, _c, w, _h| w,
            |net, mut pins| {
                // Hang the first pin of every third net far outside its
                // cell.
                if net % 3 == 0 {
                    if let Some(p) = pins.first_mut() {
                        p.1 += T::from_f64(1e4);
                    }
                }
                pins
            },
        ),
        CorruptKind::DuplicatePins => rebuild(
            base,
            |_nl, _c, w, _h| w,
            |net, mut pins| {
                // Triplicate the first pin of every fourth net.
                if net % 4 == 0 {
                    if let Some(&p) = pins.first() {
                        pins.push(p);
                        pins.push(p);
                    }
                }
                pins
            },
        ),
    }
}

/// Rebuilds a design with per-cell width overrides and per-net pin
/// rewrites, preserving cell and net order (so `fixed_positions` indices
/// stay valid).
#[allow(clippy::type_complexity)]
fn rebuild<T: Float>(
    base: GeneratedDesign<T>,
    width_of: impl Fn(&dp_netlist::Netlist<T>, usize, T, T) -> T,
    rewrite_pins: impl Fn(usize, Vec<(dp_netlist::BuilderCell, T, T)>) -> Vec<(dp_netlist::BuilderCell, T, T)>,
) -> Result<GeneratedDesign<T>, NetlistError> {
    let nl = &base.netlist;
    let region = nl.region();
    let mut b = NetlistBuilder::new(region.xl, region.yl, region.xh, region.yh)
        .allow_degenerate_nets(true);
    if let Some(rows) = nl.rows() {
        b = b.with_rows(rows.clone());
    }
    let n_mov = nl.num_movable();
    let cells: Vec<_> = (0..nl.num_cells())
        .map(|c| {
            let (w, h) = (nl.cell_widths()[c], nl.cell_heights()[c]);
            let w = width_of(nl, c, w, h);
            if c < n_mov {
                b.add_movable_cell(w, h)
            } else {
                b.add_fixed_cell(w, h)
            }
        })
        .collect();
    for (i, net) in nl.nets().enumerate() {
        let pins: Vec<_> = nl
            .net_pins(net)
            .iter()
            .map(|&p| {
                let (dx, dy) = nl.pin_offset(p);
                (cells[nl.pin_cell(p).index()], dx, dy)
            })
            .collect();
        b.add_net(nl.net_weight(net), rewrite_pins(i, pins))?;
    }
    Ok(GeneratedDesign {
        name: base.name,
        netlist: b.build()?,
        fixed_positions: base.fixed_positions,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_generates_deterministically() {
        for kind in CorruptKind::ALL {
            let a = corrupt_design::<f64>(kind, 3).expect("valid");
            let b = corrupt_design::<f64>(kind, 3).expect("valid");
            assert_eq!(a.netlist.stats(), b.netlist.stats(), "{kind}");
            assert_eq!(a.fixed_positions.x.len(), a.netlist.num_cells());
            assert_eq!(
                a.fixed_positions.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.fixed_positions.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{kind}"
            );
        }
    }

    #[test]
    fn fixed_outside_core_really_is_outside() {
        let d = corrupt_design::<f64>(CorruptKind::FixedOutsideCore, 1).expect("valid");
        let c = d.netlist.num_movable();
        let hx = d.netlist.cell_widths()[c] * 0.5;
        assert!(d.fixed_positions.x[c] + hx > d.netlist.region().xh);
    }

    #[test]
    fn oversized_movable_exceeds_core_width() {
        let d = corrupt_design::<f64>(CorruptKind::OversizedMovable, 1).expect("valid");
        assert!(d.netlist.cell_widths()[0] > d.netlist.region().width());
    }

    #[test]
    fn duplicate_pins_add_extra_pins() {
        let clean = corrupt_design::<f64>(CorruptKind::FixedOutsideCore, 2).expect("valid");
        let dup = corrupt_design::<f64>(CorruptKind::DuplicatePins, 2).expect("valid");
        assert!(dup.netlist.num_pins() > clean.netlist.num_pins());
    }
}
