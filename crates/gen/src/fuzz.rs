//! Seeded protocol-line fuzzing for the dp-serve wire protocol.
//!
//! [`protocol_lines`] produces a deterministic stream of line-delimited
//! requests mixing well-formed submits/queries with malformed JSON,
//! truncated objects, hostile escapes, and absurd numerics. The dp-serve
//! daemon must survive every line: well-formed requests are accepted or
//! rejected, malformed ones must produce a structured `error` event and
//! leave the session alive. CI pipes this stream into `dreamplace serve`
//! and asserts the daemon exits cleanly.
//!
//! Determinism matters: the same `(seed, count)` pair always yields the
//! same lines so a CI failure can be replayed locally with
//! `dreamplace fuzz-lines --seed S --count N`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate `count` deterministic protocol lines for fuzzing dp-serve.
///
/// Roughly half the lines are valid requests (small submits, status and
/// cancel probes); the rest are malformed in assorted ways. `drain` is
/// intentionally never emitted — the caller appends it (or closes the
/// pipe) so the fuzz stream cannot end the session early.
pub fn protocol_lines(seed: u64, count: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf022_11ae);
    (0..count).map(|i| one_line(&mut rng, i)).collect()
}

fn one_line(rng: &mut StdRng, index: usize) -> String {
    match rng.gen_range(0..12u32) {
        0..=2 => valid_submit(rng),
        3 => valid_probe(rng, index),
        4 => semantically_bad(rng),
        5 => truncated_object(rng),
        6 => bare_garbage(rng),
        7 => bad_escapes(rng),
        8 => absurd_numbers(rng),
        9 => wrong_toplevel(rng),
        10 => deep_nesting(rng),
        _ => mutated_submit(rng),
    }
}

/// A well-formed submit the daemon should accept (tiny, so fuzz runs stay
/// fast even when many lines are valid).
fn valid_submit(rng: &mut StdRng) -> String {
    let cells = rng.gen_range(40..140u32);
    let qos = ["interactive", "batch", "bulk"][rng.gen_range(0..3usize)];
    let iters = rng.gen_range(3..12u32);
    format!(
        "{{\"cmd\":\"submit\",\"design\":\"gen\",\"cells\":{cells},\"seed\":{},\
         \"qos\":\"{qos}\",\"max_iters\":{iters}}}",
        rng.gen_range(0..1000u32)
    )
}

/// Status/cancel probes against job ids that may or may not exist.
fn valid_probe(rng: &mut StdRng, index: usize) -> String {
    match rng.gen_range(0..3u32) {
        0 => "{\"cmd\":\"status\"}".to_string(),
        1 => format!("{{\"cmd\":\"status\",\"job\":{}}}", index / 2),
        _ => format!("{{\"cmd\":\"cancel\",\"job\":{}}}", rng.gen_range(0..64u32)),
    }
}

/// Valid JSON that fails request validation (must be `rejected`, not a
/// transport error).
fn semantically_bad(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4u32) {
        0 => "{\"cmd\":\"bogus\"}".to_string(),
        1 => "{\"design\":\"gen\",\"cells\":50}".to_string(),
        2 => format!(
            "{{\"cmd\":\"submit\",\"design\":\"gen\",\"cells\":50,\"qos\":\"q{}\"}}",
            rng.gen_range(0..9u32)
        ),
        _ => "{\"cmd\":\"chaos\",\"drop_after_events\":1}".to_string(),
    }
}

/// An object cut off mid-token.
fn truncated_object(rng: &mut StdRng) -> String {
    let full = valid_submit(rng);
    let cut = rng.gen_range(1..full.len().saturating_sub(1).max(2));
    let mut s: String = full.chars().take(cut).collect();
    if rng.gen_range(0..2u32) == 0 {
        s.push('\\');
    }
    s
}

/// Lines that are not JSON at all.
fn bare_garbage(rng: &mut StdRng) -> String {
    match rng.gen_range(0..5u32) {
        0 => "submit gen 50".to_string(),
        1 => "GET / HTTP/1.1".to_string(),
        2 => ")]}',".to_string(),
        3 => {
            let n = rng.gen_range(1..200usize);
            "\u{fffd}\u{7f}~".repeat(n)
        }
        _ => format!("{:08x} {:08x}", rng.gen::<u32>(), rng.gen::<u32>()),
    }
}

/// Strings with hostile escape sequences and embedded quotes.
fn bad_escapes(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4u32) {
        0 => "{\"cmd\":\"submit\",\"design\":\"\\u\"}".to_string(),
        1 => "{\"cmd\":\"submit\",\"design\":\"a\\qb\"}".to_string(),
        2 => "{\"cmd\":\"sub\"mit\"}".to_string(),
        _ => format!(
            "{{\"cmd\":\"submit\",\"design\":\"{}\"}}",
            "\\\\\\\"".repeat(rng.gen_range(1..40usize))
        ),
    }
}

/// Numeric fields pushed past any sane range.
fn absurd_numbers(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4u32) {
        0 => "{\"cmd\":\"submit\",\"design\":\"gen\",\"cells\":-7}".to_string(),
        1 => "{\"cmd\":\"submit\",\"design\":\"gen\",\"cells\":1e308}".to_string(),
        2 => format!("{{\"cmd\":\"cancel\",\"job\":{}9999999999999999999}}", rng.gen_range(1..9u32)),
        _ => "{\"cmd\":\"submit\",\"design\":\"gen\",\"cells\":50,\"deadline_seconds\":NaN}"
            .to_string(),
    }
}

/// Valid JSON whose top level is not an object.
fn wrong_toplevel(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4u32) {
        0 => "[1,2,3]".to_string(),
        1 => "\"submit\"".to_string(),
        2 => "null".to_string(),
        _ => format!("{}", rng.gen_range(0..1000u32)),
    }
}

/// Deeply nested brackets to probe recursive parsers.
fn deep_nesting(rng: &mut StdRng) -> String {
    let depth = rng.gen_range(8..200usize);
    let mut s = String::with_capacity(depth * 2 + 16);
    s.push_str("{\"cmd\":");
    for _ in 0..depth {
        s.push('[');
    }
    for _ in 0..depth {
        s.push(']');
    }
    s.push('}');
    s
}

/// A valid submit with a handful of bytes flipped.
fn mutated_submit(rng: &mut StdRng) -> String {
    let base = valid_submit(rng);
    let mut bytes: Vec<u8> = base.into_bytes();
    let flips = rng.gen_range(1..4usize);
    for _ in 0..flips {
        if bytes.is_empty() {
            break;
        }
        let at = rng.gen_range(0..bytes.len());
        // Stay in printable ASCII so the line survives UTF-8 transport;
        // the lossy-decode path is exercised separately by bare_garbage.
        bytes[at] = b' ' + (rng.gen::<u32>() % 94) as u8;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_lines_are_deterministic_per_seed() {
        let a = protocol_lines(42, 200);
        let b = protocol_lines(42, 200);
        assert_eq!(a, b);
        let c = protocol_lines(43, 200);
        assert_ne!(a, c);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn fuzz_lines_mix_valid_and_malformed() {
        let lines = protocol_lines(7, 400);
        let valid_submits = lines
            .iter()
            .filter(|l| l.starts_with("{\"cmd\":\"submit\",\"design\":\"gen\",\"cells\":") && l.ends_with('}'))
            .count();
        let non_json = lines.iter().filter(|l| !l.starts_with('{')).count();
        assert!(valid_submits > 20, "expected valid submits, got {valid_submits}");
        assert!(non_json > 20, "expected non-JSON garbage, got {non_json}");
        // Never emit drain/shutdown: the fuzz stream must not end sessions.
        assert!(lines.iter().all(|l| !l.contains("drain") && !l.contains("shutdown")));
        // Lines are single-line by construction.
        assert!(lines.iter().all(|l| !l.contains('\n')));
    }
}
