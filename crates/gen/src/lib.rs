//! Synthetic placement benchmark generator.
//!
//! The paper evaluates on the ISPD 2005 contest suite, proprietary
//! industrial designs, and the DAC 2012 routability suite — none of which
//! can be redistributed here. This crate generates netlists that reproduce
//! the statistical features global placement is sensitive to:
//!
//! * net-degree distribution (2 + geometric tail, configurable mean);
//! * spatial locality (nets connect cells that are close in a synthetic
//!   "logical" ordering, the standard Rent's-rule-style construction);
//! * cell width variety snapped to placement sites, uniform row height;
//! * whitespace/utilization and fixed macro blockages;
//! * per-suite presets ([`ispd2005_suite`], [`industrial_suite`],
//!   [`dac2012_suite`]) matching each paper design's cell/net counts at a
//!   configurable scale factor (`1/16` of the paper sizes by default in the
//!   bench harness, so a laptop-class machine can run every table).
//!
//! # Examples
//!
//! ```
//! use dp_gen::GeneratorConfig;
//!
//! let design = GeneratorConfig::new("demo", 500, 520)
//!     .with_seed(42)
//!     .generate::<f64>()
//!     .expect("valid generator configuration");
//! assert_eq!(design.netlist.num_movable(), 500);
//! assert!(design.netlist.num_nets() > 450);
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod adversarial;
pub mod corrupt;
pub mod fuzz;
pub mod generator;
pub mod presets;

pub use adversarial::{adversarial_design, AdversarialCase, AdversarialDesign};
pub use corrupt::{corrupt_design, CorruptKind};
pub use fuzz::protocol_lines;
pub use generator::{GeneratedDesign, GeneratorConfig};
pub use presets::{dac2012_suite, industrial_suite, ispd2005_suite, DesignPreset, RoutingHints};
