//! The core netlist generator.

use dp_netlist::{Netlist, NetlistBuilder, NetlistError, Placement, RowGrid};
use dp_num::Float;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated design: the netlist plus a placement holding the fixed
/// macro positions (movable coordinates are zero; global placement
/// initializes them).
#[derive(Debug, Clone)]
pub struct GeneratedDesign<T> {
    /// Human-readable design name (preset name or user label).
    pub name: String,
    /// The hypergraph with rows attached.
    pub netlist: Netlist<T>,
    /// Fixed-cell coordinates; movable entries are zero.
    pub fixed_positions: Placement<T>,
}

/// Configuration for the synthetic generator; see the
/// [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Design label.
    pub name: String,
    /// Number of movable standard cells.
    pub num_cells: usize,
    /// Number of nets.
    pub num_nets: usize,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
    /// Mean net degree; degrees are `2 + Geometric`, clamped to
    /// `max_net_degree`.
    pub avg_net_degree: f64,
    /// Hard cap on net degree (clock-like large nets hurt nothing but
    /// dominate runtime; contest suites cap similarly).
    pub max_net_degree: usize,
    /// Fraction of core area occupied by movable cells (0..1).
    pub utilization: f64,
    /// Standard row height in layout units.
    pub row_height: f64,
    /// Placement site width.
    pub site_width: f64,
    /// Cell widths drawn uniformly from this range (snapped to sites).
    pub cell_width_sites: (usize, usize),
    /// Number of fixed macro blockages.
    pub num_macros: usize,
    /// Number of movable macros (multi-row-height cells; mixed-size
    /// placement in the ePlace-MS sense).
    pub num_movable_macros: usize,
    /// Movable macro height in rows.
    pub movable_macro_rows: usize,
    /// Macro edge length as a fraction of the region edge.
    pub macro_edge_frac: f64,
    /// Net locality window as a fraction of the cell count; smaller means
    /// more local nets (Rent-style clustering).
    pub locality_frac: f64,
}

impl GeneratorConfig {
    /// Creates a configuration with suite-typical defaults.
    pub fn new(name: impl Into<String>, num_cells: usize, num_nets: usize) -> Self {
        Self {
            name: name.into(),
            num_cells,
            num_nets,
            seed: 1,
            avg_net_degree: 4.1,
            max_net_degree: 24,
            utilization: 0.7,
            row_height: 8.0,
            site_width: 1.0,
            cell_width_sites: (2, 12),
            num_macros: 0,
            num_movable_macros: 0,
            movable_macro_rows: 4,
            macro_edge_frac: 0.12,
            locality_frac: 0.02,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the utilization target.
    pub fn with_utilization(mut self, utilization: f64) -> Self {
        self.utilization = utilization;
        self
    }

    /// Adds fixed macro blockages.
    pub fn with_macros(mut self, count: usize, edge_frac: f64) -> Self {
        self.num_macros = count;
        self.macro_edge_frac = edge_frac;
        self
    }

    /// Adds movable macros (`rows` rows tall), making the design
    /// mixed-size.
    pub fn with_movable_macros(mut self, count: usize, rows: usize) -> Self {
        self.num_movable_macros = count;
        self.movable_macro_rows = rows.max(2);
        self
    }

    /// Scales the design size by `1/denominator` (cells and nets).
    pub fn scaled_down(mut self, denominator: usize) -> Self {
        let d = denominator.max(1);
        self.num_cells = (self.num_cells / d).max(16);
        self.num_nets = (self.num_nets / d).max(16);
        self
    }

    /// Generates the design.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if the configuration produces no valid
    /// movable cells (e.g. `num_cells == 0`).
    pub fn generate<T: Float>(&self) -> Result<GeneratedDesign<T>, NetlistError> {
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Cell sizes.
        let (w_lo, w_hi) = self.cell_width_sites;
        let widths: Vec<f64> = (0..self.num_cells)
            .map(|_| rng.gen_range(w_lo..=w_hi.max(w_lo)) as f64 * self.site_width)
            .collect();
        let movable_area: f64 = widths.iter().map(|w| w * self.row_height).sum();

        // Region sizing: movable + macro area over utilization, square-ish,
        // height snapped to whole rows.
        let movable_macro_area = self.num_movable_macros as f64
            * (self.movable_macro_rows as f64 * self.row_height).powi(2)
            * 1.1; // mean aspect 0.8..1.4
        let mut core_area =
            (movable_area + movable_macro_area) / self.utilization.clamp(0.05, 0.98);
        let macro_edge_guess = (core_area.sqrt() * self.macro_edge_frac).max(self.row_height);
        let macro_area = self.num_macros as f64 * macro_edge_guess * macro_edge_guess;
        core_area += macro_area / self.utilization.clamp(0.05, 0.98);
        let edge = core_area.sqrt();
        let num_rows = ((edge / self.row_height).ceil() as usize).max(4);
        let height = num_rows as f64 * self.row_height;
        let width = (core_area / height).ceil();

        let rows = RowGrid::uniform(
            T::ZERO,
            T::ZERO,
            T::from_f64(width),
            T::from_f64(height),
            T::from_f64(self.row_height),
            T::from_f64(self.site_width),
        );
        let mut b =
            NetlistBuilder::<T>::new(T::ZERO, T::ZERO, T::from_f64(width), T::from_f64(height))
                .with_rows(rows)
                .allow_degenerate_nets(true);

        let mut cells: Vec<_> = widths
            .iter()
            .map(|&w| b.add_movable_cell(T::from_f64(w), T::from_f64(self.row_height)))
            .collect();
        // Movable macros: square-ish, several rows tall. They join the net
        // pool like any cell.
        for _ in 0..self.num_movable_macros {
            let h = self.movable_macro_rows as f64 * self.row_height;
            let w = (h * rng.gen_range(0.8..1.4) / self.site_width).round() * self.site_width;
            cells.push(b.add_movable_cell(T::from_f64(w), T::from_f64(h)));
        }

        // Fixed macros on a jittered grid so they never overlap.
        let mut macro_pos: Vec<(f64, f64, f64)> = Vec::new();
        if self.num_macros > 0 {
            let slots = (self.num_macros as f64).sqrt().ceil() as usize;
            let pitch_x = width / slots as f64;
            let pitch_y = height / slots as f64;
            let edge_len = (macro_edge_guess).min(pitch_x * 0.6).min(pitch_y * 0.6);
            for k in 0..self.num_macros {
                let (i, j) = (k % slots, k / slots);
                let jx: f64 = rng.gen_range(-0.15..0.15);
                let jy: f64 = rng.gen_range(-0.15..0.15);
                let cx = (i as f64 + 0.5 + jx) * pitch_x;
                let cy = (j as f64 + 0.5 + jy) * pitch_y;
                macro_pos.push((cx, cy, edge_len));
            }
        }
        let macro_handles: Vec<_> = macro_pos
            .iter()
            .map(|&(_, _, e)| b.add_fixed_cell(T::from_f64(e), T::from_f64(e)))
            .collect();

        // Nets: anchor + members within a locality window; degree
        // 2 + geometric(p) with mean avg_net_degree.
        let window = ((self.num_cells as f64 * self.locality_frac).ceil() as i64).max(4);
        let extra_mean = (self.avg_net_degree - 2.0).max(0.1);
        let p_stop = 1.0 / (1.0 + extra_mean);
        for _ in 0..self.num_nets {
            let anchor = rng.gen_range(0..self.num_cells) as i64;
            let mut degree = 2usize;
            while degree < self.max_net_degree && rng.gen::<f64>() > p_stop {
                degree += 1;
            }
            let mut members = Vec::with_capacity(degree);
            members.push(anchor as usize);
            let mut guard = 0;
            while members.len() < degree && guard < degree * 8 {
                guard += 1;
                let off = rng.gen_range(-window..=window);
                let idx = (anchor + off).rem_euclid(self.num_cells as i64) as usize;
                if !members.contains(&idx) {
                    members.push(idx);
                }
            }
            // Occasionally attach a macro pin, as macros have ports too.
            // Movable macros participate more (they need nets to be placed
            // meaningfully).
            let attach_movable_macro = self.num_movable_macros > 0 && rng.gen::<f64>() < 0.05;
            let attach_macro = !macro_handles.is_empty() && rng.gen::<f64>() < 0.02;
            let mut pins: Vec<_> = members
                .iter()
                .map(|&c| {
                    let hw = widths[c] / 2.0;
                    (
                        cells[c],
                        T::from_f64(rng.gen_range(-hw..hw)),
                        T::from_f64(rng.gen_range(-self.row_height / 2.0..self.row_height / 2.0)),
                    )
                })
                .collect();
            if attach_movable_macro {
                let m = self.num_cells + rng.gen_range(0..self.num_movable_macros);
                pins.push((cells[m], T::ZERO, T::ZERO));
            }
            if attach_macro {
                let m = rng.gen_range(0..macro_handles.len());
                pins.push((macro_handles[m], T::ZERO, T::ZERO));
            }
            b.add_net(T::ONE, pins)?;
        }

        let netlist = b.build()?;
        let mut fixed_positions = Placement::zeros(netlist.num_cells());
        for (k, &(cx, cy, _)) in macro_pos.iter().enumerate() {
            let id = self.num_cells + k;
            fixed_positions.x[id] = T::from_f64(cx);
            fixed_positions.y[id] = T::from_f64(cy);
        }

        Ok(GeneratedDesign {
            name: self.name.clone(),
            netlist,
            fixed_positions,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = GeneratorConfig::new("t", 200, 210).with_seed(9);
        let a = cfg.generate::<f64>().expect("valid");
        let b = cfg.generate::<f64>().expect("valid");
        assert_eq!(a.netlist.num_pins(), b.netlist.num_pins());
        assert_eq!(a.netlist.region(), b.netlist.region());
        let sa = a.netlist.stats();
        let sb = b.netlist.stats();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratorConfig::new("t", 200, 210)
            .with_seed(1)
            .generate::<f64>()
            .expect("ok");
        let b = GeneratorConfig::new("t", 200, 210)
            .with_seed(2)
            .generate::<f64>()
            .expect("ok");
        assert_ne!(a.netlist.num_pins(), b.netlist.num_pins());
    }

    #[test]
    fn statistics_match_configuration() {
        let cfg = GeneratorConfig::new("t", 2000, 2100).with_seed(3);
        let d = cfg.generate::<f64>().expect("valid");
        let s = d.netlist.stats();
        assert_eq!(s.num_movable, 2000);
        // Degenerate nets may be dropped, but only a few.
        assert!(s.num_nets > 2000 && s.num_nets <= 2100);
        assert!(
            (s.avg_net_degree - cfg.avg_net_degree).abs() < 0.6,
            "{}",
            s.avg_net_degree
        );
        assert!((s.utilization - 0.7).abs() < 0.1, "{}", s.utilization);
    }

    #[test]
    fn rows_cover_region() {
        let d = GeneratorConfig::new("t", 300, 310)
            .generate::<f64>()
            .expect("valid");
        let rows = d.netlist.rows().expect("generator attaches rows");
        let region = d.netlist.region();
        let top = rows.rows().last().expect("non-empty").y + rows.row_height();
        assert!(top <= region.yh + 1e-9);
        assert!(rows.rows().len() >= 4);
    }

    #[test]
    fn macros_are_fixed_inside_region_and_disjoint() {
        let cfg = GeneratorConfig::new("t", 500, 520)
            .with_macros(6, 0.1)
            .with_seed(5);
        let d = cfg.generate::<f64>().expect("valid");
        let nl = &d.netlist;
        assert_eq!(nl.num_cells() - nl.num_movable(), 6);
        let rects: Vec<_> = (nl.num_movable()..nl.num_cells())
            .map(|i| {
                dp_netlist::Rect::from_center(
                    d.fixed_positions.x[i],
                    d.fixed_positions.y[i],
                    nl.cell_widths()[i],
                    nl.cell_heights()[i],
                )
            })
            .collect();
        for (i, a) in rects.iter().enumerate() {
            assert!(
                a.xl >= -1e-9 && a.xh <= nl.region().xh + 1e-9,
                "macro {i} outside"
            );
            for b in &rects[i + 1..] {
                assert_eq!(a.overlap_area(b), 0.0, "macros overlap");
            }
        }
    }

    #[test]
    fn scaled_down_shrinks() {
        let cfg = GeneratorConfig::new("t", 160_000, 170_000).scaled_down(16);
        assert_eq!(cfg.num_cells, 10_000);
        assert_eq!(cfg.num_nets, 10_625);
    }

    #[test]
    fn works_in_f32() {
        let d = GeneratorConfig::new("t", 100, 110)
            .generate::<f32>()
            .expect("valid");
        assert_eq!(d.netlist.num_movable(), 100);
    }
}
