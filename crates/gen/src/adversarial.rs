//! Seeded adversarial designs for the verification harness (`dp-check`).
//!
//! Each [`AdversarialCase`] produces a small design that concentrates one
//! boundary condition the placement kernels must survive: degenerate 0/1-pin
//! nets, zero-area cells, exactly coincident pins, fence regions, and bin
//! grids at (or below) the minimum the spectral solver supports. The
//! differential test suite runs every kernel against its oracle on each of
//! these, so boundary handling is checked continuously rather than once in
//! a hand-written unit test.
//!
//! Generation is deterministic given `(case, seed)`.

use dp_netlist::{NetlistError, Placement, Rect};
use dp_num::Float;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::{GeneratedDesign, GeneratorConfig};

/// One adversarial boundary condition; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialCase {
    /// Mixes empty nets and single-pin nets into an otherwise normal
    /// design (Bookshelf suites contain both).
    DegenerateNets,
    /// A fraction of movable cells have zero width and/or height
    /// (terminals modelled as points): they must scatter no charge and
    /// carry no density force.
    ZeroAreaCells,
    /// Every pin of some nets sits at exactly the same coordinate, so the
    /// smooth wirelength models divide quantities of the form `0/0` unless
    /// they stabilize correctly.
    CoincidentPins,
    /// Two fence rectangles with a partial cell assignment (paper §III-G):
    /// exercises the multi-field density operator and its masks.
    FenceRegions,
    /// A design whose natural grid is a single bin: the suggested bin
    /// counts are below the spectral solver's minimum, which must build in
    /// uniform-field mode (spectral solve skipped), while the minimal
    /// *spectral* grid leaves every cell smaller than a bin (smoothing
    /// everywhere).
    SingleBinGrid,
}

impl AdversarialCase {
    /// Every case, for exhaustive harness loops.
    pub const ALL: [AdversarialCase; 5] = [
        AdversarialCase::DegenerateNets,
        AdversarialCase::ZeroAreaCells,
        AdversarialCase::CoincidentPins,
        AdversarialCase::FenceRegions,
        AdversarialCase::SingleBinGrid,
    ];

    /// Short label for test diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            AdversarialCase::DegenerateNets => "degenerate-nets",
            AdversarialCase::ZeroAreaCells => "zero-area-cells",
            AdversarialCase::CoincidentPins => "coincident-pins",
            AdversarialCase::FenceRegions => "fence-regions",
            AdversarialCase::SingleBinGrid => "single-bin-grid",
        }
    }
}

impl std::fmt::Display for AdversarialCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An adversarial design plus the side information a harness needs to
/// drive it (fence geometry, suggested bin grids).
#[derive(Debug, Clone)]
pub struct AdversarialDesign<T> {
    /// Which case produced this design.
    pub case: AdversarialCase,
    /// The design itself (netlist + fixed positions).
    pub design: GeneratedDesign<T>,
    /// A deterministic all-movable placement inside the region, suitable
    /// as the evaluation point for kernels and oracles.
    pub placement: Placement<T>,
    /// Fence rectangles ([`AdversarialCase::FenceRegions`] only).
    pub fence_regions: Vec<Rect<T>>,
    /// Per movable cell: `Some(r)` assigns it to `fence_regions[r]`
    /// ([`AdversarialCase::FenceRegions`] only).
    pub fence_assignment: Vec<Option<u16>>,
    /// Bin counts a harness should try: the first entry is always legal
    /// for the spectral solver; later entries may be deliberately
    /// unsupported (e.g. `(1, 1)` for [`AdversarialCase::SingleBinGrid`]).
    pub suggested_bins: Vec<(usize, usize)>,
}

/// Generates the adversarial design for `case`, deterministically in
/// `(case, seed)`.
///
/// # Errors
///
/// Returns [`NetlistError`] if the underlying builder rejects the design
/// (does not happen for the shipped cases; the signature mirrors
/// [`GeneratorConfig::generate`]).
pub fn adversarial_design<T: Float>(
    case: AdversarialCase,
    seed: u64,
) -> Result<AdversarialDesign<T>, NetlistError> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xadd_75a1);
    let base = GeneratorConfig::new(case.label(), 48, 56)
        .with_seed(seed)
        .generate::<T>()?;
    let region = base.netlist.region();

    let mut fence_regions = Vec::new();
    let mut fence_assignment = Vec::new();
    let mut suggested_bins = vec![(16, 16)];

    let design = match case {
        AdversarialCase::DegenerateNets => {
            rebuild(&base, seed, |b, cells, rng| {
                // Empty nets, several single-pin nets (with non-zero pin
                // offsets), and one normal anchor net.
                b.add_net(T::ONE, vec![])?;
                for _ in 0..6 {
                    let c = rng.gen_range(0..cells.len());
                    b.add_net(
                        T::ONE,
                        vec![(cells[c], T::from_f64(0.3), T::from_f64(-0.7))],
                    )?;
                }
                Ok(())
            })?
        }
        AdversarialCase::ZeroAreaCells => {
            // Zero width, zero height, and fully zero-area movable cells
            // participating in nets like any other cell.
            rebuild_with_cells(&base, seed, &[(0.0, 0.0), (0.0, 4.0), (3.0, 0.0)])?
        }
        AdversarialCase::CoincidentPins => {
            rebuild(&base, seed, |b, cells, rng| {
                // Nets whose pins all collapse to one point: same cell
                // repeated via distinct pins with identical offsets is not
                // allowed by some builders, so use distinct cells and rely
                // on the harness placing them at one coordinate; also add
                // same-cell multi-pin nets at a single offset.
                for _ in 0..4 {
                    let c = rng.gen_range(0..cells.len());
                    b.add_net(
                        T::ONE,
                        vec![
                            (cells[c], T::ZERO, T::ZERO),
                            (cells[c], T::ZERO, T::ZERO),
                            (cells[c], T::ZERO, T::ZERO),
                        ],
                    )?;
                }
                Ok(())
            })?
        }
        AdversarialCase::FenceRegions => {
            let w = region.width();
            let h = region.height();
            let quarter_w = w * T::from_f64(0.4);
            let quarter_h = h * T::from_f64(0.8);
            fence_regions = vec![
                Rect::new(
                    region.xl,
                    region.yl,
                    region.xl + quarter_w,
                    region.yl + quarter_h,
                ),
                Rect::new(
                    region.xh - quarter_w,
                    region.yl,
                    region.xh,
                    region.yl + quarter_h,
                ),
            ];
            let n = base.netlist.num_movable();
            fence_assignment = (0..n)
                .map(|_| match rng.gen_range(0..3u32) {
                    0 => Some(0u16),
                    1 => Some(1u16),
                    _ => None,
                })
                .collect();
            base.clone()
        }
        AdversarialCase::SingleBinGrid => {
            // The minimal legal spectral grid first, then deliberately
            // unsupported single-bin shapes a robust caller must reject
            // without panicking.
            suggested_bins = vec![(2, 4), (1, 1), (1, 4), (2, 1)];
            base.clone()
        }
    };

    // A deterministic evaluation placement: cells on a jittered grid
    // strictly inside the region. CoincidentPins stacks groups of cells on
    // shared coordinates so distinct-cell nets also collapse to points.
    let n_cells = design.netlist.num_cells();
    let n_mov = design.netlist.num_movable();
    let mut placement = design.fixed_positions.clone();
    debug_assert_eq!(placement.x.len(), n_cells);
    let margin = 0.1;
    for c in 0..n_mov {
        let (fx, fy) = if case == AdversarialCase::CoincidentPins {
            // Eight stack sites; every cell snaps to one of them.
            let site = c % 8;
            (
                margin + 0.8 * (site % 4) as f64 / 3.0,
                margin + 0.8 * (site / 4) as f64,
            )
        } else {
            (
                margin + 0.8 * rng.gen_range(0.0..1.0),
                margin + 0.8 * rng.gen_range(0.0..1.0),
            )
        };
        placement.x[c] = region.xl + region.width() * T::from_f64(fx.min(0.9));
        placement.y[c] = region.yl + region.height() * T::from_f64(fy.min(0.9));
    }

    Ok(AdversarialDesign {
        case,
        design,
        placement,
        fence_regions,
        fence_assignment,
        suggested_bins,
    })
}

/// Rebuilds `base` with extra nets appended by `extend`.
fn rebuild<T: Float>(
    base: &GeneratedDesign<T>,
    seed: u64,
    extend: impl FnOnce(
        &mut dp_netlist::NetlistBuilder<T>,
        &[dp_netlist::BuilderCell],
        &mut StdRng,
    ) -> Result<(), NetlistError>,
) -> Result<GeneratedDesign<T>, NetlistError> {
    rebuild_inner(base, seed, &[], extend)
}

/// Rebuilds `base` with extra movable cells of the given `(w, h)` sizes
/// appended (each joined to the first base cell by a 2-pin net so it is
/// connected).
fn rebuild_with_cells<T: Float>(
    base: &GeneratedDesign<T>,
    seed: u64,
    extra_cells: &[(f64, f64)],
) -> Result<GeneratedDesign<T>, NetlistError> {
    rebuild_inner(base, seed, extra_cells, |_, _, _| Ok(()))
}

fn rebuild_inner<T: Float>(
    base: &GeneratedDesign<T>,
    seed: u64,
    extra_cells: &[(f64, f64)],
    extend: impl FnOnce(
        &mut dp_netlist::NetlistBuilder<T>,
        &[dp_netlist::BuilderCell],
        &mut StdRng,
    ) -> Result<(), NetlistError>,
) -> Result<GeneratedDesign<T>, NetlistError> {
    let nl = &base.netlist;
    let region = nl.region();
    let mut b = dp_netlist::NetlistBuilder::new(region.xl, region.yl, region.xh, region.yh)
        .allow_degenerate_nets(true);
    if let Some(rows) = nl.rows() {
        b = b.with_rows(rows.clone());
    }
    let n_mov = nl.num_movable();
    let mut cells: Vec<dp_netlist::BuilderCell> = (0..nl.num_cells())
        .map(|c| {
            let (w, h) = (nl.cell_widths()[c], nl.cell_heights()[c]);
            if c < n_mov {
                b.add_movable_cell(w, h)
            } else {
                b.add_fixed_cell(w, h)
            }
        })
        .collect();
    for &(w, h) in extra_cells {
        let handle = b.add_movable_cell(T::from_f64(w), T::from_f64(h));
        cells.push(handle);
        // Keep the new cell connected.
        b.add_net(T::ONE, vec![(handle, T::ZERO, T::ZERO), (cells[0], T::ZERO, T::ZERO)])?;
    }
    for net in nl.nets() {
        let pins: Vec<_> = nl
            .net_pins(net)
            .iter()
            .map(|&p| {
                let (dx, dy) = nl.pin_offset(p);
                (cells[nl.pin_cell(p).index()], dx, dy)
            })
            .collect();
        b.add_net(nl.net_weight(net), pins)?;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
    extend(&mut b, &cells, &mut rng)?;
    let netlist = b.build()?;
    // Fixed cells keep their base ids (they come before the extra movable
    // cells in movable-index order? No: builders append movable cells
    // before fixed ones internally, so remap by recomputing).
    let mut fixed_positions = Placement::zeros(netlist.num_cells());
    let base_fixed_start = nl.num_movable();
    let new_fixed_start = netlist.num_movable();
    for k in 0..(nl.num_cells() - base_fixed_start) {
        fixed_positions.x[new_fixed_start + k] = base.fixed_positions.x[base_fixed_start + k];
        fixed_positions.y[new_fixed_start + k] = base.fixed_positions.y[base_fixed_start + k];
    }
    Ok(GeneratedDesign {
        name: base.name.clone(),
        netlist,
        fixed_positions,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        for case in AdversarialCase::ALL {
            let a = adversarial_design::<f64>(case, 7).expect("valid");
            let b = adversarial_design::<f64>(case, 7).expect("valid");
            assert_eq!(a.design.netlist.stats(), b.design.netlist.stats(), "{case}");
            assert_eq!(a.placement.x, b.placement.x, "{case}");
            assert_eq!(a.fence_assignment, b.fence_assignment, "{case}");
        }
    }

    #[test]
    fn degenerate_nets_present() {
        let d = adversarial_design::<f64>(AdversarialCase::DegenerateNets, 1).expect("valid");
        let nl = &d.design.netlist;
        let degenerate = nl.nets().filter(|&n| nl.net_degree(n) < 2).count();
        assert!(degenerate >= 1, "wanted degenerate nets, got {degenerate}");
    }

    #[test]
    fn zero_area_cells_present_and_connected() {
        let d = adversarial_design::<f64>(AdversarialCase::ZeroAreaCells, 2).expect("valid");
        let nl = &d.design.netlist;
        let zero = (0..nl.num_movable())
            .filter(|&c| nl.cell_widths()[c] * nl.cell_heights()[c] == 0.0)
            .count();
        assert!(zero >= 3, "wanted zero-area cells, got {zero}");
    }

    #[test]
    fn fence_case_has_regions_inside_core() {
        let d = adversarial_design::<f64>(AdversarialCase::FenceRegions, 3).expect("valid");
        assert_eq!(d.fence_regions.len(), 2);
        assert_eq!(d.fence_assignment.len(), d.design.netlist.num_movable());
        let region = d.design.netlist.region();
        for r in &d.fence_regions {
            assert!(r.xl >= region.xl && r.xh <= region.xh);
            assert!(r.yl >= region.yl && r.yh <= region.yh);
        }
        assert!(d.fence_assignment.iter().any(|a| a.is_some()));
        assert!(d.fence_assignment.iter().any(|a| a.is_none()));
    }

    #[test]
    fn single_bin_grid_suggests_illegal_shapes() {
        let d = adversarial_design::<f64>(AdversarialCase::SingleBinGrid, 4).expect("valid");
        assert!(d.suggested_bins.contains(&(1, 1)));
        let (mx, my) = d.suggested_bins[0];
        assert!(mx.is_power_of_two() && my.is_power_of_two() && my >= 4);
    }

    #[test]
    fn placement_stays_inside_region() {
        for case in AdversarialCase::ALL {
            let d = adversarial_design::<f64>(case, 11).expect("valid");
            let region = d.design.netlist.region();
            for c in 0..d.design.netlist.num_movable() {
                assert!(d.placement.x[c] >= region.xl && d.placement.x[c] <= region.xh);
                assert!(d.placement.y[c] >= region.yl && d.placement.y[c] <= region.yh);
            }
        }
    }
}
