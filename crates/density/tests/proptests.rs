//! Property-based tests of the electrostatic density system.

use dp_density::{BinGrid, DctBackendKind, DensityMapBuilder, DensityStrategy, ElectroField};
use dp_netlist::{NetlistBuilder, Placement, Rect};
use proptest::prelude::*;

fn build(seed: u64, cells: usize) -> (dp_netlist::Netlist<f64>, Placement<f64>) {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(0.0, 0.0, 128.0, 128.0);
    let handles: Vec<_> = (0..cells)
        .map(|_| b.add_movable_cell(rng.gen_range(1.0..10.0), 8.0))
        .collect();
    b.add_net(
        1.0,
        vec![(handles[0], 0.0, 0.0), (handles[1 % cells], 0.0, 0.0)],
    )
    .expect("valid");
    let nl = b.build().expect("valid");
    let mut p = Placement::zeros(nl.num_cells());
    for i in 0..cells {
        p.x[i] = rng.gen_range(10.0..118.0);
        p.y[i] = rng.gen_range(10.0..118.0);
    }
    (nl, p)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// Total scattered charge equals total movable area, for any strategy
    /// and any placement inside the region.
    #[test]
    fn charge_conservation(seed in 0u64..10_000, cells in 2usize..60) {
        let (nl, p) = build(seed, cells);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 128.0, 128.0), 16, 16).expect("pow2");
        for strategy in [
            DensityStrategy::Naive,
            DensityStrategy::Sorted,
            DensityStrategy::SortedSubthreads { tx: 2, ty: 2 },
        ] {
            let map = DensityMapBuilder::new(grid.clone(), strategy).build_movable(&nl, &p);
            let total: f64 = map.iter().sum();
            let want = nl.total_movable_area();
            prop_assert!((total - want).abs() < 1e-6 * want, "{strategy}: {total} vs {want}");
        }
    }

    /// The Poisson solve is linear in the density: solving a*rho gives
    /// a-scaled potential, field, and a^2-scaled energy.
    #[test]
    fn solver_linearity(seed in 0u64..1000, a in 0.1f64..10.0) {
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 64.0, 64.0), 8, 8).expect("pow2");
        let mut solver = ElectroField::new(&grid, DctBackendKind::Direct2d).expect("plan");
        let rho: Vec<f64> = (0..64)
            .map(|i| (((seed + i as u64) * 37) % 100) as f64 / 10.0)
            .collect();
        let scaled: Vec<f64> = rho.iter().map(|v| v * a).collect();
        let s1 = solver.solve(&rho);
        let s2 = solver.solve(&scaled);
        for (p1, p2) in s1.potential.iter().zip(&s2.potential) {
            prop_assert!((p2 - a * p1).abs() < 1e-7 * p1.abs().max(1.0));
        }
        for (f1, f2) in s1.field_x.iter().zip(&s2.field_x) {
            prop_assert!((f2 - a * f1).abs() < 1e-7 * f1.abs().max(1.0));
        }
        prop_assert!((s2.energy - a * a * s1.energy).abs() < 1e-6 * s1.energy.abs().max(1.0));
    }

    /// Energy is non-negative (the Poisson quadratic form is PSD after DC
    /// removal) and zero only for uniform density.
    #[test]
    fn energy_nonnegative(seed in 0u64..1000) {
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 64.0, 64.0), 8, 8).expect("pow2");
        let mut solver = ElectroField::new(&grid, DctBackendKind::Direct2d).expect("plan");
        let rho: Vec<f64> = (0..64)
            .map(|i| (((seed ^ i as u64) * 131) % 100) as f64 / 10.0)
            .collect();
        let sol = solver.solve(&rho);
        prop_assert!(sol.energy >= -1e-9, "energy {}", sol.energy);
    }

    /// Mirroring the density map along x mirrors the x field (with sign)
    /// and preserves the energy — a symmetry of the Neumann problem.
    #[test]
    fn mirror_symmetry(seed in 0u64..1000) {
        let m = 8usize;
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 64.0, 64.0), m, m).expect("pow2");
        let mut solver = ElectroField::new(&grid, DctBackendKind::Direct2d).expect("plan");
        let rho: Vec<f64> = (0..m * m)
            .map(|i| (((seed + i as u64) * 53) % 100) as f64)
            .collect();
        let mut mirrored = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                mirrored[(m - 1 - i) * m + j] = rho[i * m + j];
            }
        }
        let s1 = solver.solve(&rho);
        let s2 = solver.solve(&mirrored);
        prop_assert!((s1.energy - s2.energy).abs() < 1e-6 * s1.energy.max(1.0));
        for i in 0..m {
            for j in 0..m {
                let a = s1.field_x[i * m + j];
                let b = -s2.field_x[(m - 1 - i) * m + j];
                prop_assert!((a - b).abs() < 1e-7 * a.abs().max(1.0), "({i},{j})");
            }
        }
    }
}
