//! Spectral Poisson solve: potential and electric field from a density map.
//!
//! See the crate docs for the basis convention. The solver supports the
//! three DCT implementation tiers of Fig. 11 through [`DctBackendKind`], so
//! the Fig. 12 density benchmark can toggle them.

use dp_dct::dct2d::{Dct1dTier, Dct2dWork, RowColumnDct2d};
use dp_dct::{Dct2dPlan, DctBatch, DctBatchWork, TransformError, TransformPhases};
use dp_num::Float;

use crate::bins::BinGrid;

/// Which DCT implementation the field solver uses (paper Fig. 11 tiers,
/// plus the batched SIMD-blocked path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DctBackendKind {
    /// Row-column with 2N-point 1-D FFTs (the slowest tier).
    RowColumn2n,
    /// Row-column with Makhoul N-point 1-D FFTs (paper Algorithm 3).
    RowColumnN,
    /// Direct 2-D with one 2-D real FFT (paper Algorithm 4, the default).
    #[default]
    Direct2d,
    /// Batched lane-interleaved sweeps over the Direct2d tables with
    /// SIMD-friendly kernels; bitwise identical to [`Direct2d`] on
    /// power-of-two grids and the only tier that records the
    /// transpose/butterfly/twiddle phase split.
    ///
    /// [`Direct2d`]: DctBackendKind::Direct2d
    Batched,
}

impl std::fmt::Display for DctBackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DctBackendKind::RowColumn2n => "dct-2n",
            DctBackendKind::RowColumnN => "dct-n",
            DctBackendKind::Direct2d => "dct-2d-n",
            DctBackendKind::Batched => "dct-batch",
        };
        f.write_str(s)
    }
}

/// Transform scratch shared by the backends: the Direct2d work plus the
/// batched lane buffers (each tier touches only its own half).
struct TransformWork<T> {
    dct: Dct2dWork<T>,
    batch: DctBatchWork<T>,
}

impl<T: Float> TransformWork<T> {
    fn new() -> Self {
        Self {
            dct: Dct2dWork::new(),
            batch: DctBatchWork::new(),
        }
    }

    fn bytes(&self) -> usize {
        self.dct.bytes() + self.batch.bytes()
    }
}

enum Backend<T> {
    RowColumn(RowColumnDct2d<T>),
    Direct(Dct2dPlan<T>),
    Batch(DctBatch<T>),
}

impl<T: Float> Backend<T> {
    // The Direct2d and Batched tiers run allocation-free against the
    // reusable work buffers; the row-column tiers are legacy comparison
    // points (Fig. 11) and keep their allocating transforms.
    fn dct2_into(&self, x: &[T], work: &mut TransformWork<T>, out: &mut Vec<T>) {
        match self {
            Backend::RowColumn(p) => replace_with(out, p.dct2(x)),
            Backend::Direct(p) => p.dct2_with(x, &mut work.dct, out),
            Backend::Batch(p) => p.dct2_with(x, &mut work.batch, out),
        }
    }
    fn idct2_into(&self, x: &[T], work: &mut TransformWork<T>, out: &mut Vec<T>) {
        match self {
            Backend::RowColumn(p) => replace_with(out, p.idct2(x)),
            Backend::Direct(p) => p.idct2_with(x, &mut work.dct, out),
            Backend::Batch(p) => p.idct2_with(x, &mut work.batch, out),
        }
    }
    fn idxst_idct_into(&self, x: &[T], work: &mut TransformWork<T>, out: &mut Vec<T>) {
        match self {
            Backend::RowColumn(p) => replace_with(out, p.idxst_idct(x)),
            Backend::Direct(p) => p.idxst_idct_with(x, &mut work.dct, out),
            Backend::Batch(p) => p.idxst_idct_with(x, &mut work.batch, out),
        }
    }
    fn idct_idxst_into(&self, x: &[T], work: &mut TransformWork<T>, out: &mut Vec<T>) {
        match self {
            Backend::RowColumn(p) => replace_with(out, p.idct_idxst(x)),
            Backend::Direct(p) => p.idct_idxst_with(x, &mut work.dct, out),
            Backend::Batch(p) => p.idct_idxst_with(x, &mut work.batch, out),
        }
    }
}

fn replace_with<T>(out: &mut Vec<T>, v: Vec<T>) {
    out.clear();
    out.extend(v);
}

/// Potential and field of one density snapshot, in bin units.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSolution<T> {
    /// Electric potential per bin.
    pub potential: Vec<T>,
    /// Field along x per bin (`-d psi / dx`).
    pub field_x: Vec<T>,
    /// Field along y per bin (`-d psi / dy`).
    pub field_y: Vec<T>,
    /// System energy `0.5 * sum rho * psi`.
    pub energy: T,
}

impl<T: Float> FieldSolution<T> {
    /// An empty solution suitable as the out-param of
    /// [`ElectroField::solve_into`]; buffers grow on first use.
    pub fn empty() -> Self {
        Self {
            potential: Vec::new(),
            field_x: Vec::new(),
            field_y: Vec::new(),
            energy: T::ZERO,
        }
    }

    /// Heap bytes held by the solution buffers.
    pub fn bytes(&self) -> usize {
        (self.potential.capacity() + self.field_x.capacity() + self.field_y.capacity())
            * std::mem::size_of::<T>()
    }
}

impl<T: Float> Default for FieldSolution<T> {
    fn default() -> Self {
        Self::empty()
    }
}

/// The spectral electrostatics solver over a fixed [`BinGrid`].
///
/// # Examples
///
/// ```
/// use dp_density::{BinGrid, DctBackendKind, ElectroField};
/// use dp_netlist::Rect;
///
/// # fn main() -> Result<(), dp_density::GridError> {
/// let grid = BinGrid::new(Rect::new(0.0f64, 0.0, 64.0, 64.0), 8, 8)?;
/// let mut rho = vec![0.0f64; 64];
/// rho[8 * 4 + 4] = 1.0; // a point charge
/// let mut solver = ElectroField::new(&grid, DctBackendKind::Direct2d)?;
/// let sol = solver.solve(&rho);
/// assert!(sol.energy > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct ElectroField<T: Float> {
    mx: usize,
    my: usize,
    backend: Backend<T>,
    /// `w_u = pi u / mx`.
    wu: Vec<T>,
    /// `w_v = pi v / my`.
    wv: Vec<T>,
    /// Spectral coefficient and FFT scratch, reused across solves.
    scratch: SolveScratch<T>,
}

/// Reusable scratch for one spectral solve; owned by the solver so a
/// placement run allocates it exactly once.
struct SolveScratch<T> {
    a: Vec<T>,
    coef_psi: Vec<T>,
    coef_ex: Vec<T>,
    coef_ey: Vec<T>,
    work: TransformWork<T>,
}

impl<T: Float> SolveScratch<T> {
    fn new() -> Self {
        Self {
            a: Vec::new(),
            coef_psi: Vec::new(),
            coef_ex: Vec::new(),
            coef_ey: Vec::new(),
            work: TransformWork::new(),
        }
    }

    fn bytes(&self) -> usize {
        (self.a.capacity()
            + self.coef_psi.capacity()
            + self.coef_ex.capacity()
            + self.coef_ey.capacity())
            * std::mem::size_of::<T>()
            + self.work.bytes()
    }
}

impl<T: Float> ElectroField<T> {
    /// Creates a solver over `grid` with the chosen DCT tier.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError`] if the grid dimensions are unsupported by
    /// the tier.
    pub fn new(grid: &BinGrid<T>, kind: DctBackendKind) -> Result<Self, TransformError> {
        let (mx, my) = (grid.mx(), grid.my());
        let backend = match kind {
            DctBackendKind::RowColumn2n => {
                Backend::RowColumn(RowColumnDct2d::new(mx, my, Dct1dTier::TwoN)?)
            }
            DctBackendKind::RowColumnN => {
                Backend::RowColumn(RowColumnDct2d::new(mx, my, Dct1dTier::NPoint)?)
            }
            DctBackendKind::Direct2d => Backend::Direct(Dct2dPlan::new(mx, my)?),
            DctBackendKind::Batched => Backend::Batch(DctBatch::new(mx, my)?),
        };
        let freq = |k: usize, m: usize| T::from_f64(std::f64::consts::PI * k as f64 / m as f64);
        Ok(Self {
            mx,
            my,
            backend,
            wu: (0..mx).map(|u| freq(u, mx)).collect(),
            wv: (0..my).map(|v| freq(v, my)).collect(),
            scratch: SolveScratch::new(),
        })
    }

    /// Heap bytes held by the solver's reusable scratch buffers.
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.bytes()
    }

    /// Drains the transpose/butterfly/twiddle phase split accumulated by
    /// batched transforms since the last call. Always zero for the
    /// non-batched tiers.
    pub fn take_transform_phases(&mut self) -> TransformPhases {
        self.scratch.work.batch.take_phases()
    }

    /// Solves Poisson's equation for a density map (row-major `mx x my`,
    /// x-major as produced by [`crate::DensityMapBuilder`]), writing the
    /// result into `out` so both the solution and the spectral scratch are
    /// reused across iterations.
    ///
    /// The DC component is removed (paper Eq. (4c)), making the solution
    /// independent of total charge.
    ///
    /// # Panics
    ///
    /// Panics if `rho.len() != mx * my`.
    pub fn solve_into(&mut self, rho: &[T], out: &mut FieldSolution<T>) {
        assert_eq!(rho.len(), self.mx * self.my, "density map shape mismatch");
        let s = &mut self.scratch;
        self.backend.dct2_into(rho, &mut s.work, &mut s.a);

        for coef in [&mut s.coef_psi, &mut s.coef_ex, &mut s.coef_ey] {
            coef.clear();
            coef.resize(s.a.len(), T::ZERO);
        }
        for u in 0..self.mx {
            for v in 0..self.my {
                if u == 0 && v == 0 {
                    continue; // DC removed
                }
                let idx = u * self.my + v;
                let denom = self.wu[u] * self.wu[u] + self.wv[v] * self.wv[v];
                s.coef_psi[idx] = s.a[idx] / denom;
                s.coef_ex[idx] = s.a[idx] * self.wu[u] / denom;
                s.coef_ey[idx] = s.a[idx] * self.wv[v] / denom;
            }
        }

        self.backend
            .idct2_into(&s.coef_psi, &mut s.work, &mut out.potential);
        self.backend
            .idxst_idct_into(&s.coef_ex, &mut s.work, &mut out.field_x);
        self.backend
            .idct_idxst_into(&s.coef_ey, &mut s.work, &mut out.field_y);
        out.energy = rho
            .iter()
            .zip(&out.potential)
            .map(|(&r, &p)| r * p)
            .sum::<T>()
            * T::HALF;
    }

    /// [`ElectroField::solve_into`] returning a fresh [`FieldSolution`].
    ///
    /// # Panics
    ///
    /// Panics if `rho.len() != mx * my`.
    pub fn solve(&mut self, rho: &[T]) -> FieldSolution<T> {
        let mut out = FieldSolution::empty();
        self.solve_into(rho, &mut out);
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::Rect;

    fn grid(m: usize) -> BinGrid<f64> {
        BinGrid::new(Rect::new(0.0, 0.0, 64.0, 64.0), m, m).expect("pow2")
    }

    /// For a single-mode density rho = cos(w_u(x+1/2)) cos(w_v(y+1/2)), the
    /// exact solution is psi = rho / (w_u^2 + w_v^2) and
    /// xi_x = w_u sin(w_u(x+1/2)) cos(w_v(y+1/2)) / (w_u^2 + w_v^2).
    #[test]
    fn single_mode_matches_analytic_solution() {
        let m = 16;
        let g = grid(m);
        let mut solver = ElectroField::new(&g, DctBackendKind::Direct2d).expect("plan");
        let (u, v) = (3usize, 5usize);
        let wu = std::f64::consts::PI * u as f64 / m as f64;
        let wv = std::f64::consts::PI * v as f64 / m as f64;
        let mut rho = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                rho[i * m + j] = (wu * (i as f64 + 0.5)).cos() * (wv * (j as f64 + 0.5)).cos();
            }
        }
        let sol = solver.solve(&rho);
        let denom = wu * wu + wv * wv;
        for i in 0..m {
            for j in 0..m {
                let idx = i * m + j;
                let psi = rho[idx] / denom;
                assert!((sol.potential[idx] - psi).abs() < 1e-9, "psi at ({i},{j})");
                let ex = wu * (wu * (i as f64 + 0.5)).sin() * (wv * (j as f64 + 0.5)).cos() / denom;
                assert!((sol.field_x[idx] - ex).abs() < 1e-9, "ex at ({i},{j})");
                let ey = wv * (wu * (i as f64 + 0.5)).cos() * (wv * (j as f64 + 0.5)).sin() / denom;
                assert!((sol.field_y[idx] - ey).abs() < 1e-9, "ey at ({i},{j})");
            }
        }
    }

    #[test]
    fn all_backends_agree() {
        let m = 16;
        let g = grid(m);
        let mut rho = vec![0.0; m * m];
        for (k, r) in rho.iter_mut().enumerate() {
            *r = ((k * 37 % 101) as f64) / 100.0;
        }
        let reference = ElectroField::new(&g, DctBackendKind::Direct2d)
            .expect("plan")
            .solve(&rho);
        for kind in [DctBackendKind::RowColumn2n, DctBackendKind::RowColumnN] {
            let sol = ElectroField::new(&g, kind).expect("plan").solve(&rho);
            for (a, b) in sol.potential.iter().zip(&reference.potential) {
                assert!((a - b).abs() < 1e-9, "{kind}");
            }
            for (a, b) in sol.field_x.iter().zip(&reference.field_x) {
                assert!((a - b).abs() < 1e-9, "{kind}");
            }
            assert!((sol.energy - reference.energy).abs() < 1e-9, "{kind}");
        }
        // The batched tier re-executes the Direct2d arithmetic, so it must
        // agree bitwise, not just to tolerance.
        let batched = ElectroField::new(&g, DctBackendKind::Batched)
            .expect("plan")
            .solve(&rho);
        for (field, name) in [
            (&batched.potential, "potential"),
            (&batched.field_x, "field_x"),
            (&batched.field_y, "field_y"),
        ] {
            let want = match name {
                "potential" => &reference.potential,
                "field_x" => &reference.field_x,
                _ => &reference.field_y,
            };
            for (a, b) in field.iter().zip(want) {
                assert_eq!(a.to_bits(), b.to_bits(), "batched {name} differs");
            }
        }
        assert_eq!(batched.energy.to_bits(), reference.energy.to_bits());
    }

    #[test]
    fn batched_backend_records_phase_split() {
        let g = grid(16);
        let mut solver = ElectroField::new(&g, DctBackendKind::Batched).expect("plan");
        let mut rho = vec![0.0; 256];
        rho[40] = 1.0;
        let _ = solver.solve(&rho);
        let phases = solver.take_transform_phases();
        assert!(phases.total_nanos() > 0, "batched solve must record phases");
        assert_eq!(
            solver.take_transform_phases().total_nanos(),
            0,
            "take must drain"
        );
        // Non-batched tiers never record phases.
        let mut direct = ElectroField::new(&g, DctBackendKind::Direct2d).expect("plan");
        let _ = direct.solve(&rho);
        assert_eq!(direct.take_transform_phases().total_nanos(), 0);
    }

    #[test]
    fn uniform_density_has_zero_field_and_energy() {
        let g = grid(8);
        let mut solver = ElectroField::new(&g, DctBackendKind::Direct2d).expect("plan");
        let sol = solver.solve(&vec![3.5; 64]);
        assert!(sol.energy.abs() < 1e-9);
        assert!(sol.field_x.iter().all(|v| v.abs() < 1e-9));
        assert!(sol.field_y.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn dc_invariance() {
        // Adding a constant to rho must not change anything (Eq. 4c).
        let g = grid(8);
        let mut solver = ElectroField::new(&g, DctBackendKind::Direct2d).expect("plan");
        let mut rho = vec![0.0; 64];
        rho[9] = 2.0;
        rho[40] = 1.0;
        let base = solver.solve(&rho);
        let shifted: Vec<f64> = rho.iter().map(|v| v + 5.0).collect();
        let sol = solver.solve(&shifted);
        for (a, b) in sol.field_x.iter().zip(&base.field_x) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in sol.potential.iter().zip(&base.potential) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn field_points_away_from_charge() {
        let m = 16;
        let g = grid(m);
        let mut solver = ElectroField::new(&g, DctBackendKind::Direct2d).expect("plan");
        let mut rho = vec![0.0; m * m];
        rho[g.index(8, 8)] = 4.0;
        let sol = solver.solve(&rho);
        // Left of the charge the x field is negative (pushes left),
        // right of it positive... with our sign convention xi = -dpsi/dx:
        // psi decays away from the charge, so dpsi/dx > 0 left of it,
        // giving xi < 0 there: the force q*xi pushes a positive test charge
        // further left, i.e. away. Check signs on both sides.
        assert!(sol.field_x[g.index(5, 8)] < 0.0);
        assert!(sol.field_x[g.index(11, 8)] > 0.0);
        assert!(sol.field_y[g.index(8, 5)] < 0.0);
        assert!(sol.field_y[g.index(8, 11)] > 0.0);
    }
}
