//! Density map accumulation — the "dynamic bipartite graph forward"
//! (paper §III-B1, Fig. 5a).
//!
//! Every movable cell scatters its (smoothed) area into the bins it
//! overlaps. The paper's GPU kernels fight warp-level load imbalance with
//! two tricks benchmarked in Figs. 6 and 12, both reproduced here:
//!
//! * **sort cells by area** so neighbouring workers handle similar sizes;
//! * **update one cell with multiple workers** — the cell's bin rectangle is
//!   split into `tx x ty` tiles that become independent work items
//!   (the paper settles on 2x2).
//!
//! Cells smaller than `sqrt(2) x bin` are stretched with proportionally
//! reduced density (ePlace's local smoothing), preserving total charge while
//! keeping the map — and hence the gradient — smooth as cells cross bin
//! boundaries.

use dp_netlist::{Netlist, Placement, Rect};
use dp_num::{AtomicFloat, FixedPointCell, Float, WorkerPool};

use crate::bins::BinGrid;

/// Work partitioning strategy for the density map scatter (Figs. 6 / 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DensityStrategy {
    /// One work item per cell, original cell order (the DAC'19 baseline).
    Naive,
    /// One work item per cell, cells sorted by area (TCAD trick 1).
    Sorted,
    /// Sorted cells, each split into `tx x ty` tile jobs (TCAD trick 2;
    /// the paper picks 2x2).
    SortedSubthreads {
        /// Horizontal tile count per cell.
        tx: usize,
        /// Vertical tile count per cell.
        ty: usize,
    },
}

impl std::fmt::Display for DensityStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DensityStrategy::Naive => write!(f, "naive"),
            DensityStrategy::Sorted => write!(f, "sorted"),
            DensityStrategy::SortedSubthreads { tx, ty } => write!(f, "sorted+{tx}x{ty}"),
        }
    }
}

/// The smoothed footprint of a cell: a possibly stretched rectangle plus a
/// density scale that keeps total charge equal to the true cell area.
#[derive(Debug, Clone, Copy)]
pub struct Footprint<T> {
    /// The (possibly stretched) rectangle the cell's charge occupies.
    pub rect: Rect<T>,
    /// Density scale applied inside [`Footprint::rect`] so that
    /// `rect.area() * scale` equals the true cell area.
    pub scale: T,
}

/// Computes the ePlace-smoothed footprint of a movable cell centered at
/// `(cx, cy)`: cells narrower than `sqrt(2)` bins are stretched to that
/// width with proportionally reduced density. Public so differential
/// oracles (`dp-check`) can state the scatter definition independently and
/// cross-check this exact function.
pub fn smoothed_footprint<T: Float>(
    cx: T,
    cy: T,
    w: T,
    h: T,
    grid: &BinGrid<T>,
) -> Footprint<T> {
    // Non-finite positions (a diverged placement) or non-finite/negative
    // dimensions (a corrupted netlist) must not panic the scatter: such a
    // cell contributes no charge and the divergence tripwire upstream
    // reports the bad coordinates.
    let finite = cx.to_f64().is_finite()
        && cy.to_f64().is_finite()
        && w.to_f64().is_finite()
        && h.to_f64().is_finite();
    if !finite || w < T::ZERO || h < T::ZERO {
        return Footprint {
            rect: Rect::new(T::ZERO, T::ZERO, T::ZERO, T::ZERO),
            scale: T::ZERO,
        };
    }
    let sqrt2 = T::from_f64(std::f64::consts::SQRT_2);
    let min_w = grid.bin_width() * sqrt2;
    let min_h = grid.bin_height() * sqrt2;
    let (w2, sx) = if w < min_w {
        (min_w, w / min_w)
    } else {
        (w, T::ONE)
    };
    let (h2, sy) = if h < min_h {
        (min_h, h / min_h)
    } else {
        (h, T::ONE)
    };
    Footprint {
        rect: Rect::from_center(cx, cy, w2, h2),
        scale: sx * sy,
    }
}

/// Reusable builder for movable/fixed density maps over a [`BinGrid`].
///
/// Densities are in **area units**: bin value = total (smoothed) cell area
/// overlapping the bin. Divide by [`BinGrid::bin_area`] for utilization.
pub struct DensityMapBuilder<T: Float> {
    grid: BinGrid<T>,
    strategy: DensityStrategy,
    threads: usize,
    /// Cell order used by the scatter (sorted by area for the TCAD path).
    order: Vec<u32>,
    order_valid_for: usize,
    /// Optional movable-cell mask: when set, only `mask[c] == true` cells
    /// scatter (fence-region support, paper §III-G).
    mask: Option<Vec<bool>>,
    /// Deterministic fixed-point accumulation (run-to-run reproducible
    /// under any thread interleaving; paper §V future work).
    deterministic: bool,
    /// Persistent accumulation bins (float-atomic mode), reset per build.
    float_bins: Vec<FloatBins<T>>,
    /// Persistent accumulation bins (fixed-point mode), reset per build.
    fixed_bins: Vec<FixedPointCell>,
    /// Lazily built pool backing the allocating [`Self::build_movable`]
    /// convenience wrapper; hot paths pass their own pool to
    /// [`Self::build_movable_into`].
    pool: Option<WorkerPool>,
}

type FloatBins<T> = <T as Float>::Atomic;

impl<T: Float> DensityMapBuilder<T> {
    /// Creates a builder over `grid` with the given scatter strategy.
    pub fn new(grid: BinGrid<T>, strategy: DensityStrategy) -> Self {
        Self {
            grid,
            strategy,
            threads: 1,
            order: Vec::new(),
            order_valid_for: usize::MAX,
            mask: None,
            deterministic: false,
            float_bins: Vec::new(),
            fixed_bins: Vec::new(),
            pool: None,
        }
    }

    /// Sets the worker thread count (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Sets the worker thread count in place (1 = serial).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Enables deterministic fixed-point accumulation: bins accumulate in
    /// scaled integers, making multithreaded scatters bit-reproducible
    /// (the paper's §V determinism plan). Costs one rounding at `2^-24`
    /// of a bin area per update.
    pub fn with_deterministic(mut self, deterministic: bool) -> Self {
        self.set_deterministic(deterministic);
        self
    }

    /// In-place variant of [`DensityMapBuilder::with_deterministic`].
    pub fn set_deterministic(&mut self, deterministic: bool) {
        self.deterministic = deterministic;
    }

    /// Restricts the scatter to cells with `mask[c] == true` (fence-region
    /// support). Pass `None` to clear.
    ///
    /// # Panics
    ///
    /// Panics (on the next build) if the mask length does not match the
    /// movable cell count.
    pub fn set_mask(&mut self, mask: Option<Vec<bool>>) {
        self.mask = mask;
        self.order_valid_for = usize::MAX; // rebuild the order
    }

    /// The grid this builder scatters into.
    pub fn grid(&self) -> &BinGrid<T> {
        &self.grid
    }

    /// The active strategy.
    pub fn strategy(&self) -> DensityStrategy {
        self.strategy
    }

    fn ensure_order(&mut self, nl: &Netlist<T>) {
        let n = nl.num_movable();
        if self.order_valid_for == n {
            return;
        }
        if let Some(mask) = &self.mask {
            assert_eq!(mask.len(), n, "mask length must match movable cells");
            self.order = (0..n as u32).filter(|&c| mask[c as usize]).collect();
        } else {
            self.order = (0..n as u32).collect();
        }
        if !matches!(self.strategy, DensityStrategy::Naive) {
            let areas: Vec<T> = (0..n)
                .map(|i| nl.cell_widths()[i] * nl.cell_heights()[i])
                .collect();
            // NaN areas (a corrupted netlist) must not panic the scatter;
            // they sort arbitrarily and the divergence tripwire upstream
            // reports the poisoned map.
            self.order.sort_by(|&a, &b| {
                areas[a as usize]
                    .partial_cmp(&areas[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        self.order_valid_for = n;
    }

    /// Heap bytes held by the persistent accumulation bins.
    pub fn bins_bytes(&self) -> usize {
        self.float_bins.capacity() * std::mem::size_of::<FloatBins<T>>()
            + self.fixed_bins.capacity() * std::mem::size_of::<FixedPointCell>()
    }

    /// Resets (or grows) the accumulation bins for the active mode, so a
    /// placement run allocates them exactly once.
    fn reset_bins(&mut self) {
        let n = self.grid.num_bins();
        if self.deterministic {
            if self.fixed_bins.len() == n {
                for b in &self.fixed_bins {
                    b.reset();
                }
            } else {
                self.fixed_bins = FixedPointCell::vec_with(n, 1 << 24);
            }
        } else if self.float_bins.len() == n {
            for b in &self.float_bins {
                b.store(T::ZERO);
            }
        } else {
            self.float_bins = (0..n).map(|_| FloatBins::<T>::new(T::ZERO)).collect();
        }
    }

    /// Scatters all movable cells into `out` (area units), running the
    /// scatter on `pool` and reusing the builder's persistent bins.
    pub fn build_movable_into(
        &mut self,
        nl: &Netlist<T>,
        p: &Placement<T>,
        pool: &WorkerPool,
        out: &mut Vec<T>,
    ) {
        self.ensure_order(nl);
        // Accumulation backend: float atomics (fast) or fixed-point
        // integers (deterministic, thread-count invariant). The fixed-point
        // scale is relative to a bin area so precision is size-independent.
        self.reset_bins();
        let inv_bin_area = 1.0 / self.grid.bin_area().to_f64();
        let deterministic = self.deterministic;
        let float_bins = &self.float_bins;
        let fixed_bins = &self.fixed_bins;
        let bins_add = |idx: usize, v: T| {
            if deterministic {
                // Accumulate in bin-area units for scale-free precision.
                fixed_bins[idx].add(v.to_f64() * inv_bin_area);
            } else {
                float_bins[idx].fetch_add(v);
            }
        };
        let grid = &self.grid;
        let order = &self.order;

        let scatter_cell = |cell: usize, tile: Option<(usize, usize, usize, usize)>| {
            let fp = smoothed_footprint(
                p.x[cell],
                p.y[cell],
                nl.cell_widths()[cell],
                nl.cell_heights()[cell],
                grid,
            );
            let (is, js) = grid.overlapped_bins(&fp.rect);
            let (is, js) = match tile {
                None => (is, js),
                Some((tx, ty, u, v)) => (split_range(is, tx, u), split_range(js, ty, v)),
            };
            for i in is {
                for j in js.clone() {
                    let a = grid.bin_rect(i, j).overlap_area(&fp.rect);
                    if a > T::ZERO {
                        bins_add(grid.index(i, j), a * fp.scale);
                    }
                }
            }
        };

        match self.strategy {
            DensityStrategy::Naive | DensityStrategy::Sorted => {
                let n = order.len();
                pool.run(n, pool.chunk_for(n), |range| {
                    for k in range {
                        scatter_cell(order[k] as usize, None);
                    }
                });
            }
            DensityStrategy::SortedSubthreads { tx, ty } => {
                let per_cell = tx * ty;
                let jobs = order.len() * per_cell;
                pool.run(jobs, pool.chunk_for(jobs), |range| {
                    for job in range {
                        let k = job / per_cell;
                        let t = job % per_cell;
                        scatter_cell(order[k] as usize, Some((tx, ty, t % tx, t / tx)));
                    }
                });
            }
        }
        out.clear();
        if deterministic {
            let bin_area = self.grid.bin_area();
            out.extend(
                self.fixed_bins
                    .iter()
                    .map(|b| T::from_f64(b.load()) * bin_area),
            );
        } else {
            out.extend(self.float_bins.iter().map(|b| b.load()));
        }
    }

    /// Scatters all movable cells into a fresh map (area units), on a pool
    /// sized by [`Self::set_threads`] and kept across calls.
    pub fn build_movable(&mut self, nl: &Netlist<T>, p: &Placement<T>) -> Vec<T> {
        let stale = self.pool.as_ref().map(WorkerPool::threads) != Some(self.threads);
        let pool = if stale {
            WorkerPool::new(self.threads)
        } else {
            match self.pool.take() {
                Some(pool) => pool,
                None => WorkerPool::new(self.threads),
            }
        };
        let mut out = Vec::new();
        self.build_movable_into(nl, p, &pool, &mut out);
        self.pool = Some(pool);
        out
    }

    /// Scatters fixed cells (no smoothing; they do not move, so the map can
    /// be cached by the caller). Contributions are clipped to the region.
    pub fn build_fixed(&self, nl: &Netlist<T>, p: &Placement<T>) -> Vec<T> {
        let mut bins = vec![T::ZERO; self.grid.num_bins()];
        for c in nl.num_movable()..nl.num_cells() {
            let rect = Rect::from_center(p.x[c], p.y[c], nl.cell_widths()[c], nl.cell_heights()[c]);
            let (is, js) = self.grid.overlapped_bins(&rect);
            for i in is {
                for j in js.clone() {
                    let a = self.grid.bin_rect(i, j).overlap_area(&rect);
                    bins[self.grid.index(i, j)] += a;
                }
            }
        }
        bins
    }
}

/// Splits `range` into `parts` nearly equal sub-ranges and returns part `k`.
fn split_range(range: std::ops::Range<usize>, parts: usize, k: usize) -> std::ops::Range<usize> {
    let len = range.len();
    let base = len / parts;
    let rem = len % parts;
    let start = range.start + base * k + k.min(rem);
    let size = base + usize::from(k < rem);
    start..(start + size).min(range.end)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::NetlistBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn design(seed: u64, n: usize) -> (Netlist<f64>, Placement<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new(0.0, 0.0, 64.0, 64.0);
        let cells: Vec<_> = (0..n)
            .map(|_| b.add_movable_cell(rng.gen_range(1.0..6.0), 4.0))
            .collect();
        b.add_net(1.0, vec![(cells[0], 0.0, 0.0), (cells[1], 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        for i in 0..n {
            p.x[i] = rng.gen_range(8.0..56.0);
            p.y[i] = rng.gen_range(8.0..56.0);
        }
        (nl, p)
    }

    fn grid() -> BinGrid<f64> {
        BinGrid::new(dp_netlist::Rect::new(0.0, 0.0, 64.0, 64.0), 16, 16).expect("pow2")
    }

    #[test]
    fn mass_is_conserved() {
        let (nl, p) = design(1, 40);
        let mut builder = DensityMapBuilder::new(grid(), DensityStrategy::Sorted);
        let map = builder.build_movable(&nl, &p);
        let total: f64 = map.iter().sum();
        let expect: f64 = nl.total_movable_area();
        assert!(
            (total - expect).abs() < 1e-9 * expect,
            "total {total} vs area {expect}"
        );
    }

    #[test]
    fn zero_area_cells_scatter_nothing() {
        // Zero-area cells (e.g. Bookshelf terminals modelled as points) are
        // smoothed to a min-size footprint with density scale 0, so the map
        // stays finite and mass equals the real movable area.
        let mut b = NetlistBuilder::new(0.0, 0.0, 64.0, 64.0);
        b.add_movable_cell(8.0, 8.0);
        b.add_movable_cell(0.0, 0.0);
        b.add_movable_cell(0.0, 4.0);
        let a0 = b.add_movable_cell(4.0, 4.0);
        let a1 = b.add_movable_cell(4.0, 4.0);
        b.add_net(1.0, vec![(a0, 0.0, 0.0), (a1, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        for i in 0..nl.num_cells() {
            p.x[i] = 8.0 + 10.0 * i as f64;
            p.y[i] = 32.0;
        }
        for strategy in [
            DensityStrategy::Naive,
            DensityStrategy::Sorted,
            DensityStrategy::SortedSubthreads { tx: 2, ty: 2 },
        ] {
            let map = DensityMapBuilder::new(grid(), strategy).build_movable(&nl, &p);
            assert!(map.iter().all(|v| v.is_finite()), "{strategy}");
            let total: f64 = map.iter().sum();
            let expect = 8.0 * 8.0 + 4.0 * 4.0 + 4.0 * 4.0;
            assert!((total - expect).abs() < 1e-9, "{strategy}: total {total}");
        }
    }

    #[test]
    fn non_finite_cell_area_does_not_panic_sort() {
        // The sorted strategies order cells by area; a NaN area must not
        // abort the whole scatter with a comparator panic.
        let (nl, p) = design(4, 10);
        let mut widths = nl.cell_widths().to_vec();
        widths[3] = f64::NAN;
        let nl = nl.with_cell_sizes(widths, nl.cell_heights().to_vec());
        let map = DensityMapBuilder::new(grid(), DensityStrategy::Sorted).build_movable(&nl, &p);
        assert_eq!(map.len(), grid().num_bins());
        // The corrupted cell scatters nothing; the map stays finite.
        assert!(map.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn strategies_agree() {
        let (nl, p) = design(2, 60);
        let reference =
            DensityMapBuilder::new(grid(), DensityStrategy::Naive).build_movable(&nl, &p);
        for strategy in [
            DensityStrategy::Sorted,
            DensityStrategy::SortedSubthreads { tx: 2, ty: 2 },
            DensityStrategy::SortedSubthreads { tx: 4, ty: 1 },
        ] {
            let map = DensityMapBuilder::new(grid(), strategy).build_movable(&nl, &p);
            for (a, b) in map.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-9, "{strategy}");
            }
        }
    }

    #[test]
    fn threads_agree() {
        let (nl, p) = design(3, 50);
        let serial = DensityMapBuilder::new(grid(), DensityStrategy::Sorted).build_movable(&nl, &p);
        let parallel = DensityMapBuilder::new(grid(), DensityStrategy::Sorted)
            .with_threads(4)
            .build_movable(&nl, &p);
        for (a, b) in serial.iter().zip(&parallel) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn smoothing_preserves_charge_and_spreads_it() {
        let g = grid(); // bin 4x4
        let fp = smoothed_footprint(32.0, 32.0, 1.0, 1.0, &g);
        // stretched to sqrt(2)*4 in both dims
        let sq2 = std::f64::consts::SQRT_2;
        assert!((fp.rect.width() - 4.0 * sq2).abs() < 1e-12);
        assert!((fp.rect.area() * fp.scale - 1.0).abs() < 1e-12);
        // large cells are untouched
        let fp = smoothed_footprint(32.0, 32.0, 20.0, 10.0, &g);
        assert_eq!(fp.rect.width(), 20.0);
        assert_eq!(fp.scale, 1.0);
    }

    #[test]
    fn fixed_map_counts_macros() {
        let mut b = NetlistBuilder::new(0.0, 0.0, 64.0, 64.0);
        let a = b.add_movable_cell(1.0, 1.0);
        let c = b.add_movable_cell(1.0, 1.0);
        let f = b.add_fixed_cell(16.0, 16.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0), (f, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x[2] = 8.0;
        p.y[2] = 8.0; // macro covering [0,16]x[0,16]
        let builder = DensityMapBuilder::new(grid(), DensityStrategy::Sorted);
        let map = builder.build_fixed(&nl, &p);
        let total: f64 = map.iter().sum();
        assert!((total - 256.0).abs() < 1e-9);
        // fully inside bins are saturated at bin area
        assert!((map[0] - 16.0).abs() < 1e-9);
    }

    #[test]
    fn split_range_partitions() {
        let r = 3..18;
        let mut acc = Vec::new();
        for k in 0..4 {
            acc.extend(split_range(r.clone(), 4, k));
        }
        assert_eq!(acc, (3..18).collect::<Vec<_>>());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod deterministic_tests {
    use super::*;
    use dp_netlist::NetlistBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn design(seed: u64) -> (Netlist<f64>, Placement<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new(0.0, 0.0, 64.0, 64.0);
        let cells: Vec<_> = (0..200)
            .map(|_| b.add_movable_cell(rng.gen_range(1.0..6.0), 4.0))
            .collect();
        b.add_net(1.0, vec![(cells[0], 0.0, 0.0), (cells[1], 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        for i in 0..200 {
            p.x[i] = rng.gen_range(4.0..60.0);
            p.y[i] = rng.gen_range(4.0..60.0);
        }
        (nl, p)
    }

    fn grid() -> BinGrid<f64> {
        BinGrid::new(dp_netlist::Rect::new(0.0, 0.0, 64.0, 64.0), 16, 16).expect("pow2")
    }

    #[test]
    fn fixed_point_mode_is_bit_reproducible_across_threads() {
        let (nl, p) = design(5);
        let runs: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                DensityMapBuilder::new(grid(), DensityStrategy::Sorted)
                    .with_threads(4)
                    .with_deterministic(true)
                    .build_movable(&nl, &p)
            })
            .collect();
        // Bitwise identical across repeated multithreaded runs.
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn fixed_point_matches_float_within_quantization() {
        let (nl, p) = design(6);
        let float = DensityMapBuilder::new(grid(), DensityStrategy::Sorted).build_movable(&nl, &p);
        let fixed = DensityMapBuilder::new(grid(), DensityStrategy::Sorted)
            .with_deterministic(true)
            .build_movable(&nl, &p);
        let bin_area = grid().bin_area();
        for (a, b) in float.iter().zip(&fixed) {
            // Up to ~200 updates per bin, each quantized at 2^-24 bin areas.
            assert!(
                (a - b).abs() < 200.0 * bin_area / (1 << 24) as f64 + 1e-9,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn fixed_point_conserves_charge_to_quantization() {
        let (nl, p) = design(7);
        let map = DensityMapBuilder::new(grid(), DensityStrategy::Sorted)
            .with_deterministic(true)
            .build_movable(&nl, &p);
        let total: f64 = map.iter().sum();
        let want = nl.total_movable_area();
        assert!((total - want).abs() / want < 1e-5, "{total} vs {want}");
    }
}
