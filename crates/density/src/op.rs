//! The density penalty operator `D(x, y)` of paper Eq. (2).
//!
//! Forward: density map -> DCT -> potential -> energy (paper Fig. 4b).
//! Backward: field gather per cell, the "dynamic bipartite graph backward"
//! of §III-B2 — each cell collects the force from its overlapped bins,
//! weighted by overlap area.

use std::sync::Arc;

use dp_autograd::{ExecCtx, Gradient, Operator};
use dp_dct::TransformError;
use dp_netlist::{Netlist, Placement};
use dp_num::parallel::DisjointSlice;
use dp_num::Float;

use crate::bins::BinGrid;
use crate::electro::{DctBackendKind, ElectroField, FieldSolution};
use crate::map::{smoothed_footprint, DensityMapBuilder, DensityStrategy};

/// The electrostatic density operator.
///
/// The returned cost is the system energy `0.5 * sum_b rho_b * psi_b` (in
/// bin units); its gradient with respect to a cell position is the negative
/// electric force on the cell's charge. Use [`DensityOp::bake_fixed`] once
/// before placement so fixed macros repel movable cells, and
/// [`DensityOp::overflow`] for the stopping criterion.
///
/// See the crate-level example.
pub struct DensityOp<T: Float> {
    builder: DensityMapBuilder<T>,
    /// `None` on grids below the spectral minimum ([`BinGrid::
    /// supports_spectral_solve`]): the operator then runs in uniform-field
    /// mode — zero energy, zero field, overflow still exact.
    solver: Option<ElectroField<T>>,
    target_density: T,
    fixed_map: Option<Vec<T>>,
    /// Optional movable-cell mask (fence regions): only masked cells carry
    /// charge and receive force.
    mask: Option<Vec<bool>>,
    /// Last movable-only density map (area units), kept for overflow.
    last_movable_map: Option<Vec<T>>,
    /// Last field solution, reused by `backward` after a `forward`.
    cache: Option<FieldSolution<T>>,
}

impl<T: Float> DensityOp<T> {
    /// Creates the operator with the default DCT tier (direct 2-D).
    ///
    /// `target_density` is the `d_t` of paper Eq. (1b), in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError`] if the grid shape is unsupported.
    ///
    /// # Panics
    ///
    /// Panics if `target_density` is not in `(0, 1]`.
    pub fn new(
        grid: BinGrid<T>,
        strategy: DensityStrategy,
        target_density: T,
    ) -> Result<Self, TransformError> {
        Self::with_backend(grid, strategy, target_density, DctBackendKind::Direct2d)
    }

    /// Creates the operator with an explicit DCT tier (Fig. 11/12 benches).
    ///
    /// On grids below the spectral minimum (single-bin shapes like
    /// `(1, 1)`/`(1, 4)`/`(2, 1)`) no transform plan is built and the
    /// operator runs in **uniform-field mode**: the density a sub-minimum
    /// grid resolves is constant per bin row/column, so the correct field
    /// is zero everywhere — forward returns zero energy, backward adds no
    /// force, and only [`DensityOp::overflow`] (which needs no solve)
    /// stays active. [`DensityOp::is_uniform_field`] reports the mode.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError`] if the grid shape is unsupported.
    ///
    /// # Panics
    ///
    /// Panics if `target_density` is not in `(0, 1]`.
    pub fn with_backend(
        grid: BinGrid<T>,
        strategy: DensityStrategy,
        target_density: T,
        backend: DctBackendKind,
    ) -> Result<Self, TransformError> {
        assert!(
            target_density > T::ZERO && target_density <= T::ONE,
            "target density must be in (0, 1]"
        );
        let solver = if grid.supports_spectral_solve() {
            Some(ElectroField::new(&grid, backend)?)
        } else {
            None
        };
        Ok(Self {
            builder: DensityMapBuilder::new(grid, strategy),
            solver,
            target_density,
            fixed_map: None,
            mask: None,
            last_movable_map: None,
            cache: None,
        })
    }

    /// Enables deterministic fixed-point density accumulation (bitwise
    /// run-to-run reproducible scatters; paper §V future work).
    pub fn with_deterministic(mut self, deterministic: bool) -> Self {
        self.builder.set_deterministic(deterministic);
        self
    }

    /// Restricts the operator to cells with `mask[c] == true`: only those
    /// scatter charge and receive force (fence-region support, §III-G).
    pub fn with_mask(mut self, mask: Vec<bool>) -> Self {
        self.builder.set_mask(Some(mask.clone()));
        self.mask = Some(mask);
        self
    }

    /// The bin grid.
    pub fn grid(&self) -> &BinGrid<T> {
        self.builder.grid()
    }

    /// `true` when the grid is below the spectral minimum and the operator
    /// degraded to the uniform-field mode (zero energy and force).
    pub fn is_uniform_field(&self) -> bool {
        self.solver.is_none()
    }

    /// The target density `d_t`.
    pub fn target_density(&self) -> T {
        self.target_density
    }

    /// Precomputes the fixed-cell density map from the (immutable) fixed
    /// cell positions. Call once before the placement loop.
    pub fn bake_fixed(&mut self, nl: &Netlist<T>, p: &Placement<T>) {
        self.fixed_map = Some(self.builder.build_fixed(nl, p));
    }

    /// Adds extra fixed density (area units per bin) on top of the baked
    /// fixed-cell map — used by fence regions to block the area outside a
    /// fence.
    ///
    /// # Panics
    ///
    /// Panics if `extra` does not match the bin count.
    pub fn add_fixed_density(&mut self, extra: &[T]) {
        assert_eq!(extra.len(), self.grid().num_bins(), "bin count mismatch");
        match &mut self.fixed_map {
            Some(map) => {
                for (m, e) in map.iter_mut().zip(extra) {
                    *m += *e;
                }
            }
            None => self.fixed_map = Some(extra.to_vec()),
        }
    }

    /// The total density map (movable + fixed) of the last forward pass,
    /// in area units, or `None` before the first forward.
    pub fn last_density_map(&self) -> Option<Vec<T>> {
        let movable = self.last_movable_map.as_ref()?;
        let mut map = movable.clone();
        if let Some(fixed) = &self.fixed_map {
            for (m, f) in map.iter_mut().zip(fixed) {
                *m += *f;
            }
        }
        Some(map)
    }

    /// ePlace's density overflow
    /// `tau = sum_b max(0, rho_b - capacity_b) / total movable area`,
    /// where a bin's capacity is the target density times the bin area not
    /// blocked by fixed cells. This is the global placement stopping
    /// criterion (RePlAce stops near `tau = 0.07..0.10`).
    pub fn overflow(&mut self, nl: &Netlist<T>, p: &Placement<T>, ctx: &mut ExecCtx<T>) -> T {
        let t0 = ctx.op_timer();
        let pool = Arc::clone(ctx.pool());
        let mut movable = self.last_movable_map.take().unwrap_or_default();
        self.builder.build_movable_into(nl, p, &pool, &mut movable);
        let overflow = self.overflow_of_map(nl, &movable);
        self.last_movable_map = Some(movable);
        ctx.record_op("density.overflow", t0);
        overflow
    }

    fn overflow_of_map(&self, nl: &Netlist<T>, movable: &[T]) -> T {
        let bin_area = self.grid().bin_area();
        let zero_fixed;
        let fixed = match &self.fixed_map {
            Some(f) => f.as_slice(),
            None => {
                zero_fixed = vec![T::ZERO; movable.len()];
                &zero_fixed
            }
        };
        let mut over = T::ZERO;
        for (m, f) in movable.iter().zip(fixed) {
            let capacity = (self.target_density * (bin_area - *f)).max(T::ZERO);
            over += (*m - capacity).max(T::ZERO);
        }
        let area: T = match &self.mask {
            Some(mask) => (0..nl.num_movable())
                .filter(|&c| mask[c])
                .map(|c| nl.cell_widths()[c] * nl.cell_heights()[c])
                .sum(),
            None => nl.total_movable_area(),
        };
        // No movable area (empty mask or all zero-area cells) means nothing
        // can overflow; dividing would turn the stopping criterion into NaN.
        // (A NaN area still yields NaN so the divergence tripwire fires.)
        if area <= T::ZERO {
            return T::ZERO;
        }
        over / area
    }

    /// Builds the charge map used for the field solve into `rho`: movable
    /// (smoothed) plus fixed contributions, in density units
    /// (area / bin area).
    fn charge_map_into(
        &mut self,
        nl: &Netlist<T>,
        p: &Placement<T>,
        pool: &dp_num::WorkerPool,
        rho: &mut Vec<T>,
    ) {
        let mut movable = self.last_movable_map.take().unwrap_or_default();
        self.builder.build_movable_into(nl, p, pool, &mut movable);
        let inv_bin = T::ONE / self.grid().bin_area();
        rho.clear();
        rho.extend(movable.iter().map(|&m| m * inv_bin));
        if let Some(fixed) = &self.fixed_map {
            for (r, f) in rho.iter_mut().zip(fixed) {
                *r += *f * inv_bin;
            }
        }
        self.last_movable_map = Some(movable);
    }
}

impl<T: Float> Operator<T> for DensityOp<T> {
    fn name(&self) -> &'static str {
        "density"
    }

    fn forward(&mut self, nl: &Netlist<T>, p: &Placement<T>, ctx: &mut ExecCtx<T>) -> T {
        let t0 = ctx.op_timer();
        if self.solver.is_none() {
            // Uniform-field mode: a sub-minimum grid cannot resolve a
            // non-uniform density, so field and energy are identically
            // zero; there is nothing to scatter or solve.
            ctx.record_op("density.forward", t0);
            return T::ZERO;
        }
        let pool = Arc::clone(ctx.pool());
        let bins_reused = self.builder.bins_bytes() > 0;
        let dct_reused = self.solver.as_ref().is_some_and(|s| s.scratch_bytes() > 0);
        let sol_reused = self.cache.is_some();
        let mut rho = ctx.lease("density.rho", self.grid().num_bins());
        self.charge_map_into(nl, p, &pool, &mut rho);
        // Reuse the previous solution's buffers as the solve target.
        let mut sol = self.cache.take().unwrap_or_default();
        if let Some(solver) = &mut self.solver {
            solver.solve_into(&rho, &mut sol);
            // Batched transforms accumulate a transpose/butterfly/twiddle
            // split inside the solve; mirror it into the op counters so the
            // run report can break transform time down by phase.
            let phases = solver.take_transform_phases();
            if phases.total_nanos() > 0 {
                ctx.record_op_nanos("density.dct.transpose", phases.transpose_nanos);
                ctx.record_op_nanos("density.dct.butterfly", phases.butterfly_nanos);
                ctx.record_op_nanos("density.dct.twiddle", phases.twiddle_nanos);
            }
        }
        let energy = sol.energy;
        ctx.note_workspace("density.bins", self.builder.bins_bytes(), bins_reused);
        ctx.note_workspace(
            "density.dct_scratch",
            self.solver.as_ref().map_or(0, |s| s.scratch_bytes()),
            dct_reused,
        );
        ctx.note_workspace("density.solution", sol.bytes(), sol_reused);
        self.cache = Some(sol);
        ctx.release("density.rho", rho);
        ctx.record_op("density.forward", t0);
        energy
    }

    fn backward(
        &mut self,
        nl: &Netlist<T>,
        p: &Placement<T>,
        grad: &mut Gradient<T>,
        ctx: &mut ExecCtx<T>,
    ) {
        if self.cache.is_none() {
            let _ = self.forward(nl, p, ctx);
        }
        let t0 = ctx.op_timer();
        let Some(sol) = self.cache.take() else {
            // Uniform-field mode never populates the cache: the force is
            // identically zero, so the gradient is untouched.
            return;
        };
        let pool = Arc::clone(ctx.pool());
        let grid = self.grid().clone();
        let n_mov = nl.num_movable();
        let inv_bin = T::ONE / grid.bin_area();
        let (bw, bh) = (grid.bin_width(), grid.bin_height());
        {
            let gx = DisjointSlice::new(&mut grad.x);
            let gy = DisjointSlice::new(&mut grad.y);
            let field_x = &sol.field_x;
            let field_y = &sol.field_y;
            let mask = self.mask.as_deref();
            pool.run(n_mov, pool.chunk_for(n_mov), |range| {
                for c in range {
                    if let Some(mask) = mask {
                        if !mask[c] {
                            continue;
                        }
                    }
                    let fp = smoothed_footprint(
                        p.x[c],
                        p.y[c],
                        nl.cell_widths()[c],
                        nl.cell_heights()[c],
                        &grid,
                    );
                    let (is, js) = grid.overlapped_bins(&fp.rect);
                    let mut fx = T::ZERO;
                    let mut fy = T::ZERO;
                    for i in is {
                        for j in js.clone() {
                            let a = grid.bin_rect(i, j).overlap_area(&fp.rect);
                            if a > T::ZERO {
                                let q = a * fp.scale * inv_bin;
                                let idx = grid.index(i, j);
                                fx += q * field_x[idx];
                                fy += q * field_y[idx];
                            }
                        }
                    }
                    // Gradient = -force; convert from bin units to layout
                    // units (one bin along x spans bin_width layout units).
                    // SAFETY: cell index `c` is unique to this chunk.
                    unsafe {
                        gx.write(c, gx.read(c) - fx / bw);
                        gy.write(c, gy.read(c) - fy / bh);
                    }
                }
            });
        }
        self.cache = Some(sol);
        ctx.record_op("density.backward", t0);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_autograd::ExecCtx;
    use dp_netlist::{NetlistBuilder, Rect};

    fn grid(m: usize) -> BinGrid<f64> {
        BinGrid::new(Rect::new(0.0, 0.0, 64.0, 64.0), m, m).expect("pow2")
    }

    fn two_cell_design() -> (Netlist<f64>, Placement<f64>) {
        let mut b = NetlistBuilder::new(0.0, 0.0, 64.0, 64.0);
        let a = b.add_movable_cell(8.0, 8.0);
        let c = b.add_movable_cell(8.0, 8.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        (nl, Placement::zeros(2))
    }

    #[test]
    fn overlapping_cells_repel() {
        let mut ctx = ExecCtx::serial();
        let (nl, mut p) = two_cell_design();
        // Slightly offset overlapping cells near the center.
        p.x = vec![30.0, 34.0];
        p.y = vec![32.0, 32.0];
        let mut op = DensityOp::new(grid(16), DensityStrategy::Sorted, 1.0).expect("plan");
        let mut g = Gradient::zeros(2);
        let energy = op.forward_backward(&nl, &p, &mut g, &mut ctx);
        assert!(energy > 0.0);
        // Gradient descent moves cells opposite the gradient: the left cell
        // must be pushed left (positive gradient) and the right cell right.
        assert!(g.x[0] > 0.0, "left cell gradient {:?}", g.x);
        assert!(g.x[1] < 0.0, "right cell gradient {:?}", g.x);
    }

    #[test]
    fn spread_cells_have_lower_energy() {
        let mut ctx = ExecCtx::serial();
        let (nl, mut p) = two_cell_design();
        let mut op = DensityOp::new(grid(16), DensityStrategy::Sorted, 1.0).expect("plan");
        p.x = vec![32.0, 32.0];
        p.y = vec![32.0, 32.0];
        let stacked = op.forward(&nl, &p, &mut ctx);
        p.x = vec![16.0, 48.0];
        let spread = op.forward(&nl, &p, &mut ctx);
        assert!(spread < stacked, "spread {spread} vs stacked {stacked}");
    }

    #[test]
    fn gradient_direction_matches_finite_differences() {
        let mut ctx = ExecCtx::serial();
        // The gathered force approximates the discrete cost's gradient; we
        // check directional agreement rather than exact equality.
        let (nl, mut p) = two_cell_design();
        p.x = vec![28.0, 36.0];
        p.y = vec![30.0, 34.0];
        let mut op = DensityOp::new(grid(16), DensityStrategy::Sorted, 1.0).expect("plan");
        let mut g = Gradient::zeros(2);
        let _ = op.forward_backward(&nl, &p, &mut g, &mut ctx);

        let eps = 0.5; // half a bin is a robust probe for the smoothed map
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for i in 0..2 {
            for axis in 0..2 {
                let coord = if axis == 0 { &mut p.x } else { &mut p.y };
                let orig = coord[i];
                coord[i] = orig + eps;
                let fp = op.forward(&nl, &p, &mut ctx);
                let coord = if axis == 0 { &mut p.x } else { &mut p.y };
                coord[i] = orig - eps;
                let fm = op.forward(&nl, &p, &mut ctx);
                let coord = if axis == 0 { &mut p.x } else { &mut p.y };
                coord[i] = orig;
                let fd = (fp - fm) / (2.0 * eps);
                let an = if axis == 0 { g.x[i] } else { g.y[i] };
                dot += fd * an;
                na += an * an;
                nb += fd * fd;
            }
        }
        let cosine = dot / (na.sqrt() * nb.sqrt());
        assert!(cosine > 0.95, "cosine similarity {cosine}");
    }

    #[test]
    fn overflow_decreases_when_spreading() {
        let mut ctx = ExecCtx::serial();
        let mut b = NetlistBuilder::new(0.0, 0.0, 64.0, 64.0);
        let cells: Vec<_> = (0..16).map(|_| b.add_movable_cell(8.0, 8.0)).collect();
        b.add_net(1.0, vec![(cells[0], 0.0, 0.0), (cells[1], 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut op = DensityOp::new(grid(16), DensityStrategy::Sorted, 1.0).expect("plan");

        let mut p = Placement::zeros(nl.num_cells());
        for i in 0..16 {
            p.x[i] = 32.0;
            p.y[i] = 32.0;
        }
        let stacked = op.overflow(&nl, &p, &mut ctx);
        for i in 0..16 {
            p.x[i] = 8.0 + 16.0 * (i % 4) as f64;
            p.y[i] = 8.0 + 16.0 * (i / 4) as f64;
        }
        let spread = op.overflow(&nl, &p, &mut ctx);
        assert!(stacked > 0.5, "stacked overflow {stacked}");
        assert!(spread < stacked * 0.2, "spread overflow {spread}");
    }

    #[test]
    fn fixed_macro_repels_movable_cell() {
        let mut ctx = ExecCtx::serial();
        let mut b = NetlistBuilder::new(0.0, 0.0, 64.0, 64.0);
        let a = b.add_movable_cell(4.0, 4.0);
        let c = b.add_movable_cell(4.0, 4.0);
        let f = b.add_fixed_cell(24.0, 24.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0), (f, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![20.0, 44.0, 32.0];
        p.y = vec![32.0, 32.0, 32.0]; // macro at center, cells at its flanks
        let mut op = DensityOp::new(grid(16), DensityStrategy::Sorted, 1.0).expect("plan");
        op.bake_fixed(&nl, &p);
        let mut g = Gradient::zeros(nl.num_cells());
        let _ = op.forward_backward(&nl, &p, &mut g, &mut ctx);
        // The macro pushes the left cell further left, the right cell right.
        assert!(g.x[0] > 0.0);
        assert!(g.x[1] < 0.0);
    }

    #[test]
    fn overflow_respects_fixed_capacity() {
        let mut ctx = ExecCtx::serial();
        let mut b = NetlistBuilder::new(0.0, 0.0, 64.0, 64.0);
        let a = b.add_movable_cell(8.0, 8.0);
        let c = b.add_movable_cell(8.0, 8.0);
        let f = b.add_fixed_cell(16.0, 16.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0), (f, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![32.0, 32.0, 32.0];
        p.y = vec![32.0, 32.0, 32.0]; // movable cells sit on the macro
        let mut with_fixed = DensityOp::new(grid(16), DensityStrategy::Sorted, 1.0).expect("plan");
        with_fixed.bake_fixed(&nl, &p);
        let mut without_fixed =
            DensityOp::new(grid(16), DensityStrategy::Sorted, 1.0).expect("plan");
        let tau_with = with_fixed.overflow(&nl, &p, &mut ctx);
        let tau_without = without_fixed.overflow(&nl, &p, &mut ctx);
        assert!(tau_with > tau_without, "{tau_with} vs {tau_without}");
    }

    #[test]
    #[should_panic(expected = "target density")]
    fn rejects_bad_target_density() {
        let _ = DensityOp::<f64>::new(grid(8), DensityStrategy::Naive, 0.0);
    }

    fn uniform_mode_case(mx: usize, my: usize) {
        let mut ctx = ExecCtx::serial();
        let (nl, mut p) = two_cell_design();
        p.x = vec![30.0, 34.0];
        p.y = vec![32.0, 32.0];
        let g = BinGrid::new(Rect::new(0.0, 0.0, 64.0, 64.0), mx, my).expect("degenerate shape");
        let mut op = DensityOp::new(g, DensityStrategy::Sorted, 1.0).expect("uniform mode");
        assert!(op.is_uniform_field(), "({mx},{my})");
        // Forward/backward are exact zeros — the field a sub-minimum grid
        // resolves is uniform — while overflow stays a real number.
        let mut grad = Gradient::zeros(2);
        let energy = op.forward_backward(&nl, &p, &mut grad, &mut ctx);
        assert_eq!(energy, 0.0, "({mx},{my})");
        assert!(grad.x.iter().chain(&grad.y).all(|&v| v == 0.0));
        let tau = op.overflow(&nl, &p, &mut ctx);
        assert!(tau.is_finite() && tau >= 0.0, "({mx},{my}): tau {tau}");
    }

    #[test]
    fn single_bin_grid_runs_in_uniform_field_mode() {
        uniform_mode_case(1, 1);
    }

    #[test]
    fn one_column_grid_runs_in_uniform_field_mode() {
        uniform_mode_case(1, 4);
    }

    #[test]
    fn one_row_grid_runs_in_uniform_field_mode() {
        uniform_mode_case(2, 1);
    }

    #[test]
    fn spectral_capable_grid_is_not_uniform_mode() {
        let g = BinGrid::new(Rect::new(0.0, 0.0, 64.0, 64.0), 2, 4).expect("minimal");
        let op = DensityOp::new(g, DensityStrategy::Sorted, 1.0).expect("plan");
        assert!(!op.is_uniform_field());
    }

    #[test]
    fn zero_movable_area_overflow_is_zero() {
        let mut ctx = ExecCtx::serial();
        // All-zero-area cells: every bin is empty and the normalizing area
        // is zero; the overflow must be 0, not NaN.
        let mut b = NetlistBuilder::new(0.0, 0.0, 64.0, 64.0);
        let a = b.add_movable_cell(0.0, 0.0);
        let c = b.add_movable_cell(0.0, 0.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(2);
        p.x = vec![32.0, 32.0];
        p.y = vec![32.0, 32.0];
        let mut op = DensityOp::new(grid(16), DensityStrategy::Sorted, 1.0).expect("plan");
        let tau = op.overflow(&nl, &p, &mut ctx);
        assert_eq!(tau, 0.0);
        // The energy of an empty charge map is finite (exactly zero).
        let mut g = Gradient::zeros(2);
        let energy = op.forward_backward(&nl, &p, &mut g, &mut ctx);
        assert!(energy.abs() < 1e-12, "energy {energy}");
        assert!(g.x.iter().chain(&g.y).all(|v| v.is_finite()));
    }
}
