//! Electrostatic density operator (paper §III-B, after ePlace).
//!
//! Cells are charges, the density penalty is the system's potential energy,
//! and the density gradient is the electric field: Poisson's equation
//! (paper Eq. (4)) is solved spectrally with the DCT family of [`dp_dct`]
//! (paper Eqs. (5) and (9)).
//!
//! The computation follows the paper's four steps (Fig. 4b):
//!
//! 1. **density map** — scatter cell areas into bins, a "dynamic bipartite
//!    graph forward" (§III-B1) with the load-balancing tricks of Fig. 6
//!    (sort cells by area, update one cell with multiple workers);
//! 2. **spectral coefficients** `a_{u,v}` via 2-D DCT;
//! 3. **potential** `psi` via 2-D IDCT (forward) or **field** `xi` via
//!    IDXST·IDCT / IDCT·IDXST (backward);
//! 4. **energy** `0.5 * sum rho * psi` (forward) or per-cell force gather,
//!    the "dynamic bipartite graph backward" (§III-B2).
//!
//! # Basis convention
//!
//! With the workspace DCT normalization (`idct2(dct2(rho)) == rho`), the
//! density expands exactly as
//! `rho(x, y) = sum_{u,v} a_{u,v} cos(w_u (x+1/2)) cos(w_v (y+1/2))`
//! with `w_u = pi u / M`. The Neumann-boundary Poisson solution is then
//! `psi = idct2(a / (w_u^2 + w_v^2))` (DC removed, paper Eq. (4c)) and the
//! field `xi_x = idxst_idct(a w_u / (w_u^2 + w_v^2))`, which is what
//! [`ElectroField`] computes.
//!
//! # Examples
//!
//! ```
//! use dp_autograd::{ExecCtx, Gradient, Operator};
//! use dp_density::{BinGrid, DensityOp, DensityStrategy};
//! use dp_netlist::{NetlistBuilder, Placement};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new(0.0, 0.0, 64.0, 64.0);
//! let a = b.add_movable_cell(4.0, 4.0);
//! let c = b.add_movable_cell(4.0, 4.0);
//! b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])?;
//! let nl = b.build()?;
//! let mut p = Placement::zeros(nl.num_cells());
//! p.x = vec![32.0, 32.0];
//! p.y = vec![32.0, 32.0]; // overlapping cells
//!
//! let grid = BinGrid::new(nl.region(), 16, 16)?;
//! let mut op = DensityOp::new(grid, DensityStrategy::Sorted, 1.0)?;
//! let mut ctx = ExecCtx::serial();
//! let mut g = Gradient::zeros(nl.num_cells());
//! let energy = op.forward_backward(&nl, &p, &mut g, &mut ctx);
//! assert!(energy > 0.0);
//! # Ok(())
//! # }
//! ```

// Library code must surface structured errors instead of panicking;
// tests opt out module-by-module.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod bins;
pub mod electro;
pub mod map;
pub mod op;

pub use bins::{BinGrid, GridError};
pub use electro::{DctBackendKind, ElectroField};
pub use map::{smoothed_footprint, DensityMapBuilder, DensityStrategy, Footprint};
pub use op::DensityOp;
