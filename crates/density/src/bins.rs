//! The bin grid discretizing the placement region.

use std::error::Error;
use std::fmt;

use dp_dct::TransformError;
use dp_netlist::Rect;
use dp_num::Float;

/// Error raised when constructing a [`BinGrid`].
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// The bin counts are unsupported by the fast-transform plans
    /// downstream.
    Transform(TransformError),
    /// The placement region has zero, negative, or non-finite extent:
    /// every bin would be zero-sized and bin lookups would divide by zero.
    DegenerateRegion {
        /// Region width in layout units.
        width: f64,
        /// Region height in layout units.
        height: f64,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Transform(e) => e.fmt(f),
            GridError::DegenerateRegion { width, height } => {
                write!(f, "placement region {width} x {height} has no area")
            }
        }
    }
}

impl Error for GridError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GridError::Transform(e) => Some(e),
            GridError::DegenerateRegion { .. } => None,
        }
    }
}

impl From<TransformError> for GridError {
    fn from(e: TransformError) -> Self {
        GridError::Transform(e)
    }
}

/// An `mx x my` grid of bins over the placement region.
///
/// Bin `(i, j)` covers `[xl + i*bw, xl + (i+1)*bw] x [yl + j*bh, ...]` and is
/// stored row-major with `i` (the x index) as dimension 1, matching the
/// layout the DCT plans expect.
///
/// # Examples
///
/// ```
/// use dp_netlist::Rect;
///
/// # fn main() -> Result<(), dp_density::GridError> {
/// let grid = dp_density::BinGrid::new(Rect::new(0.0f64, 0.0, 64.0, 32.0), 8, 4)?;
/// assert_eq!(grid.bin_width(), 8.0);
/// assert_eq!(grid.bin_height(), 8.0);
/// assert_eq!(grid.num_bins(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BinGrid<T> {
    region: Rect<T>,
    mx: usize,
    my: usize,
    bin_w: T,
    bin_h: T,
}

impl<T: Float> BinGrid<T> {
    /// Creates a grid with `mx x my` bins (both powers of two, down to a
    /// single bin per axis) over a region with positive area.
    ///
    /// Shapes below the spectral solver's minimum (`mx >= 2`, `my >= 4`)
    /// are accepted: [`BinGrid::supports_spectral_solve`] reports whether
    /// the fast-transform plans can run on this grid, and the density
    /// operator degrades to a uniform-field mode (zero field, zero energy)
    /// when they cannot — the physically correct answer for a density map
    /// the grid cannot resolve.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::Transform`] for non-power-of-two bin counts and
    /// [`GridError::DegenerateRegion`] when the region has no area (which
    /// would make every bin zero-sized).
    pub fn new(region: Rect<T>, mx: usize, my: usize) -> Result<Self, GridError> {
        if !mx.is_power_of_two() {
            return Err(TransformError::NonPowerOfTwo { n: mx }.into());
        }
        if !my.is_power_of_two() {
            return Err(TransformError::NonPowerOfTwo { n: my }.into());
        }
        let (w, h) = (region.width().to_f64(), region.height().to_f64());
        // The finiteness checks also reject NaN extents, which compare
        // false against everything.
        if !w.is_finite() || !h.is_finite() || w <= 0.0 || h <= 0.0 {
            return Err(GridError::DegenerateRegion {
                width: w,
                height: h,
            });
        }
        let bin_w = region.width() / T::from_usize(mx);
        let bin_h = region.height() / T::from_usize(my);
        Ok(Self {
            region,
            mx,
            my,
            bin_w,
            bin_h,
        })
    }

    /// The covered region.
    pub fn region(&self) -> Rect<T> {
        self.region
    }

    /// Bin count along x.
    pub fn mx(&self) -> usize {
        self.mx
    }

    /// Bin count along y.
    pub fn my(&self) -> usize {
        self.my
    }

    /// Total number of bins.
    pub fn num_bins(&self) -> usize {
        self.mx * self.my
    }

    /// Whether the fast-transform plans downstream support this shape
    /// (`mx >= 2` and `my >= 4`). Below that, the spectral Poisson solve
    /// cannot run and density operators fall back to a uniform field.
    pub fn supports_spectral_solve(&self) -> bool {
        self.mx >= 2 && self.my >= 4
    }

    /// Bin width in layout units.
    pub fn bin_width(&self) -> T {
        self.bin_w
    }

    /// Bin height in layout units.
    pub fn bin_height(&self) -> T {
        self.bin_h
    }

    /// Bin area in layout units.
    pub fn bin_area(&self) -> T {
        self.bin_w * self.bin_h
    }

    /// Flat index of bin `(i, j)`.
    #[inline]
    pub fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.mx && j < self.my);
        i * self.my + j
    }

    /// The rectangle of bin `(i, j)` in layout units.
    pub fn bin_rect(&self, i: usize, j: usize) -> Rect<T> {
        let xl = self.region.xl + self.bin_w * T::from_usize(i);
        let yl = self.region.yl + self.bin_h * T::from_usize(j);
        Rect::new(xl, yl, xl + self.bin_w, yl + self.bin_h)
    }

    /// Inclusive-exclusive bin index ranges `(i0..i1, j0..j1)` overlapped by
    /// `rect`, clamped to the grid; empty ranges when fully outside.
    pub fn overlapped_bins(
        &self,
        rect: &Rect<T>,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let to_ix = |x: T| ((x - self.region.xl) / self.bin_w).floor().to_f64();
        let to_jy = |y: T| ((y - self.region.yl) / self.bin_h).floor().to_f64();
        let i0 = to_ix(rect.xl).max(0.0) as usize;
        let j0 = to_jy(rect.yl).max(0.0) as usize;
        // ceil for the exclusive upper bound
        let i1 = (((rect.xh - self.region.xl) / self.bin_w)
            .ceil()
            .to_f64()
            .max(0.0) as usize)
            .min(self.mx);
        let j1 = (((rect.yh - self.region.yl) / self.bin_h)
            .ceil()
            .to_f64()
            .max(0.0) as usize)
            .min(self.my);
        (i0.min(self.mx)..i1, j0.min(self.my)..j1)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn grid() -> BinGrid<f64> {
        BinGrid::new(Rect::new(0.0, 0.0, 64.0, 64.0), 8, 8).expect("pow2")
    }

    #[test]
    fn rejects_non_power_of_two_dimensions() {
        let r = Rect::new(0.0f64, 0.0, 10.0, 10.0);
        assert!(BinGrid::new(r, 3, 8).is_err());
        assert!(BinGrid::new(r, 8, 6).is_err());
        assert!(BinGrid::new(r, 0, 8).is_err());
        assert!(BinGrid::new(r, 8, 0).is_err());
    }

    #[test]
    fn sub_spectral_shapes_build_but_report_no_solve_support() {
        // The formerly-erroring degenerate shapes: each builds into a
        // usable grid (overflow and bin lookups work) that reports the
        // spectral solve as unsupported.
        let r = Rect::new(0.0f64, 0.0, 10.0, 10.0);
        for (mx, my) in [(1, 1), (1, 4), (2, 1), (8, 2)] {
            let g = BinGrid::new(r, mx, my).unwrap_or_else(|e| panic!("({mx},{my}): {e}"));
            assert!(!g.supports_spectral_solve(), "({mx},{my})");
            assert_eq!(g.num_bins(), mx * my);
            let (is, js) = g.overlapped_bins(&Rect::new(1.0, 1.0, 9.0, 9.0));
            assert_eq!(is, 0..mx);
            assert_eq!(js, 0..my);
            let mut total = 0.0;
            for i in 0..g.mx() {
                for j in 0..g.my() {
                    total += g.bin_rect(i, j).area();
                }
            }
            assert!((total - r.area()).abs() < 1e-9, "({mx},{my})");
        }
        // The minimum spectral shape still reports support.
        let g = BinGrid::new(r, 2, 4).expect("minimal spectral shape");
        assert!(g.supports_spectral_solve());
    }

    #[test]
    fn rejects_degenerate_region() {
        // Zero-width, zero-height, and NaN extents all yield the typed
        // error instead of a grid with zero-sized bins. (The NaN rect is
        // built from raw fields; `Rect::new` already rejects it.)
        for r in [
            Rect::new(0.0f64, 0.0, 0.0, 10.0),
            Rect::new(0.0f64, 0.0, 10.0, 0.0),
            Rect {
                xl: 0.0f64,
                yl: 0.0,
                xh: f64::NAN,
                yh: 10.0,
            },
        ] {
            match BinGrid::new(r, 8, 8) {
                Err(GridError::DegenerateRegion { .. }) => {}
                other => panic!("expected DegenerateRegion, got {other:?}"),
            }
        }
    }

    #[test]
    fn bin_rect_tiles_region() {
        let g = grid();
        let mut total = 0.0;
        for i in 0..g.mx() {
            for j in 0..g.my() {
                total += g.bin_rect(i, j).area();
            }
        }
        assert!((total - g.region().area()).abs() < 1e-9);
    }

    #[test]
    fn overlapped_bins_cover_rect() {
        let g = grid();
        let r = Rect::new(10.0, 20.0, 30.0, 25.0);
        let (is, js) = g.overlapped_bins(&r);
        assert_eq!(is, 1..4); // bins [8,16),[16,24),[24,32)
        assert_eq!(js, 2..4); // bins [16,24),[24,32)
                              // sum of overlaps equals the rect area
        let mut sum = 0.0;
        for i in is.clone() {
            for j in js.clone() {
                sum += g.bin_rect(i, j).overlap_area(&r);
            }
        }
        assert!((sum - r.area()).abs() < 1e-9);
    }

    #[test]
    fn out_of_region_rect_yields_empty_ranges() {
        let g = grid();
        let r = Rect::new(100.0, 100.0, 110.0, 110.0);
        let (is, js) = g.overlapped_bins(&r);
        assert!(is.is_empty() && js.is_empty());
        let r = Rect::new(-20.0, -20.0, -10.0, -10.0);
        let (is, js) = g.overlapped_bins(&r);
        assert!(is.is_empty() || js.is_empty());
    }

    #[test]
    fn boundary_alignment() {
        let g = grid();
        // A rect exactly on bin boundaries overlaps exactly those bins.
        let r = Rect::new(8.0, 8.0, 16.0, 24.0);
        let (is, js) = g.overlapped_bins(&r);
        assert_eq!(is, 1..2);
        assert_eq!(js, 1..3);
    }
}
