//! Regression test: Abacus cluster snapping once drifted a cluster's end
//! past the room the segment's last cluster needed, and the right-edge
//! clamp then produced an overlap (found by the fig7 harness on the
//! adaptec3 preset at 1/128 scale with off-grid macro edges).

use dp_gp::{GlobalPlacer, GpConfig};
use dp_lg::{check_legal, Legalizer};

#[test]
fn abacus_respects_segment_room_with_offgrid_macros() {
    let preset = dp_gen::ispd2005_suite().remove(2).scaled_down(128);
    let d = preset.config.generate::<f64>().expect("generates");
    let mut cfg = GpConfig::auto(&d.netlist);
    cfg.init = dp_gp::InitKind::WirelengthOnly {
        iters: cfg.max_iters / 4,
    };
    cfg.tcad_mu_stabilization = false;
    cfg.wirelength = dp_gp::WirelengthModel::Wa(dp_wirelength::WaStrategy::NetByNet);
    let r = GlobalPlacer::new(cfg)
        .place(&d.netlist, &d.fixed_positions)
        .expect("gp converges");
    let mut p = r.placement;
    Legalizer::new()
        .legalize(&d.netlist, &mut p)
        .expect("legalizes");
    let report = check_legal(&d.netlist, &p);
    assert!(report.is_legal(), "{report:?}");
}
