//! Property-based tests of legalization.

use dp_gen::GeneratorConfig;
use dp_gp::initial_placement;
use dp_lg::{check_legal, Legalizer, RowSegments};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Full legalization always yields a legal placement, across design
    /// shapes, utilizations, macro counts, and noise levels.
    #[test]
    fn always_legal(
        seed in 0u64..10_000,
        cells in 60usize..250,
        util in 0.35f64..0.8,
        macros in 0usize..4,
        noise in 0.002f64..0.25,
    ) {
        let d = GeneratorConfig::new("prop", cells, cells + 20)
            .with_seed(seed)
            .with_utilization(util)
            .with_macros(macros, 0.12)
            .generate::<f64>()
            .expect("valid");
        let mut p = initial_placement(&d.netlist, &d.fixed_positions, noise, seed ^ 1);
        Legalizer::new().legalize(&d.netlist, &mut p).expect("fits");
        let report = check_legal(&d.netlist, &p);
        prop_assert!(report.is_legal(), "{report:?}");
    }

    /// Abacus refinement does not meaningfully increase displacement over
    /// Tetris alone and both stay legal.
    #[test]
    fn abacus_is_no_worse(seed in 0u64..10_000, cells in 60usize..200) {
        let d = GeneratorConfig::new("prop2", cells, cells + 20)
            .with_seed(seed)
            .with_utilization(0.5)
            .generate::<f64>()
            .expect("valid");
        let original = initial_placement(&d.netlist, &d.fixed_positions, 0.1, seed);

        let mut tetris_only = original.clone();
        let s1 = Legalizer::new().without_abacus().legalize(&d.netlist, &mut tetris_only)
            .expect("fits");
        let mut full = original.clone();
        let s2 = Legalizer::new().legalize(&d.netlist, &mut full).expect("fits");

        prop_assert!(check_legal(&d.netlist, &tetris_only).is_legal());
        prop_assert!(check_legal(&d.netlist, &full).is_legal());
        prop_assert!(
            s2.avg_displacement <= s1.avg_displacement * 1.10 + 1.0,
            "abacus {} vs tetris {}",
            s2.avg_displacement,
            s1.avg_displacement
        );
    }

    /// Segment capacity is conserved: total free width never exceeds the
    /// region minus blockages, and legalized cells fit inside it.
    #[test]
    fn segment_capacity_accounting(seed in 0u64..10_000, macros in 0usize..5) {
        let d = GeneratorConfig::new("prop3", 120, 140)
            .with_seed(seed)
            .with_macros(macros, 0.15)
            .with_utilization(0.45)
            .generate::<f64>()
            .expect("valid");
        let p = initial_placement(&d.netlist, &d.fixed_positions, 0.05, seed);
        let rows = d.netlist.rows().expect("rows").clone();
        let segs = RowSegments::build(&d.netlist, &p, &rows);
        let capacity = segs.total_capacity();
        let region_area = d.netlist.region().area();
        prop_assert!(capacity <= region_area + 1e-6);
        prop_assert!(capacity >= d.netlist.total_movable_area());
    }
}
