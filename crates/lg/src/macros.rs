//! Movable-macro legalization for mixed-size designs (the ePlace-MS
//! setting the paper's lineage covers).
//!
//! Multi-row movable cells are legalized *before* the standard cells:
//! sorted by area (largest first), each macro snaps to the row/site grid
//! and, if that spot is taken, searches outward over grid candidates for
//! the nearest position free of fixed cells, the region boundary, and
//! already-legalized macros. Legalized macros then become blockages for
//! the Tetris/Abacus standard-cell passes.

use dp_netlist::{Netlist, Placement, Rect, RowGrid};
use dp_num::Float;

use crate::{LgError, LgStage};

/// Indices of movable cells taller than one row.
pub fn movable_macros<T: Float>(nl: &Netlist<T>, rows: &RowGrid<T>) -> Vec<usize> {
    let row_h = rows.row_height();
    (0..nl.num_movable())
        .filter(|&c| nl.cell_heights()[c] > row_h + T::from_f64(1e-9))
        .collect()
}

/// Legalizes the movable macros in place and returns their final
/// rectangles (to be treated as blockages by the standard-cell passes).
///
/// # Errors
///
/// Returns [`LgError::OutOfCapacity`] if a macro fits nowhere within the
/// region (it never overlaps fixed cells or other macros on success).
pub fn legalize_macros<T: Float>(
    nl: &Netlist<T>,
    placement: &mut Placement<T>,
    rows: &RowGrid<T>,
    macros: &[usize],
) -> Result<Vec<Rect<T>>, LgError> {
    let region = nl.region();
    let row_h = rows.row_height();
    let site = rows.rows().first().map(|r| r.site_width).unwrap_or(T::ONE);
    let y0 = rows.rows().first().map(|r| r.y).unwrap_or(region.yl);

    // Obstacles: fixed cells (clipped to region).
    let mut placed: Vec<Rect<T>> = (nl.num_movable()..nl.num_cells())
        .map(|i| {
            Rect::from_center(
                placement.x[i],
                placement.y[i],
                nl.cell_widths()[i],
                nl.cell_heights()[i],
            )
        })
        .collect();

    // Largest macros first: they have the fewest candidate spots.
    // Non-finite areas compare `Equal` (order then doesn't matter; such a
    // macro fails its ring search and is reported as out of capacity).
    let mut order = macros.to_vec();
    order.sort_by(|&a, &b| {
        let area = |c: usize| nl.cell_widths()[c] * nl.cell_heights()[c];
        area(b)
            .partial_cmp(&area(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut results = Vec::with_capacity(order.len());
    for &c in &order {
        let w = nl.cell_widths()[c];
        let h = nl.cell_heights()[c];
        // Desired lower-left, snapped to the row/site grid and clamped.
        let snap = |x: T, y: T| -> (T, T) {
            let sx = region.xl + ((x - region.xl) / site).round() * site;
            let sy = y0 + ((y - y0) / row_h).round() * row_h;
            (
                sx.clamp(region.xl, (region.xh - w).max(region.xl)),
                sy.clamp(region.yl, (region.yh - h).max(region.yl)),
            )
        };
        let (dx, dy) = snap(placement.x[c] - w * T::HALF, placement.y[c] - h * T::HALF);

        // Expanding ring search over the (site*4, row) candidate grid.
        let step_x = site * T::from_f64(4.0);
        let step_y = row_h;
        let max_ring = {
            let nx = (region.width() / step_x).to_f64() as i64 + 2;
            let ny = (region.height() / step_y).to_f64() as i64 + 2;
            nx.max(ny)
        };
        let mut found = None;
        'search: for ring in 0..max_ring {
            for kx in -ring..=ring {
                for ky in -ring..=ring {
                    if kx.abs().max(ky.abs()) != ring {
                        continue; // ring boundary only
                    }
                    let (x, y) = snap(
                        dx + step_x * T::from_f64(kx as f64),
                        dy + step_y * T::from_f64(ky as f64),
                    );
                    let rect = Rect::new(x, y, x + w, y + h);
                    if rect.xh > region.xh + T::from_f64(1e-9)
                        || rect.yh > region.yh + T::from_f64(1e-9)
                    {
                        continue;
                    }
                    if placed.iter().all(|o| !rect.intersects(o)) {
                        found = Some(rect);
                        break 'search;
                    }
                }
            }
        }
        let rect = found.ok_or(LgError::OutOfCapacity {
            cell: c,
            stage: LgStage::Macros,
            placed: results.len(),
        })?;
        placement.x[c] = (rect.xl + rect.xh) * T::HALF;
        placement.y[c] = (rect.yl + rect.yh) * T::HALF;
        placed.push(rect);
        results.push(rect);
    }
    Ok(results)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::NetlistBuilder;

    fn mixed_netlist() -> (Netlist<f64>, Placement<f64>) {
        let rows = RowGrid::uniform(0.0, 0.0, 100.0, 64.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 100.0, 64.0).with_rows(rows);
        let m1 = b.add_movable_cell(24.0, 32.0); // 4-row macro
        let m2 = b.add_movable_cell(24.0, 32.0);
        let s1 = b.add_movable_cell(4.0, 8.0);
        let f = b.add_fixed_cell(20.0, 16.0);
        b.add_net(1.0, vec![(m1, 0.0, 0.0), (s1, 0.0, 0.0)])
            .expect("valid");
        b.add_net(1.0, vec![(m2, 0.0, 0.0), (f, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x[3] = 50.0;
        p.y[3] = 32.0; // fixed macro at center
        (nl, p)
    }

    #[test]
    fn identifies_movable_macros() {
        let (nl, _) = mixed_netlist();
        let rows = nl.rows().expect("rows").clone();
        assert_eq!(movable_macros(&nl, &rows), vec![0, 1]);
    }

    #[test]
    fn overlapping_macros_separate_and_snap() {
        let (nl, mut p) = mixed_netlist();
        // Both macros dumped at the same spot, overlapping the fixed cell.
        p.x[0] = 50.0;
        p.y[0] = 32.0;
        p.x[1] = 50.0;
        p.y[1] = 32.0;
        let rows = nl.rows().expect("rows").clone();
        let rects = legalize_macros(&nl, &mut p, &rows, &[0, 1]).expect("fits");
        assert_eq!(rects.len(), 2);
        // No pairwise overlaps, including with the fixed macro.
        let fixed = Rect::from_center(p.x[3], p.y[3], 20.0, 16.0);
        assert!(!rects[0].intersects(&rects[1]));
        assert!(!rects[0].intersects(&fixed));
        assert!(!rects[1].intersects(&fixed));
        // Row-aligned and inside the region.
        for r in &rects {
            assert!((r.yl / 8.0).fract().abs() < 1e-9, "{r:?}");
            assert!(r.xl >= -1e-9 && r.xh <= 100.0 + 1e-9);
            assert!(r.yl >= -1e-9 && r.yh <= 64.0 + 1e-9);
        }
    }

    #[test]
    fn impossible_fit_is_reported() {
        let rows = RowGrid::uniform(0.0, 0.0, 30.0, 32.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 30.0, 32.0).with_rows(rows);
        let m1 = b.add_movable_cell(25.0, 32.0);
        let m2 = b.add_movable_cell(25.0, 32.0); // two cannot coexist
        b.add_net(1.0, vec![(m1, 0.0, 0.0), (m2, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        let rows = nl.rows().expect("rows").clone();
        let err = legalize_macros(&nl, &mut p, &rows, &[0, 1]).unwrap_err();
        assert!(matches!(err, LgError::OutOfCapacity { .. }));
    }
}
