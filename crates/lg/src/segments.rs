//! Row segments: the free intervals of each row after subtracting fixed
//! macros.

use dp_netlist::{Netlist, Placement, Rect, RowGrid};
use dp_num::Float;

/// A free interval of one row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment<T> {
    /// Row index in the grid.
    pub row: usize,
    /// Bottom y of the row.
    pub y: T,
    /// Left edge of the free interval.
    pub xl: T,
    /// Right edge of the free interval.
    pub xh: T,
    /// Site width for snapping.
    pub site_width: T,
}

impl<T: Float> Segment<T> {
    /// Usable width.
    pub fn width(&self) -> T {
        self.xh - self.xl
    }

    /// Snaps a lower-left x into the segment on the site grid.
    pub fn snap(&self, x: T, cell_w: T) -> T {
        let hi = (self.xh - cell_w).max(self.xl);
        let rel = ((x - self.xl) / self.site_width).round();
        (self.xl + rel * self.site_width).clamp(self.xl, hi)
    }
}

/// All free segments of the design, indexed per row.
///
/// # Examples
///
/// ```
/// use dp_gen::GeneratorConfig;
/// use dp_lg::RowSegments;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = GeneratorConfig::new("demo", 64, 70).with_macros(2, 0.2).generate::<f64>()?;
/// let rows = d.netlist.rows().expect("rows attached").clone();
/// let segs = RowSegments::build(&d.netlist, &d.fixed_positions, &rows);
/// assert!(segs.total_capacity() > d.netlist.total_movable_area());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RowSegments<T> {
    per_row: Vec<Vec<Segment<T>>>,
    row_height: T,
    yl: T,
}

impl<T: Float> RowSegments<T> {
    /// Computes free segments by subtracting fixed-cell rectangles from the
    /// rows.
    pub fn build(nl: &Netlist<T>, placement: &Placement<T>, rows: &RowGrid<T>) -> Self {
        Self::build_with_blockages(nl, placement, rows, &[])
    }

    /// Like [`RowSegments::build`], additionally subtracting `extra`
    /// rectangles (legalized movable macros in mixed-size flows).
    pub fn build_with_blockages(
        nl: &Netlist<T>,
        placement: &Placement<T>,
        rows: &RowGrid<T>,
        extra: &[Rect<T>],
    ) -> Self {
        let mut blockages: Vec<Rect<T>> = (nl.num_movable()..nl.num_cells())
            .map(|i| {
                Rect::from_center(
                    placement.x[i],
                    placement.y[i],
                    nl.cell_widths()[i],
                    nl.cell_heights()[i],
                )
            })
            .collect();
        blockages.extend_from_slice(extra);

        let per_row = rows
            .rows()
            .iter()
            .enumerate()
            .map(|(ri, row)| {
                // Collect blocked x-intervals for this row.
                let mut blocked: Vec<(T, T)> = blockages
                    .iter()
                    .filter(|b| b.yl < row.y + row.height && b.yh > row.y)
                    .map(|b| (b.xl.max(row.xl), b.xh.min(row.xh)))
                    .filter(|(l, h)| h > l)
                    .collect();
                // Non-finite blockage edges compare `Equal`; the resulting
                // segments are still well-formed for finite rows.
                blocked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                let mut segments = Vec::new();
                let mut cursor = row.xl;
                for (l, h) in blocked {
                    if l > cursor {
                        segments.push(Segment {
                            row: ri,
                            y: row.y,
                            xl: cursor,
                            xh: l,
                            site_width: row.site_width,
                        });
                    }
                    cursor = cursor.max(h);
                }
                if cursor < row.xh {
                    segments.push(Segment {
                        row: ri,
                        y: row.y,
                        xl: cursor,
                        xh: row.xh,
                        site_width: row.site_width,
                    });
                }
                segments
            })
            .collect();
        Self {
            per_row,
            row_height: rows.row_height(),
            yl: rows.rows().first().map(|r| r.y).unwrap_or(T::ZERO),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.per_row.len()
    }

    /// Common row height.
    pub fn row_height(&self) -> T {
        self.row_height
    }

    /// Segments of row `r`.
    pub fn row(&self, r: usize) -> &[Segment<T>] {
        &self.per_row[r]
    }

    /// Index of the row nearest to a lower-left y.
    pub fn nearest_row(&self, y: T) -> usize {
        let idx = ((y - self.yl) / self.row_height).round().to_f64().max(0.0) as usize;
        idx.min(self.per_row.len().saturating_sub(1))
    }

    /// Total free width times row height over all segments.
    pub fn total_capacity(&self) -> T {
        self.per_row
            .iter()
            .flatten()
            .map(|s| s.width() * self.row_height)
            .sum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::{NetlistBuilder, RowGrid};

    fn netlist_with_macro() -> (Netlist<f64>, Placement<f64>) {
        let rows = RowGrid::uniform(0.0, 0.0, 100.0, 40.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 100.0, 40.0).with_rows(rows);
        let a = b.add_movable_cell(4.0, 8.0);
        let c = b.add_movable_cell(4.0, 8.0);
        let m = b.add_fixed_cell(20.0, 16.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0), (m, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x[2] = 50.0;
        p.y[2] = 16.0; // macro spans x [40,60], y [8,24]
        (nl, p)
    }

    #[test]
    fn macro_splits_covered_rows() {
        let (nl, p) = netlist_with_macro();
        let rows = nl.rows().expect("attached").clone();
        let segs = RowSegments::build(&nl, &p, &rows);
        assert_eq!(segs.num_rows(), 5);
        // Rows 1 and 2 (y=8,16) are split into two segments each.
        for r in [1usize, 2] {
            let s = segs.row(r);
            assert_eq!(s.len(), 2, "row {r}: {s:?}");
            assert_eq!(s[0].xh, 40.0);
            assert_eq!(s[1].xl, 60.0);
        }
        // Row 0 and rows 3,4 are untouched.
        assert_eq!(segs.row(0).len(), 1);
        assert_eq!(segs.row(4).len(), 1);
    }

    #[test]
    fn capacity_excludes_blockage() {
        let (nl, p) = netlist_with_macro();
        let rows = nl.rows().expect("attached").clone();
        let segs = RowSegments::build(&nl, &p, &rows);
        // total = 100*40 - 20*16 = 4000 - 320
        assert!((segs.total_capacity() - 3680.0).abs() < 1e-9);
    }

    #[test]
    fn snapping_stays_inside() {
        let seg = Segment {
            row: 0,
            y: 0.0f64,
            xl: 10.0,
            xh: 20.0,
            site_width: 1.0,
        };
        assert_eq!(seg.snap(14.3, 4.0), 14.0);
        assert_eq!(seg.snap(19.0, 4.0), 16.0);
        assert_eq!(seg.snap(-5.0, 4.0), 10.0);
    }

    #[test]
    fn nearest_row_clamps() {
        let (nl, p) = netlist_with_macro();
        let rows = nl.rows().expect("attached").clone();
        let segs = RowSegments::build(&nl, &p, &rows);
        assert_eq!(segs.nearest_row(-100.0), 0);
        assert_eq!(segs.nearest_row(100.0), 4);
        assert_eq!(segs.nearest_row(12.1), 2); // 12.1/8 rounds to 2
    }
}
