//! Legalization (paper §III-E).
//!
//! DREAMPlace legalizes in two stages, both reproduced here:
//!
//! 1. a **Tetris-like greedy pass** (after NTUplace3): cells are processed
//!    in x order and packed into the nearest row segment with free space;
//! 2. **Abacus row-based refinement** (Spindler et al.): within each row,
//!    cells are re-placed by the classic cluster-collapse dynamic program
//!    that minimizes total squared displacement from the global-placement
//!    locations without overlaps.
//!
//! Fixed macros carve rows into segments; both stages operate per segment.
//! Mixed-size designs are supported: movable multi-row macros are legalized
//! first (nearest row/site-aligned overlap-free spot, [`legalize_macros`])
//! and become blockages for the standard-cell passes.
//!
//! The paper notes this step runs in seconds on CPU even for million-cell
//! designs, and Table II shows it ~10x faster than the NTUplace3 legalizer
//! used in the RePlAce flow.
//!
//! # Examples
//!
//! ```
//! use dp_gen::GeneratorConfig;
//! use dp_gp::initial_placement;
//! use dp_lg::{check_legal, Legalizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = GeneratorConfig::new("demo", 200, 220).generate::<f64>()?;
//! let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.02, 1);
//! let stats = Legalizer::new().legalize(&d.netlist, &mut p)?;
//! assert!(stats.max_displacement >= 0.0);
//! assert!(check_legal(&d.netlist, &p).is_legal());
//! # Ok(())
//! # }
//! ```

pub mod abacus;
pub mod legality;
pub mod macros;
pub mod segments;
pub mod tetris;

pub use abacus::abacus_refine;
pub use legality::{check_legal, LegalityReport};
pub use macros::{legalize_macros, movable_macros};
pub use segments::{RowSegments, Segment};
pub use tetris::tetris_pass;

use std::error::Error;
use std::fmt;
use std::time::Instant;

use dp_netlist::{Netlist, Placement};
use dp_num::Float;

/// Error raised by legalization.
#[derive(Debug, Clone, PartialEq)]
pub enum LgError {
    /// The netlist carries no row grid.
    MissingRows,
    /// A cell could not be placed in any row segment (no free capacity).
    OutOfCapacity {
        /// Offending cell index.
        cell: usize,
    },
}

impl fmt::Display for LgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LgError::MissingRows => write!(f, "netlist has no row grid attached"),
            LgError::OutOfCapacity { cell } => {
                write!(f, "no row segment can host cell {cell}")
            }
        }
    }
}

impl Error for LgError {}

/// Displacement statistics of a legalization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LgStats {
    /// Mean L1 displacement of movable cells from their GP locations.
    pub avg_displacement: f64,
    /// Maximum L1 displacement.
    pub max_displacement: f64,
    /// Wall-clock seconds.
    pub runtime: f64,
}

/// The two-stage legalizer; see the [crate docs](self).
#[derive(Debug, Clone, Default)]
pub struct Legalizer {
    skip_abacus: bool,
}

impl Legalizer {
    /// Creates the default two-stage legalizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Disables the Abacus refinement (Tetris only) — used by ablation
    /// benches.
    pub fn without_abacus(mut self) -> Self {
        self.skip_abacus = true;
        self
    }

    /// Legalizes `placement` in place.
    ///
    /// # Errors
    ///
    /// See [`LgError`].
    pub fn legalize<T: Float>(
        &self,
        nl: &Netlist<T>,
        placement: &mut Placement<T>,
    ) -> Result<LgStats, LgError> {
        let t0 = Instant::now();
        let rows = nl.rows().ok_or(LgError::MissingRows)?.clone();
        let original = placement.clone();

        // Mixed-size support: legalize multi-row movable macros first; they
        // then act as blockages for the standard-cell passes.
        let macros = macros::movable_macros(nl, &rows);
        let macro_rects = macros::legalize_macros(nl, placement, &rows, &macros)?;
        let segments = RowSegments::build_with_blockages(nl, placement, &rows, &macro_rects);

        let assignment = tetris_pass(nl, placement, &segments)?;
        if !self.skip_abacus {
            abacus_refine(nl, &original, placement, &segments, &assignment);
        }

        let mut total = 0.0;
        let mut max_d: f64 = 0.0;
        let n = nl.num_movable();
        for i in 0..n {
            let d = (placement.x[i] - original.x[i]).abs().to_f64()
                + (placement.y[i] - original.y[i]).abs().to_f64();
            total += d;
            max_d = max_d.max(d);
        }
        Ok(LgStats {
            avg_displacement: total / n.max(1) as f64,
            max_displacement: max_d,
            runtime: t0.elapsed().as_secs_f64(),
        })
    }
}
