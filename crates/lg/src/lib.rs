//! Legalization (paper §III-E).
//!
//! DREAMPlace legalizes in two stages, both reproduced here:
//!
//! 1. a **Tetris-like greedy pass** (after NTUplace3): cells are processed
//!    in x order and packed into the nearest row segment with free space;
//! 2. **Abacus row-based refinement** (Spindler et al.): within each row,
//!    cells are re-placed by the classic cluster-collapse dynamic program
//!    that minimizes total squared displacement from the global-placement
//!    locations without overlaps.
//!
//! Fixed macros carve rows into segments; both stages operate per segment.
//! Mixed-size designs are supported: movable multi-row macros are legalized
//! first (nearest row/site-aligned overlap-free spot, [`legalize_macros`])
//! and become blockages for the standard-cell passes.
//!
//! The refinement stage is guarded: if Abacus fails (non-finite state) or
//! blows past a configured displacement budget, the legalizer reverts to
//! the Tetris result — which is already legal — and records the fallback in
//! [`LgStats::fallback`] instead of erroring out.
//!
//! The paper notes this step runs in seconds on CPU even for million-cell
//! designs, and Table II shows it ~10x faster than the NTUplace3 legalizer
//! used in the RePlAce flow.
//!
//! # Examples
//!
//! ```
//! use dp_gen::GeneratorConfig;
//! use dp_gp::initial_placement;
//! use dp_lg::{check_legal, Legalizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = GeneratorConfig::new("demo", 200, 220).generate::<f64>()?;
//! let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.02, 1);
//! let stats = Legalizer::new().legalize(&d.netlist, &mut p)?;
//! assert!(stats.max_displacement >= 0.0);
//! assert!(stats.fallback.is_none());
//! assert!(check_legal(&d.netlist, &p).is_legal());
//! # Ok(())
//! # }
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod abacus;
pub mod legality;
pub mod macros;
pub mod segments;
pub mod tetris;

pub use abacus::abacus_refine;
pub use legality::{check_legal, LegalityReport};
pub use macros::{legalize_macros, movable_macros};
pub use segments::{RowSegments, Segment};
pub use tetris::tetris_pass;

use std::error::Error;
use std::fmt;
use std::time::Instant;

use dp_netlist::{Netlist, Placement};
use dp_num::Float;

/// The legalization stage an error originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LgStage {
    /// Movable-macro pre-legalization.
    Macros,
    /// The Tetris-like greedy pass.
    Tetris,
    /// The Abacus cluster-collapse refinement.
    Abacus,
}

impl fmt::Display for LgStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LgStage::Macros => write!(f, "macro legalization"),
            LgStage::Tetris => write!(f, "tetris pass"),
            LgStage::Abacus => write!(f, "abacus refinement"),
        }
    }
}

/// Error raised by legalization.
///
/// Each variant names the stage it came from and, for capacity failures,
/// how far that stage got — mirroring `GpError::Diverged`'s best-so-far
/// context so callers can log a one-line diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub enum LgError {
    /// The netlist carries no row grid.
    MissingRows,
    /// A cell could not be placed in any row segment (no free capacity).
    OutOfCapacity {
        /// Offending cell index.
        cell: usize,
        /// Stage that ran out of room.
        stage: LgStage,
        /// Cells the stage had successfully placed before failing.
        placed: usize,
    },
    /// A stage produced or encountered non-finite coordinates (or an
    /// internally inconsistent state caused by them, such as a chosen
    /// position not matching any free gap).
    NonFinite {
        /// Stage that hit the non-finite state.
        stage: LgStage,
    },
}

impl fmt::Display for LgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LgError::MissingRows => write!(f, "netlist has no row grid attached"),
            LgError::OutOfCapacity {
                cell,
                stage,
                placed,
            } => {
                write!(
                    f,
                    "{stage}: no row segment can host cell {cell} ({placed} cells placed)"
                )
            }
            LgError::NonFinite { stage } => {
                write!(f, "{stage}: non-finite coordinates encountered")
            }
        }
    }
}

impl Error for LgError {}

/// Fallback taken by the guarded legalizer (recorded, not an error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LgFallback {
    /// Abacus refinement failed; the Tetris result was kept.
    AbacusFailed,
    /// Abacus refinement exceeded the displacement budget without
    /// improving on Tetris; the Tetris result was kept.
    DisplacementExceeded,
}

impl fmt::Display for LgFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LgFallback::AbacusFailed => write!(f, "abacus failed; kept tetris result"),
            LgFallback::DisplacementExceeded => {
                write!(f, "abacus exceeded displacement budget; kept tetris result")
            }
        }
    }
}

/// Fault injection for exercising the legalizer's degradation ladder in
/// tests. Off by default; never set in production flows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LgFaultInjection {
    /// Forces the Abacus stage to report failure, exercising the
    /// revert-to-Tetris fallback.
    pub fail_abacus: bool,
}

/// Displacement statistics of a legalization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LgStats {
    /// Mean L1 displacement of movable cells from their GP locations.
    pub avg_displacement: f64,
    /// Maximum L1 displacement.
    pub max_displacement: f64,
    /// Wall-clock seconds.
    pub runtime: f64,
    /// Fallback taken by the stage guard, if any (`None` on the clean
    /// path).
    pub fallback: Option<LgFallback>,
}

/// The two-stage legalizer; see the [crate docs](self).
#[derive(Debug, Clone, Default)]
pub struct Legalizer {
    skip_abacus: bool,
    max_displacement: Option<f64>,
    fault_injection: LgFaultInjection,
    telemetry: dp_telemetry::Telemetry,
}

impl Legalizer {
    /// Creates the default two-stage legalizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Disables the Abacus refinement (Tetris only) — used by ablation
    /// benches.
    pub fn without_abacus(mut self) -> Self {
        self.skip_abacus = true;
        self
    }

    /// Sets a displacement budget: if Abacus ends with a maximum L1
    /// displacement above `limit` (and worse than Tetris), the result is
    /// reverted to the Tetris pass and
    /// [`LgFallback::DisplacementExceeded`] is recorded.
    pub fn with_max_displacement(mut self, limit: f64) -> Self {
        self.max_displacement = Some(limit);
        self
    }

    /// Installs fault injection (tests only).
    pub fn with_fault_injection(mut self, fi: LgFaultInjection) -> Self {
        self.fault_injection = fi;
        self
    }

    /// Attaches a telemetry sink: each legalization phase (macros, tetris,
    /// abacus) is recorded as a kernel span, and the stage-guard fallbacks
    /// become `degradation` timeline events.
    pub fn with_telemetry(mut self, telemetry: dp_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Legalizes `placement` in place.
    ///
    /// The Tetris result is snapshotted before Abacus refinement; if the
    /// refinement fails or violates the displacement budget, the snapshot
    /// is restored and the fallback recorded in [`LgStats::fallback`] —
    /// the call still succeeds with a legal placement.
    ///
    /// # Errors
    ///
    /// See [`LgError`].
    pub fn legalize<T: Float>(
        &self,
        nl: &Netlist<T>,
        placement: &mut Placement<T>,
    ) -> Result<LgStats, LgError> {
        let t0 = Instant::now();
        let rows = nl.rows().ok_or(LgError::MissingRows)?.clone();
        let original = placement.clone();

        // Mixed-size support: legalize multi-row movable macros first; they
        // then act as blockages for the standard-cell passes.
        let macros = macros::movable_macros(nl, &rows);
        let macro_rects = {
            let _k = self.telemetry.kernel_span("lg.macros");
            macros::legalize_macros(nl, placement, &rows, &macros)?
        };
        let segments = RowSegments::build_with_blockages(nl, placement, &rows, &macro_rects);

        let assignment = {
            let _k = self.telemetry.kernel_span("lg.tetris");
            tetris_pass(nl, placement, &segments)?
        };

        let max_disp = |p: &Placement<T>| -> f64 {
            let mut max_d: f64 = 0.0;
            for i in 0..nl.num_movable() {
                let d = (p.x[i] - original.x[i]).abs().to_f64()
                    + (p.y[i] - original.y[i]).abs().to_f64();
                max_d = max_d.max(d);
            }
            max_d
        };

        let mut fallback = None;
        if !self.skip_abacus {
            let tetris_snapshot = placement.clone();
            let refined = {
                let _k = self.telemetry.kernel_span("lg.abacus");
                if self.fault_injection.fail_abacus {
                    Err(LgError::NonFinite {
                        stage: LgStage::Abacus,
                    })
                } else {
                    abacus_refine(nl, &original, placement, &segments, &assignment)
                }
            };
            match refined {
                Ok(()) => {
                    if let Some(limit) = self.max_displacement {
                        let refined_d = max_disp(placement);
                        if refined_d > limit && refined_d > max_disp(&tetris_snapshot) {
                            *placement = tetris_snapshot;
                            fallback = Some(LgFallback::DisplacementExceeded);
                            self.telemetry.point(
                                "degradation",
                                format!(
                                    "lg: abacus displacement {refined_d:.3} over budget {limit:.3} -> tetris result"
                                ),
                            );
                        }
                    }
                }
                Err(e) => {
                    *placement = tetris_snapshot;
                    fallback = Some(LgFallback::AbacusFailed);
                    self.telemetry
                        .point("degradation", format!("lg: abacus failed ({e}) -> tetris result"));
                }
            }
        }

        let mut total = 0.0;
        let mut max_d: f64 = 0.0;
        let n = nl.num_movable();
        for i in 0..n {
            let d = (placement.x[i] - original.x[i]).abs().to_f64()
                + (placement.y[i] - original.y[i]).abs().to_f64();
            total += d;
            max_d = max_d.max(d);
        }
        Ok(LgStats {
            avg_displacement: total / n.max(1) as f64,
            max_displacement: max_d,
            runtime: t0.elapsed().as_secs_f64(),
            fallback,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_gen::GeneratorConfig;
    use dp_gp::initial_placement;

    fn placed_design() -> (Netlist<f64>, Placement<f64>) {
        let d = GeneratorConfig::new("guard", 150, 160)
            .with_seed(12)
            .with_utilization(0.5)
            .generate::<f64>()
            .expect("ok");
        let p = initial_placement(&d.netlist, &d.fixed_positions, 0.05, 3);
        (d.netlist, p)
    }

    #[test]
    fn injected_abacus_failure_falls_back_to_tetris() {
        let (nl, p0) = placed_design();
        let mut faulted = p0.clone();
        let stats = Legalizer::new()
            .with_fault_injection(LgFaultInjection { fail_abacus: true })
            .legalize(&nl, &mut faulted)
            .expect("fallback keeps the run alive");
        assert_eq!(stats.fallback, Some(LgFallback::AbacusFailed));
        assert!(check_legal(&nl, &faulted).is_legal());

        // The fallback result is exactly the Tetris-only placement.
        let mut tetris_only = p0;
        Legalizer::new()
            .without_abacus()
            .legalize(&nl, &mut tetris_only)
            .expect("fits");
        assert_eq!(faulted.x, tetris_only.x);
        assert_eq!(faulted.y, tetris_only.y);
    }

    #[test]
    fn displacement_budget_reverts_to_tetris() {
        let (nl, p0) = placed_design();
        // An impossible budget forces the revert; tetris can't do better
        // than itself, so the gate only triggers when abacus is worse.
        let mut p = p0.clone();
        let stats = Legalizer::new()
            .with_max_displacement(0.0)
            .legalize(&nl, &mut p)
            .expect("fits");
        if stats.fallback == Some(LgFallback::DisplacementExceeded) {
            let mut tetris_only = p0;
            Legalizer::new()
                .without_abacus()
                .legalize(&nl, &mut tetris_only)
                .expect("fits");
            assert_eq!(p.x, tetris_only.x);
        }
        assert!(check_legal(&nl, &p).is_legal());
    }

    #[test]
    fn clean_path_records_no_fallback() {
        let (nl, mut p) = placed_design();
        let stats = Legalizer::new().legalize(&nl, &mut p).expect("fits");
        assert!(stats.fallback.is_none());
        assert!(check_legal(&nl, &p).is_legal());
    }

    #[test]
    fn error_display_names_stage_and_progress() {
        let e = LgError::OutOfCapacity {
            cell: 7,
            stage: LgStage::Tetris,
            placed: 42,
        };
        let s = e.to_string();
        assert!(s.contains("tetris"), "{s}");
        assert!(s.contains("cell 7"), "{s}");
        assert!(s.contains("42"), "{s}");
        let s = LgError::NonFinite {
            stage: LgStage::Abacus,
        }
        .to_string();
        assert!(s.contains("abacus"), "{s}");
    }
}
