//! The Tetris-like greedy legalization pass (first stage, after
//! NTUplace3's legalizer).
//!
//! Movable cells are processed in x order; each is placed into the free gap
//! (across nearby rows) that minimizes its displacement, and the gap is
//! split. Unlike a pure left-to-right cursor, gap lists stay robust when
//! the incoming placement is heavily clustered (e.g. when legalizing an
//! early, unspread placement).

use dp_netlist::{Netlist, Placement};
use dp_num::Float;

use crate::segments::RowSegments;
use crate::{LgError, LgStage};

/// Per-cell segment assignment produced by the greedy pass:
/// `(row index, segment index within row)` for each movable cell.
pub type Assignment = Vec<(usize, usize)>;

/// Sorted list of free gaps `[lo, hi)` within one segment.
#[derive(Debug, Clone)]
struct GapList<T> {
    gaps: Vec<(T, T)>,
}

impl<T: Float> GapList<T> {
    fn new(lo: T, hi: T) -> Self {
        Self {
            gaps: vec![(lo, hi)],
        }
    }

    /// Best placement for a cell of width `w` desiring lower-left `x`:
    /// `(cost_x, x_placed, gap_index)`; `None` when nothing fits.
    fn best(&self, desired: T, w: T) -> Option<(T, T, usize)> {
        if self.gaps.is_empty() {
            return None;
        }
        // Binary search for the gap whose start is nearest to desired.
        let mut idx = self
            .gaps
            .partition_point(|&(lo, _)| lo <= desired)
            .saturating_sub(0);
        idx = idx.saturating_sub(1);
        let mut best: Option<(T, T, usize)> = None;
        let eps = T::from_f64(1e-9);
        // Expand outward from idx; stop a side once even the gap edge
        // distance exceeds the best cost.
        let try_gap = |k: usize, best: &mut Option<(T, T, usize)>| -> T {
            let (lo, hi) = self.gaps[k];
            let edge_dist = if desired < lo {
                lo - desired
            } else if desired > hi {
                desired - hi
            } else {
                T::ZERO
            };
            if hi - lo + eps >= w {
                let x = desired.clamp(lo, hi - w);
                let cost = (x - desired).abs();
                if best.is_none_or(|(c, ..)| cost < c) {
                    *best = Some((cost, x, k));
                }
            }
            edge_dist
        };
        let mut left = idx as isize;
        let mut right = idx + 1;
        loop {
            let mut progressed = false;
            if left >= 0 {
                let d = try_gap(left as usize, &mut best);
                if best.is_none_or(|(c, ..)| d <= c) {
                    left -= 1;
                    progressed = true;
                } else {
                    left = -1;
                }
            }
            if right < self.gaps.len() {
                let d = try_gap(right, &mut best);
                if best.is_none_or(|(c, ..)| d <= c) {
                    right += 1;
                    progressed = true;
                } else {
                    right = self.gaps.len();
                }
            }
            if !progressed || (left < 0 && right >= self.gaps.len()) {
                break;
            }
        }
        best
    }

    /// Occupies `[x, x + w)` inside gap `k`, splitting it.
    fn occupy(&mut self, k: usize, x: T, w: T) {
        let (lo, hi) = self.gaps[k];
        let eps = T::from_f64(1e-9);
        let left = (x - lo) > eps;
        let right = (hi - (x + w)) > eps;
        match (left, right) {
            (true, true) => {
                self.gaps[k] = (lo, x);
                self.gaps.insert(k + 1, (x + w, hi));
            }
            (true, false) => self.gaps[k] = (lo, x),
            (false, true) => self.gaps[k] = (x + w, hi),
            (false, false) => {
                self.gaps.remove(k);
            }
        }
    }
}

/// Runs the greedy pass; `placement` is updated to legalized locations
/// (cell centers). Returns the per-cell segment assignment for the Abacus
/// refinement.
///
/// # Errors
///
/// Returns [`LgError::OutOfCapacity`] if some cell fits in no segment.
pub fn tetris_pass<T: Float>(
    nl: &Netlist<T>,
    placement: &mut Placement<T>,
    segments: &RowSegments<T>,
) -> Result<Assignment, LgError> {
    let n = nl.num_movable();
    let row_h = segments.row_height();

    let mut gaps: Vec<Vec<GapList<T>>> = (0..segments.num_rows())
        .map(|r| {
            segments
                .row(r)
                .iter()
                .map(|s| GapList::new(s.xl, s.xh))
                .collect()
        })
        .collect();

    // Process large cells first within the x sweep: sort by x, tie-break by
    // descending width so wide cells grab contiguous space early. Non-finite
    // coordinates compare `Equal` to keep the sort total; such cells then
    // fail gap lookup and surface as a typed error below.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        placement.x[a]
            .partial_cmp(&placement.x[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                nl.cell_widths()[b]
                    .partial_cmp(&nl.cell_widths()[a])
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });

    let mut assignment = vec![(usize::MAX, usize::MAX); n];
    let mut placed = 0usize;
    for &cell in &order {
        // Multi-row movable cells (mixed-size macros) are legalized by the
        // macro pass and already act as blockages here.
        if nl.cell_heights()[cell] > row_h + T::from_f64(1e-9) {
            continue;
        }
        let w = nl.cell_widths()[cell];
        let desired_x = placement.x[cell] - w * T::HALF;
        let desired_y = placement.y[cell] - nl.cell_heights()[cell] * T::HALF;
        let home = segments.nearest_row(desired_y);

        let mut best: Option<(T, usize, usize, T)> = None; // (cost,row,seg,x)
        let num_rows = segments.num_rows();
        for dist in 0..num_rows {
            let candidates: Vec<usize> = if dist == 0 {
                vec![home]
            } else {
                let mut v = Vec::with_capacity(2);
                if home >= dist {
                    v.push(home - dist);
                }
                if home + dist < num_rows {
                    v.push(home + dist);
                }
                v
            };
            if candidates.is_empty() && home + dist >= num_rows && home < dist {
                break;
            }
            let row_cost = T::from_usize(dist) * row_h;
            if let Some((best_cost, ..)) = best {
                if row_cost >= best_cost {
                    break;
                }
            }
            for row in candidates {
                for (si, seg) in segments.row(row).iter().enumerate() {
                    if let Some((cost_x, x, _)) = gaps[row][si].best(desired_x, w) {
                        let x = seg.snap(x, w);
                        // Re-validate after snapping against the chosen gap
                        // via a fresh lookup (snap may cross a gap edge).
                        if let Some((cost2, x2, _)) = gaps[row][si].best(x, w) {
                            let x_final = if cost2 <= T::from_f64(1e-9) { x } else { x2 };
                            let cost =
                                (x_final - desired_x).abs().max(cost_x) + (seg.y - desired_y).abs();
                            if best.is_none_or(|(c, ..)| cost < c) {
                                best = Some((cost, row, si, x_final));
                            }
                        }
                    }
                }
            }
        }

        let (_, row, si, x) = best.ok_or(LgError::OutOfCapacity {
            cell,
            stage: LgStage::Tetris,
            placed,
        })?;
        // Find and occupy the gap containing x. The chosen position comes
        // from a gap lookup, so a miss here means the coordinates degraded
        // (NaN never lands in a gap) — report rather than panic.
        let k = gaps[row][si]
            .gaps
            .iter()
            .position(|&(lo, hi)| x >= lo - T::from_f64(1e-9) && x + w <= hi + T::from_f64(1e-9))
            .ok_or(LgError::NonFinite {
                stage: LgStage::Tetris,
            })?;
        gaps[row][si].occupy(k, x, w);
        let seg = segments.row(row)[si];
        placement.x[cell] = x + w * T::HALF;
        placement.y[cell] = seg.y + nl.cell_heights()[cell] * T::HALF;
        assignment[cell] = (row, si);
        placed += 1;
    }
    Ok(assignment)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::legality::check_legal;
    use dp_gen::GeneratorConfig;
    use dp_gp::initial_placement;

    #[test]
    fn packs_without_overlap() {
        let d = GeneratorConfig::new("t", 150, 160)
            .with_seed(2)
            .with_utilization(0.5)
            .generate::<f64>()
            .expect("ok");
        let rows = d.netlist.rows().expect("attached").clone();
        let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.05, 3);
        let segs = RowSegments::build(&d.netlist, &p, &rows);
        let assignment = tetris_pass(&d.netlist, &mut p, &segs).expect("fits");
        assert!(assignment.iter().all(|&(r, _)| r != usize::MAX));
        let report = check_legal(&d.netlist, &p);
        assert!(report.is_legal(), "{report:?}");
    }

    #[test]
    fn handles_center_clustered_input_at_high_utilization() {
        // All cells start near the center; gap lists must still use the
        // whole row capacity (a naive cursor would run out).
        let d = GeneratorConfig::new("t", 400, 420)
            .with_seed(6)
            .with_utilization(0.85)
            .generate::<f64>()
            .expect("ok");
        let rows = d.netlist.rows().expect("attached").clone();
        let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.001, 3);
        let segs = RowSegments::build(&d.netlist, &p, &rows);
        tetris_pass(&d.netlist, &mut p, &segs).expect("fits at 85% utilization");
        let report = check_legal(&d.netlist, &p);
        assert!(report.is_legal(), "{report:?}");
    }

    #[test]
    fn respects_macro_blockages() {
        let d = GeneratorConfig::new("t", 100, 110)
            .with_seed(4)
            .with_macros(2, 0.25)
            .with_utilization(0.4)
            .generate::<f64>()
            .expect("ok");
        let rows = d.netlist.rows().expect("attached").clone();
        let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.05, 3);
        let segs = RowSegments::build(&d.netlist, &p, &rows);
        tetris_pass(&d.netlist, &mut p, &segs).expect("fits");
        let report = check_legal(&d.netlist, &p);
        assert!(report.is_legal(), "{report:?}");
    }

    #[test]
    fn errors_when_design_cannot_fit() {
        use dp_netlist::{NetlistBuilder, RowGrid};
        let rows = RowGrid::uniform(0.0, 0.0, 10.0, 8.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 10.0, 8.0).with_rows(rows);
        let a = b.add_movable_cell(7.0, 8.0);
        let c = b.add_movable_cell(7.0, 8.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(2);
        p.x = vec![5.0, 5.0];
        p.y = vec![4.0, 4.0];
        let segs = RowSegments::build(&nl, &p, nl.rows().expect("attached"));
        let err = tetris_pass(&nl, &mut p, &segs).unwrap_err();
        assert!(matches!(err, LgError::OutOfCapacity { .. }));
    }

    #[test]
    fn gap_list_split_and_exhaust() {
        let mut g = GapList::new(0.0f64, 10.0);
        let (c, x, k) = g.best(4.0, 2.0).expect("fits");
        assert_eq!((c, x, k), (0.0, 4.0, 0));
        g.occupy(0, 4.0, 2.0);
        assert_eq!(g.gaps, vec![(0.0, 4.0), (6.0, 10.0)]);
        // A 5-wide cell no longer fits anywhere.
        assert!(g.best(0.0, 5.0).is_none());
        // Fill the left gap fully.
        g.occupy(0, 0.0, 4.0);
        assert_eq!(g.gaps, vec![(6.0, 10.0)]);
    }
}
