//! Abacus row-based legalization refinement (Spindler et al., ISPD'08).
//!
//! Within each row segment, cells keep the left-to-right order chosen by
//! the greedy pass but are re-placed by the classic cluster-collapse
//! dynamic program, minimizing total squared displacement from the
//! global-placement locations subject to no overlap.

use dp_netlist::{Netlist, Placement};
use dp_num::Float;

use crate::segments::{RowSegments, Segment};
use crate::tetris::Assignment;
use crate::{LgError, LgStage};

/// One Abacus cluster: a maximal group of touching cells placed optimally
/// as a block.
struct Cluster<T> {
    /// First cell index (into the segment's cell list).
    first: usize,
    /// One past the last cell index.
    last: usize,
    /// Total weight `e` (cell areas).
    e: T,
    /// Weighted optimal-position numerator `q`.
    q: T,
    /// Total width.
    w: T,
}

impl<T: Float> Cluster<T> {
    fn position(&self, seg: &Segment<T>) -> T {
        let hi = (seg.xh - self.w).max(seg.xl);
        (self.q / self.e).clamp(seg.xl, hi)
    }
}

/// Refines `placement` per segment. `original` supplies the target
/// (global placement) locations; `assignment` maps each movable cell to its
/// segment from the greedy pass.
///
/// # Errors
///
/// Returns [`LgError::NonFinite`] if the refinement would emit non-finite
/// coordinates (e.g. seeded by non-finite GP targets); `placement` should
/// then be considered corrupted and restored from a snapshot by the
/// caller, as [`crate::Legalizer::legalize`] does.
pub fn abacus_refine<T: Float>(
    nl: &Netlist<T>,
    original: &Placement<T>,
    placement: &mut Placement<T>,
    segments: &RowSegments<T>,
    assignment: &Assignment,
) -> Result<(), LgError> {
    // Group cells per (row, segment).
    let mut groups: std::collections::HashMap<(usize, usize), Vec<usize>> =
        std::collections::HashMap::new();
    for (cell, &(r, s)) in assignment.iter().enumerate() {
        if r != usize::MAX {
            groups.entry((r, s)).or_default().push(cell);
        }
    }

    for ((row, si), mut cells) in groups {
        let seg = segments.row(row)[si];
        // Keep the greedy pass's order (current x) for stability. The
        // coordinates come out of the greedy pass, so ties/incomparable
        // values can only appear on corrupted input; `Equal` keeps the
        // sort total and the corruption is caught by the finiteness check
        // below.
        cells.sort_by(|&a, &b| {
            placement.x[a]
                .partial_cmp(&placement.x[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Desired lower-left positions from the original GP locations.
        let desired: Vec<T> = cells
            .iter()
            .map(|&c| original.x[c] - nl.cell_widths()[c] * T::HALF)
            .collect();
        let widths: Vec<T> = cells.iter().map(|&c| nl.cell_widths()[c]).collect();
        // The cluster weight divides the optimal position q/e; clamp
        // zero-area cells to a tiny positive weight so a degenerate cell
        // cannot poison the whole cluster with NaN. No-op for real cells.
        let weights: Vec<T> = cells
            .iter()
            .map(|&c| (nl.cell_widths()[c] * nl.cell_heights()[c]).max(T::from_f64(1e-12)))
            .collect();

        // Cluster-collapse DP.
        let mut clusters: Vec<Cluster<T>> = Vec::new();
        for i in 0..cells.len() {
            let mut c = Cluster {
                first: i,
                last: i + 1,
                e: weights[i],
                q: weights[i] * desired[i],
                w: widths[i],
            };
            // Collapse while overlapping the previous cluster.
            while let Some(prev) = clusters.pop() {
                if prev.position(&seg) + prev.w > c.position(&seg) + T::from_f64(1e-9) {
                    c = Cluster {
                        first: prev.first,
                        last: c.last,
                        e: prev.e + c.e,
                        q: prev.q + c.q - c.e * prev.w,
                        w: prev.w + c.w,
                    };
                } else {
                    clusters.push(prev);
                    break;
                }
            }
            clusters.push(c);
        }

        // Emit positions in two passes. Snapping can drift cluster starts
        // rightward past the room the later clusters need, so the greedy
        // left-to-right pass only enforces non-overlap (allowing a right
        // overhang), and a right-to-left repair pass pulls everything back
        // inside the segment; total cluster width fits by construction, so
        // the repair never pushes below `seg.xl`.
        let mut starts: Vec<T> = Vec::with_capacity(clusters.len());
        let mut prev_end = seg.xl;
        for c in &clusters {
            let x = seg.snap(c.position(&seg), c.w).max(prev_end);
            starts.push(x);
            prev_end = x + c.w;
        }
        let mut limit = seg.xh;
        for (x, c) in starts.iter_mut().zip(&clusters).rev() {
            if *x + c.w > limit {
                *x = (limit - c.w).max(seg.xl);
            }
            limit = *x;
        }
        for (x0, c) in starts.iter().zip(&clusters) {
            let mut x = *x0;
            for k in c.first..c.last {
                let cell = cells[k];
                placement.x[cell] = x + widths[k] * T::HALF;
                placement.y[cell] = seg.y + nl.cell_heights()[cell] * T::HALF;
                x += widths[k];
            }
        }
    }

    // Guard: non-finite GP targets propagate through q/e into emitted
    // positions. Report instead of handing downstream stages NaN.
    for (cell, &(r, _)) in assignment.iter().enumerate() {
        if r != usize::MAX && (!placement.x[cell].is_finite() || !placement.y[cell].is_finite()) {
            return Err(LgError::NonFinite {
                stage: LgStage::Abacus,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::legality::check_legal;
    use crate::tetris::tetris_pass;
    use dp_gen::GeneratorConfig;
    use dp_gp::initial_placement;
    use dp_netlist::{NetlistBuilder, RowGrid};

    /// Hand-checkable case from the Abacus paper style: three cells wanting
    /// the same spot end up packed around it.
    #[test]
    fn clusters_spread_around_common_target() {
        let rows = RowGrid::uniform(0.0, 0.0, 100.0, 8.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 100.0, 8.0).with_rows(rows);
        let cells: Vec<_> = (0..3).map(|_| b.add_movable_cell(10.0, 8.0)).collect();
        b.add_net(1.0, cells.iter().map(|&c| (c, 0.0, 0.0)).collect())
            .expect("valid");
        let nl = b.build().expect("valid");
        // All three want lower-left x = 45 (center 50).
        let mut original = Placement::zeros(3);
        original.x = vec![50.0, 50.0, 50.0];
        original.y = vec![4.0, 4.0, 4.0];
        let mut p = original.clone();
        // Perturb order slightly so the greedy pass has a deterministic sort.
        p.x = vec![49.9, 50.0, 50.1];
        let segs = RowSegments::build(&nl, &p, nl.rows().expect("attached"));
        let assignment = tetris_pass(&nl, &mut p, &segs).expect("fits");
        abacus_refine(&nl, &original, &mut p, &segs, &assignment).expect("finite");
        // Optimal cluster start minimizes sum (x + 10k - 45)^2 over k=0..2,
        // giving x = 45 - 10 = 35 and cells at 35/45/55.
        let lls: Vec<f64> = (0..3).map(|i| p.x[i] - 5.0).collect();
        let mut sorted = lls.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!((sorted[0] - 35.0).abs() <= 1.0, "{sorted:?}");
        assert!((sorted[1] - 45.0).abs() <= 1.0, "{sorted:?}");
        assert!((sorted[2] - 55.0).abs() <= 1.0, "{sorted:?}");
        assert!(check_legal(&nl, &p).is_legal());
    }

    #[test]
    fn refinement_never_hurts_displacement_much_and_stays_legal() {
        let d = GeneratorConfig::new("t", 200, 210)
            .with_seed(8)
            .with_utilization(0.55)
            .generate::<f64>()
            .expect("ok");
        let rows = d.netlist.rows().expect("attached").clone();
        let original = initial_placement(&d.netlist, &d.fixed_positions, 0.05, 3);
        let mut tetris_only = original.clone();
        let segs = RowSegments::build(&d.netlist, &original, &rows);
        let assignment = tetris_pass(&d.netlist, &mut tetris_only, &segs).expect("fits");

        let mut refined = tetris_only.clone();
        abacus_refine(&d.netlist, &original, &mut refined, &segs, &assignment).expect("finite");
        assert!(check_legal(&d.netlist, &refined).is_legal());

        let disp = |p: &Placement<f64>| -> f64 {
            (0..d.netlist.num_movable())
                .map(|i| (p.x[i] - original.x[i]).abs() + (p.y[i] - original.y[i]).abs())
                .sum()
        };
        // Abacus minimizes squared x displacement per segment; allow a
        // small slack for site snapping but expect no blow-up.
        assert!(disp(&refined) <= disp(&tetris_only) * 1.05 + 1.0);
    }

    /// Zero-area cells used to zero the cluster weight `e`, making the
    /// optimal position `q/e` NaN and poisoning every cell in the cluster.
    #[test]
    fn zero_area_cells_do_not_produce_nan() {
        let rows = RowGrid::uniform(0.0, 0.0, 100.0, 8.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 100.0, 8.0).with_rows(rows);
        let a = b.add_movable_cell(10.0, 8.0);
        let z = b.add_movable_cell(0.0, 8.0); // zero width => zero area
        let c = b.add_movable_cell(10.0, 8.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (z, 0.0, 0.0), (c, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut original = Placement::zeros(3);
        original.x = vec![50.0, 50.0, 50.0];
        original.y = vec![4.0, 4.0, 4.0];
        let mut p = original.clone();
        p.x = vec![49.9, 50.0, 50.1];
        let segs = RowSegments::build(&nl, &p, nl.rows().expect("attached"));
        let assignment = tetris_pass(&nl, &mut p, &segs).expect("fits");
        abacus_refine(&nl, &original, &mut p, &segs, &assignment).expect("no NaN");
        assert!(p.x.iter().chain(p.y.iter()).all(|v| v.is_finite()));
    }

    /// A NaN GP target must not poison the emitted positions: the snap
    /// pass's `max(prev_end)` absorbs the NaN cluster position and the
    /// final guard verifies every emitted coordinate is finite.
    #[test]
    fn non_finite_targets_do_not_poison_output() {
        let d = GeneratorConfig::new("t", 60, 70)
            .with_seed(9)
            .with_utilization(0.4)
            .generate::<f64>()
            .expect("ok");
        let rows = d.netlist.rows().expect("attached").clone();
        let mut original = initial_placement(&d.netlist, &d.fixed_positions, 0.05, 3);
        let mut p = original.clone();
        let segs = RowSegments::build(&d.netlist, &p, &rows);
        let assignment = tetris_pass(&d.netlist, &mut p, &segs).expect("fits");
        original.x[0] = f64::NAN;
        abacus_refine(&d.netlist, &original, &mut p, &segs, &assignment)
            .expect("NaN target absorbed, output finite");
        assert!(p.x.iter().chain(p.y.iter()).all(|v| v.is_finite()));
        assert!(check_legal(&d.netlist, &p).is_legal());
    }
}
