//! Legality checking: overlaps, row alignment, region containment.

use dp_netlist::{Netlist, Placement, Rect};
use dp_num::Float;

/// Result of a legality check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LegalityReport {
    /// Pairs of movable cells (or movable-fixed pairs) whose interiors
    /// overlap.
    pub overlaps: usize,
    /// Movable cells whose bottom edge is not on a row boundary.
    pub off_row: usize,
    /// Movable cells extending outside the placement region.
    pub out_of_region: usize,
    /// Movable cells not aligned to the site grid (informational; not part
    /// of [`LegalityReport::is_legal`] because macros may sit off-grid and
    /// shift segment boundaries).
    pub off_site: usize,
}

impl LegalityReport {
    /// `true` when there are no overlaps, off-row cells, or out-of-region
    /// cells.
    pub fn is_legal(&self) -> bool {
        self.overlaps == 0 && self.off_row == 0 && self.out_of_region == 0
    }
}

/// Checks a placement for legality (O(n log n) sweep by row).
///
/// # Examples
///
/// See the crate-level example.
pub fn check_legal<T: Float>(nl: &Netlist<T>, p: &Placement<T>) -> LegalityReport {
    let mut report = LegalityReport::default();
    let eps = 1e-6;
    let region = nl.region();

    let rects: Vec<Rect<T>> = (0..nl.num_cells())
        .map(|i| Rect::from_center(p.x[i], p.y[i], nl.cell_widths()[i], nl.cell_heights()[i]))
        .collect();

    // Row / site / region checks.
    if let Some(rows) = nl.rows() {
        let row_h = rows.row_height().to_f64();
        let y0 = rows.rows().first().map(|r| r.y.to_f64()).unwrap_or(0.0);
        for rect in rects.iter().take(nl.num_movable()) {
            let yl = rect.yl.to_f64();
            let rel = (yl - y0) / row_h;
            if (rel - rel.round()).abs() > eps {
                report.off_row += 1;
            }
            if let Some(row) = rows.row_of_y(rect.yl) {
                let r = rows.rows()[row];
                let sx = ((rect.xl - r.xl) / r.site_width).to_f64();
                if (sx - sx.round()).abs() > eps {
                    report.off_site += 1;
                }
            }
        }
    }
    for rect in rects.iter().take(nl.num_movable()) {
        if rect.xl.to_f64() < region.xl.to_f64() - eps
            || rect.xh.to_f64() > region.xh.to_f64() + eps
            || rect.yl.to_f64() < region.yl.to_f64() - eps
            || rect.yh.to_f64() > region.yh.to_f64() + eps
        {
            report.out_of_region += 1;
        }
    }

    // Overlaps: bucket cells by bottom y (row), sweep each bucket by x.
    let mut by_band: std::collections::HashMap<i64, Vec<usize>> = std::collections::HashMap::new();
    let band = nl
        .rows()
        .map(|rw| rw.row_height().to_f64())
        .unwrap_or(1.0)
        .max(1e-9);
    for (i, r) in rects.iter().enumerate() {
        // Fixed macros can span several bands; register in each.
        let lo = (r.yl.to_f64() / band).floor() as i64;
        let hi = ((r.yh.to_f64() - 1e-9) / band).floor() as i64;
        for b in lo..=hi {
            by_band.entry(b).or_default().push(i);
        }
    }
    let mut counted = std::collections::HashSet::new();
    for (_, mut bucket) in by_band {
        // Non-finite coordinates compare `Equal`; the sweep still counts
        // their overlaps (overlap_area of a NaN rect is 0, so corrupted
        // cells show up via the bounds check instead).
        bucket.sort_by(|&a, &b| {
            rects[a]
                .xl
                .partial_cmp(&rects[b].xl)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for k in 0..bucket.len() {
            let a = bucket[k];
            for &b in &bucket[k + 1..] {
                if rects[b].xl.to_f64() >= rects[a].xh.to_f64() - eps {
                    break;
                }
                // Skip fixed-fixed pairs; only movable placement is judged.
                if a >= nl.num_movable() && b >= nl.num_movable() {
                    continue;
                }
                let ov = rects[a].overlap_area(&rects[b]).to_f64();
                if ov > eps && counted.insert((a.min(b), a.max(b))) {
                    report.overlaps += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::{NetlistBuilder, RowGrid};

    fn netlist() -> Netlist<f64> {
        let rows = RowGrid::uniform(0.0, 0.0, 40.0, 16.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 40.0, 16.0).with_rows(rows);
        let a = b.add_movable_cell(4.0, 8.0);
        let c = b.add_movable_cell(4.0, 8.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .expect("valid");
        b.build().expect("valid")
    }

    #[test]
    fn legal_placement_passes() {
        let nl = netlist();
        let mut p = Placement::zeros(2);
        p.x = vec![2.0, 10.0];
        p.y = vec![4.0, 4.0];
        let r = check_legal(&nl, &p);
        assert!(r.is_legal(), "{r:?}");
        assert_eq!(r.off_site, 0);
    }

    #[test]
    fn overlap_detected() {
        let nl = netlist();
        let mut p = Placement::zeros(2);
        p.x = vec![2.0, 4.0];
        p.y = vec![4.0, 4.0];
        let r = check_legal(&nl, &p);
        assert_eq!(r.overlaps, 1);
        assert!(!r.is_legal());
    }

    #[test]
    fn off_row_detected() {
        let nl = netlist();
        let mut p = Placement::zeros(2);
        p.x = vec![2.0, 10.0];
        p.y = vec![5.5, 4.0];
        let r = check_legal(&nl, &p);
        assert_eq!(r.off_row, 1);
    }

    #[test]
    fn out_of_region_detected() {
        let nl = netlist();
        let mut p = Placement::zeros(2);
        p.x = vec![-2.0, 10.0];
        p.y = vec![4.0, 4.0];
        let r = check_legal(&nl, &p);
        assert_eq!(r.out_of_region, 1);
    }

    #[test]
    fn touching_cells_are_legal() {
        let nl = netlist();
        let mut p = Placement::zeros(2);
        p.x = vec![2.0, 6.0]; // [0,4] and [4,8]
        p.y = vec![4.0, 4.0];
        let r = check_legal(&nl, &p);
        assert!(r.is_legal(), "{r:?}");
    }

    #[test]
    fn off_site_is_informational() {
        let nl = netlist();
        let mut p = Placement::zeros(2);
        p.x = vec![2.25, 10.0];
        p.y = vec![4.0, 4.0];
        let r = check_legal(&nl, &p);
        assert_eq!(r.off_site, 1);
        assert!(r.is_legal());
    }
}
