//! Property-based tests of the optimizers on random convex quadratics.

use dp_optim::{Adam, ConjugateGradient, NesterovOptimizer, Optimizer, SgdMomentum};
use proptest::prelude::*;

/// A random diagonal quadratic `f(p) = sum c_i (p_i - t_i)^2` with bounded
/// condition number, plus its optimum.
fn quad(curvatures: Vec<f64>, targets: Vec<f64>) -> impl FnMut(&[f64], &mut [f64]) -> f64 {
    move |p: &[f64], g: &mut [f64]| {
        let mut cost = 0.0;
        for i in 0..p.len() {
            let d = p[i] - targets[i];
            cost += curvatures[i] * d * d;
            g[i] = 2.0 * curvatures[i] * d;
        }
        cost
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Every engine strictly decreases a convex quadratic from any start
    /// (comparing cost after a burst of iterations to the initial cost).
    #[test]
    fn engines_descend(
        curvatures in proptest::collection::vec(0.5f64..4.0, 3..6),
        targets in proptest::collection::vec(-5.0f64..5.0, 6),
        start in proptest::collection::vec(-10.0f64..10.0, 6),
    ) {
        let n = curvatures.len();
        let targets = targets[..n].to_vec();
        let start = start[..n].to_vec();

        let engines: Vec<Box<dyn Optimizer<f64>>> = vec![
            Box::new(NesterovOptimizer::new(n, 0.05)),
            Box::new(Adam::new(n, 0.1)),
            Box::new(SgdMomentum::new(n, 0.02)),
            Box::new(ConjugateGradient::new(n, 0.05)),
        ];
        for mut engine in engines {
            let mut f = quad(curvatures.clone(), targets.clone());
            let mut p = start.clone();
            let mut g = vec![0.0; n];
            let initial = f(&p, &mut g);
            prop_assume!(initial > 1e-6);
            for _ in 0..150 {
                engine.step(&mut f, &mut p);
            }
            let final_cost = f(&p, &mut g);
            prop_assert!(
                final_cost < initial * 0.5,
                "{} stalled: {initial} -> {final_cost}",
                engine.name()
            );
        }
    }

    /// Nesterov's Lipschitz backtracking keeps steps bounded by the true
    /// inverse curvature scale, whatever the initial step.
    #[test]
    fn nesterov_step_is_tamed(initial_step in 0.001f64..100.0, curv in 1.0f64..100.0) {
        let mut f = move |p: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * curv * p[0];
            curv * p[0] * p[0]
        };
        let mut opt = NesterovOptimizer::new(1, initial_step);
        let mut p = vec![1.0];
        for _ in 0..5 {
            let info = opt.step(&mut f, &mut p);
            // Inverse Lipschitz constant of the gradient is 1/(2 curv).
            prop_assert!(info.step_size <= 2.0 / curv, "step {} curv {curv}", info.step_size);
        }
    }

    /// `snapshot -> restore` is an exact round-trip for all four engines:
    /// restoring mid-run state reproduces the uninterrupted trajectory
    /// bit-for-bit, from any random quadratic and any split point.
    #[test]
    fn snapshot_restore_is_exact_roundtrip(
        curvatures in proptest::collection::vec(0.5f64..4.0, 4),
        targets in proptest::collection::vec(-5.0f64..5.0, 4),
        warmup in 1usize..12,
        tail in 1usize..12,
    ) {
        let n = curvatures.len();
        let engines: Vec<Box<dyn Optimizer<f64>>> = vec![
            Box::new(NesterovOptimizer::new(n, 0.05)),
            Box::new(Adam::new(n, 0.1)),
            Box::new(SgdMomentum::new(n, 0.02)),
            Box::new(ConjugateGradient::new(n, 0.05)),
        ];
        for mut engine in engines {
            let mut f = quad(curvatures.clone(), targets.clone());
            let mut p = vec![0.0; n];
            for _ in 0..warmup {
                engine.step(&mut f, &mut p);
            }
            let snap = engine.snapshot();
            let split = p.clone();

            let mut p_ref = p.clone();
            for _ in 0..tail {
                engine.step(&mut f, &mut p_ref);
            }

            // Scramble the engine, then restore and replay the tail.
            for _ in 0..3 {
                engine.step(&mut f, &mut p);
            }
            engine.restore(&snap).expect("same engine kind");
            prop_assert!(engine.snapshot() == snap, "{} restore not exact", engine.name());
            let mut p_replay = split;
            for _ in 0..tail {
                engine.step(&mut f, &mut p_replay);
            }
            prop_assert!(
                p_ref == p_replay,
                "{} trajectory not reproduced: {p_ref:?} vs {p_replay:?}",
                engine.name()
            );
        }
    }

    /// Reset makes runs reproducible: two identical runs after reset give
    /// identical trajectories.
    #[test]
    fn reset_reproducibility(curv in 0.5f64..5.0) {
        let mut f = move |p: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * curv * (p[0] - 3.0);
            curv * (p[0] - 3.0) * (p[0] - 3.0)
        };
        let mut opt = NesterovOptimizer::new(1, 0.1);
        let mut p1 = vec![0.0];
        for _ in 0..10 { opt.step(&mut f, &mut p1); }
        opt.reset();
        let mut p2 = vec![0.0];
        for _ in 0..10 { opt.step(&mut f, &mut p2); }
        prop_assert!((p1[0] - p2[0]).abs() < 1e-12);
    }
}
