//! Gradient-descent engines for nonlinear placement (paper §III-D).
//!
//! ePlace/RePlAce drive global placement with Nesterov's accelerated method
//! plus a Lipschitz-constant step prediction; DREAMPlace additionally
//! exposes the toolkit's native solvers (Adam, SGD with momentum) which the
//! paper compares in Table IV. All four engines here operate on a flat
//! parameter vector through the [`ObjectiveFn`] callback, so they are
//! independent of placement specifics and unit-testable on analytic
//! functions.
//!
//! * [`NesterovOptimizer`] — the ePlace scheme: major/reference sequences,
//!   step size predicted from the local Lipschitz estimate
//!   `|v_k - v_{k-1}| / |grad(v_k) - grad(v_{k-1})|` with bounded
//!   backtracking;
//! * [`Adam`] — Kingma-Ba with optional per-step learning-rate decay
//!   (the "LR Decay" column of Table IV);
//! * [`SgdMomentum`] — classical momentum with the same decay hook;
//! * [`ConjugateGradient`] — Polak-Ribiere+ nonlinear CG with automatic
//!   restarts, the third solver family the paper lists.
//!
//! # Examples
//!
//! ```
//! use dp_optim::{NesterovOptimizer, Optimizer};
//!
//! // Minimize f(p) = sum (p_i - i)^2.
//! let mut f = |p: &[f64], g: &mut [f64]| -> f64 {
//!     let mut cost = 0.0;
//!     for (i, (pi, gi)) in p.iter().zip(g.iter_mut()).enumerate() {
//!         let d = pi - i as f64;
//!         cost += d * d;
//!         *gi = 2.0 * d;
//!     }
//!     cost
//! };
//! let mut params = vec![5.0, 5.0, 5.0];
//! let mut opt = NesterovOptimizer::new(3, 0.1);
//! for _ in 0..60 {
//!     opt.step(&mut f, &mut params);
//! }
//! assert!((params[0] - 0.0).abs() < 1e-3);
//! assert!((params[2] - 2.0).abs() < 1e-3);
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod adam;
pub mod cg;
pub mod nesterov;
pub mod sgd;

pub use adam::Adam;
pub use cg::ConjugateGradient;
pub use nesterov::NesterovOptimizer;
pub use sgd::SgdMomentum;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod snapshot_tests;

use dp_num::Float;

/// A differentiable objective over a flat parameter vector.
///
/// `eval` writes the gradient into `grad` (overwriting, not accumulating)
/// and returns the cost. Implemented for any
/// `FnMut(&[T], &mut [T]) -> T` closure.
pub trait ObjectiveFn<T: Float> {
    /// Evaluates cost and gradient at `params`.
    fn eval(&mut self, params: &[T], grad: &mut [T]) -> T;
}

impl<T: Float, F: FnMut(&[T], &mut [T]) -> T> ObjectiveFn<T> for F {
    fn eval(&mut self, params: &[T], grad: &mut [T]) -> T {
        self(params, grad)
    }
}

/// Diagnostics returned by one optimizer step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepInfo<T> {
    /// Objective value at the evaluation point of this step.
    pub cost: T,
    /// Infinity norm of the gradient at that point.
    pub grad_norm: T,
    /// The step size actually applied.
    pub step_size: T,
    /// Number of backtracking retries (Nesterov only; 0 otherwise).
    pub backtracks: usize,
}

impl<T: Float> StepInfo<T> {
    /// `true` when both the cost and the gradient norm are finite — the
    /// engine's cheapest divergence tripwire. The engines compute
    /// `grad_norm` with a NaN-propagating infinity norm, so any
    /// non-finite gradient component surfaces here without rescanning
    /// the vector.
    pub fn is_healthy(&self) -> bool {
        self.cost.is_finite() && self.grad_norm.is_finite()
    }
}

/// Engine-tagged copy of an optimizer's mutable state, captured by
/// [`Optimizer::snapshot`] and reinstated by [`Optimizer::restore`].
///
/// The global placer checkpoints this alongside cell positions so a
/// diverging run can roll back to the last good iterate with the solver's
/// momenta and step-size history intact (restarting from zeroed momenta at
/// a rolled-back point would repeat the same blow-up).
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerSnapshot<T> {
    /// State of [`NesterovOptimizer`].
    Nesterov {
        /// Momentum coefficient `a_k`.
        a: T,
        /// Current step size.
        alpha: T,
        /// Reference point `v_k`.
        v: Option<Vec<T>>,
        /// Previous major point.
        u_prev: Option<Vec<T>>,
        /// Gradient at the previous reference point.
        g_prev: Option<Vec<T>>,
        /// Previous reference point.
        v_prev: Option<Vec<T>>,
    },
    /// State of [`Adam`].
    Adam {
        /// Current (decayed) learning rate.
        lr: T,
        /// Step counter for bias correction.
        t: u32,
        /// First-moment estimate.
        m: Vec<T>,
        /// Second-moment estimate.
        v: Vec<T>,
    },
    /// State of [`SgdMomentum`].
    SgdMomentum {
        /// Current (decayed) learning rate.
        lr: T,
        /// Velocity accumulator.
        velocity: Vec<T>,
    },
    /// State of [`ConjugateGradient`].
    ConjugateGradient {
        /// Current step size.
        alpha: T,
        /// Previous gradient.
        g_prev: Option<Vec<T>>,
        /// Previous search direction.
        d_prev: Option<Vec<T>>,
        /// Previous parameter vector.
        p_prev: Option<Vec<T>>,
    },
}

impl<T> OptimizerSnapshot<T> {
    /// The engine this snapshot belongs to (matches [`Optimizer::name`]).
    pub fn engine(&self) -> &'static str {
        match self {
            OptimizerSnapshot::Nesterov { .. } => "nesterov",
            OptimizerSnapshot::Adam { .. } => "adam",
            OptimizerSnapshot::SgdMomentum { .. } => "sgd-momentum",
            OptimizerSnapshot::ConjugateGradient { .. } => "conjugate-gradient",
        }
    }
}

/// Error returned when a snapshot is restored into a different engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMismatch {
    /// The engine the snapshot was taken from.
    pub snapshot_engine: &'static str,
    /// The engine `restore` was called on.
    pub target_engine: &'static str,
}

impl std::fmt::Display for SnapshotMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot restore a {} snapshot into a {} optimizer",
            self.snapshot_engine, self.target_engine
        )
    }
}

impl std::error::Error for SnapshotMismatch {}

/// A first-order optimizer advancing a parameter vector in place.
pub trait Optimizer<T: Float> {
    /// Performs one iteration, mutating `params`.
    fn step(&mut self, f: &mut dyn ObjectiveFn<T>, params: &mut [T]) -> StepInfo<T>;

    /// Clears internal state (momenta, step history). The next `step`
    /// behaves like the first. Used when the placement engine restarts the
    /// solver after cell inflation (paper §III-F).
    fn reset(&mut self);

    /// Short engine name for reports ("nesterov", "adam", ...).
    fn name(&self) -> &'static str;

    /// Captures the full mutable state. `restore`-ing the returned
    /// snapshot must be an exact round-trip: a restored optimizer produces
    /// bit-identical trajectories to one that never left that state.
    fn snapshot(&self) -> OptimizerSnapshot<T>;

    /// Reinstates state captured by [`Optimizer::snapshot`] on the same
    /// engine kind.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotMismatch`] (leaving the optimizer untouched) when
    /// the snapshot was taken from a different engine.
    fn restore(&mut self, snapshot: &OptimizerSnapshot<T>) -> Result<(), SnapshotMismatch>;
}

/// Infinity norm helper shared by the engines. Unlike a `max` fold (which
/// for IEEE floats silently ignores NaN), any non-finite component
/// propagates into the result, so [`StepInfo::is_healthy`] reliably
/// detects a poisoned gradient.
pub(crate) fn inf_norm<T: Float>(v: &[T]) -> T {
    let mut m = T::ZERO;
    for &x in v {
        let a = x.abs();
        if !a.is_finite() {
            return a;
        }
        if a > m {
            m = a;
        }
    }
    m
}

/// Euclidean norm helper shared by the engines.
pub(crate) fn l2_norm<T: Float>(v: &[T]) -> T {
    v.iter().map(|&x| x * x).sum::<T>().sqrt()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// A shifted quadratic bowl with per-axis curvature, plus its optimum.
    pub(crate) fn quadratic_bowl() -> (impl FnMut(&[f64], &mut [f64]) -> f64, Vec<f64>) {
        let target = vec![1.0, -2.0, 3.0, 0.5];
        let curv = [1.0, 4.0, 0.5, 2.0];
        let t = target.clone();
        let f = move |p: &[f64], g: &mut [f64]| -> f64 {
            let mut cost = 0.0;
            for i in 0..p.len() {
                let d = p[i] - t[i];
                cost += curv[i] * d * d;
                g[i] = 2.0 * curv[i] * d;
            }
            cost
        };
        (f, target)
    }

    /// Rosenbrock in 2-D: a classic non-convex stress test.
    pub(crate) fn rosenbrock(p: &[f64], g: &mut [f64]) -> f64 {
        let (x, y) = (p[0], p[1]);
        g[0] = -2.0 * (1.0 - x) - 400.0 * x * (y - x * x);
        g[1] = 200.0 * (y - x * x);
        (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2)
    }

    fn run_to_convergence<O: Optimizer<f64>>(mut opt: O, iters: usize) -> Vec<f64> {
        let (mut f, _) = quadratic_bowl();
        let mut p = vec![0.0; 4];
        for _ in 0..iters {
            opt.step(&mut f, &mut p);
        }
        p
    }

    #[test]
    fn all_engines_solve_the_bowl() {
        let tol = 1e-2;
        let target = [1.0, -2.0, 3.0, 0.5];
        for (name, got) in [
            (
                "nesterov",
                run_to_convergence(NesterovOptimizer::new(4, 0.05), 200),
            ),
            ("adam", run_to_convergence(Adam::new(4, 0.2), 600)),
            ("sgd", run_to_convergence(SgdMomentum::new(4, 0.05), 400)),
            (
                "cg",
                run_to_convergence(ConjugateGradient::new(4, 0.05), 300),
            ),
        ] {
            for (a, b) in got.iter().zip(&target) {
                assert!((a - b).abs() < tol, "{name}: {got:?}");
            }
        }
    }

    #[test]
    fn norms() {
        assert_eq!(inf_norm(&[1.0, -3.0, 2.0]), 3.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn inf_norm_propagates_non_finite_components() {
        assert!(inf_norm(&[1.0, f64::NAN, 2.0]).is_nan());
        assert_eq!(inf_norm(&[1.0, f64::NEG_INFINITY]), f64::INFINITY);
    }

    #[test]
    fn poisoned_gradient_is_flagged_unhealthy() {
        let mut f = |_: &[f64], g: &mut [f64]| {
            g[0] = 1.0;
            g[1] = f64::NAN;
            1.0
        };
        let mut opt = SgdMomentum::new(2, 0.1);
        let mut p = vec![0.0, 0.0];
        let info = opt.step(&mut f, &mut p);
        assert!(!info.is_healthy(), "{info:?}");
    }
}
