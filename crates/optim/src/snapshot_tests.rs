//! Unit tests of [`Optimizer::snapshot`] / [`Optimizer::restore`].
//! The exactness property test over random states lives in
//! `tests/proptests.rs`; these cover the mismatch and mid-run semantics.

use crate::{
    Adam, ConjugateGradient, NesterovOptimizer, Optimizer, OptimizerSnapshot, SgdMomentum,
};

fn engines() -> Vec<Box<dyn Optimizer<f64>>> {
    vec![
        Box::new(NesterovOptimizer::new(4, 0.05)),
        Box::new(Adam::new(4, 0.1).with_decay(0.99)),
        Box::new(SgdMomentum::new(4, 0.02).with_decay(0.995)),
        Box::new(ConjugateGradient::new(4, 0.05)),
    ]
}

#[test]
fn snapshot_restore_resumes_identical_trajectory() {
    for mut engine in engines() {
        let (mut f, _) = crate::tests::quadratic_bowl();
        let mut p = vec![0.0; 4];
        for _ in 0..7 {
            engine.step(&mut f, &mut p);
        }
        let snap = engine.snapshot();
        let p_at_snap = p.clone();

        // Reference trajectory: continue without interruption.
        let mut p_ref = p.clone();
        for _ in 0..9 {
            engine.step(&mut f, &mut p_ref);
        }

        // Perturb the engine thoroughly, then restore.
        for _ in 0..5 {
            engine.step(&mut f, &mut p);
        }
        engine.reset();
        engine.restore(&snap).expect("same engine kind");
        let mut p_restored = p_at_snap;
        for _ in 0..9 {
            engine.step(&mut f, &mut p_restored);
        }

        assert_eq!(
            p_ref,
            p_restored,
            "{}: restored trajectory diverged",
            engine.name()
        );
    }
}

#[test]
fn restore_rejects_foreign_snapshot() {
    let donor = NesterovOptimizer::<f64>::new(4, 0.05);
    let snap = donor.snapshot();
    assert_eq!(snap.engine(), "nesterov");

    let mut adam = Adam::<f64>::new(4, 0.1);
    let before = adam.snapshot();
    let err = adam.restore(&snap).expect_err("kind mismatch");
    assert_eq!(err.snapshot_engine, "nesterov");
    assert_eq!(err.target_engine, "adam");
    // The failed restore must not have touched the optimizer.
    assert_eq!(adam.snapshot(), before);
}

#[test]
fn snapshot_engine_matches_optimizer_name() {
    for engine in engines() {
        assert_eq!(engine.snapshot().engine(), engine.name());
    }
}

#[test]
fn fresh_snapshot_equals_reset_state() {
    for mut engine in engines() {
        let fresh = engine.snapshot();
        let (mut f, _) = crate::tests::quadratic_bowl();
        let mut p = vec![0.5; 4];
        for _ in 0..3 {
            engine.step(&mut f, &mut p);
        }
        assert_ne!(
            engine.snapshot(),
            fresh,
            "{} state should move",
            engine.name()
        );
        engine.reset();
        assert_eq!(engine.snapshot(), fresh, "{} reset != fresh", engine.name());
    }
}

#[test]
fn snapshot_is_engine_tagged() {
    let snaps = [
        NesterovOptimizer::<f64>::new(2, 0.1).snapshot(),
        Adam::<f64>::new(2, 0.1).snapshot(),
        SgdMomentum::<f64>::new(2, 0.1).snapshot(),
        ConjugateGradient::<f64>::new(2, 0.1).snapshot(),
    ];
    let names: Vec<_> = snaps.iter().map(OptimizerSnapshot::engine).collect();
    assert_eq!(
        names,
        ["nesterov", "adam", "sgd-momentum", "conjugate-gradient"]
    );
}
