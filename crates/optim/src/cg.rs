//! Polak-Ribiere+ nonlinear conjugate gradient.
//!
//! The paper lists the conjugate gradient method among the solvers the
//! framework provides (§I contribution 2, §II-C). This implementation uses
//! the PR+ beta with automatic restart on non-descent directions and the
//! same two-point Lipschitz step estimate as the Nesterov engine.

use dp_num::Float;

use crate::{inf_norm, ObjectiveFn, Optimizer, OptimizerSnapshot, SnapshotMismatch, StepInfo};

/// Nonlinear CG (Polak-Ribiere+ with restarts).
///
/// # Examples
///
/// ```
/// use dp_optim::{ConjugateGradient, Optimizer};
///
/// let mut f = |p: &[f64], g: &mut [f64]| {
///     g[0] = 2.0 * p[0];
///     g[1] = 8.0 * p[1];
///     p[0] * p[0] + 4.0 * p[1] * p[1]
/// };
/// let mut opt = ConjugateGradient::new(2, 0.05);
/// let mut p = vec![5.0, -3.0];
/// for _ in 0..100 {
///     opt.step(&mut f, &mut p);
/// }
/// assert!(p[0].abs() < 1e-2 && p[1].abs() < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct ConjugateGradient<T> {
    initial_step: T,
    alpha: T,
    g_prev: Option<Vec<T>>,
    d_prev: Option<Vec<T>>,
    p_prev: Option<Vec<T>>,
}

impl<T: Float> ConjugateGradient<T> {
    /// Creates a CG solver for `n` parameters with the given initial step.
    ///
    /// # Panics
    ///
    /// Panics if `initial_step` is not strictly positive.
    pub fn new(_n: usize, initial_step: T) -> Self {
        assert!(initial_step > T::ZERO, "initial step must be positive");
        Self {
            initial_step,
            alpha: initial_step,
            g_prev: None,
            d_prev: None,
            p_prev: None,
        }
    }
}

impl<T: Float> Optimizer<T> for ConjugateGradient<T> {
    fn step(&mut self, f: &mut dyn ObjectiveFn<T>, params: &mut [T]) -> StepInfo<T> {
        let n = params.len();
        let mut g = vec![T::ZERO; n];
        let cost = f.eval(params, &mut g);
        let grad_norm = inf_norm(&g);

        // Two-point Lipschitz step estimate, like the Nesterov engine.
        if let (Some(gp), Some(pp)) = (&self.g_prev, &self.p_prev) {
            let mut dp = T::ZERO;
            let mut dg = T::ZERO;
            for i in 0..n {
                let a = params[i] - pp[i];
                let b = g[i] - gp[i];
                dp += a * a;
                dg += b * b;
            }
            if dg > T::MIN_POSITIVE {
                self.alpha = (dp.sqrt() / dg.sqrt()).min(self.alpha * T::TWO);
            }
        }

        // PR+ beta.
        let beta = match &self.g_prev {
            Some(gp) => {
                let mut num = T::ZERO;
                let mut den = T::ZERO;
                for i in 0..n {
                    num += g[i] * (g[i] - gp[i]);
                    den += gp[i] * gp[i];
                }
                if den > T::MIN_POSITIVE {
                    (num / den).max(T::ZERO)
                } else {
                    T::ZERO
                }
            }
            None => T::ZERO,
        };

        // Direction with restart when it fails to descend.
        let mut d = vec![T::ZERO; n];
        let mut descent = T::ZERO;
        match &self.d_prev {
            Some(dp) => {
                for i in 0..n {
                    d[i] = -g[i] + beta * dp[i];
                    descent += d[i] * g[i];
                }
                if descent >= T::ZERO {
                    for i in 0..n {
                        d[i] = -g[i];
                    }
                }
            }
            None => {
                for i in 0..n {
                    d[i] = -g[i];
                }
            }
        }

        self.p_prev = Some(params.to_vec());
        for i in 0..n {
            params[i] += self.alpha * d[i];
        }
        self.g_prev = Some(g);
        self.d_prev = Some(d);

        StepInfo {
            cost,
            grad_norm,
            step_size: self.alpha,
            backtracks: 0,
        }
    }

    fn reset(&mut self) {
        self.alpha = self.initial_step;
        self.g_prev = None;
        self.d_prev = None;
        self.p_prev = None;
    }

    fn name(&self) -> &'static str {
        "conjugate-gradient"
    }

    fn snapshot(&self) -> OptimizerSnapshot<T> {
        OptimizerSnapshot::ConjugateGradient {
            alpha: self.alpha,
            g_prev: self.g_prev.clone(),
            d_prev: self.d_prev.clone(),
            p_prev: self.p_prev.clone(),
        }
    }

    fn restore(&mut self, snapshot: &OptimizerSnapshot<T>) -> Result<(), SnapshotMismatch> {
        match snapshot {
            OptimizerSnapshot::ConjugateGradient {
                alpha,
                g_prev,
                d_prev,
                p_prev,
            } => {
                self.alpha = *alpha;
                self.g_prev = g_prev.clone();
                self.d_prev = d_prev.clone();
                self.p_prev = p_prev.clone();
                Ok(())
            }
            other => Err(SnapshotMismatch {
                snapshot_engine: other.engine(),
                target_engine: self.name(),
            }),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn beats_plain_gd_on_ill_conditioned_quadratic() {
        let mut f = |p: &[f64], g: &mut [f64]| {
            g[0] = p[0];
            g[1] = 50.0 * p[1];
            0.5 * p[0] * p[0] + 25.0 * p[1] * p[1]
        };
        let mut cg = ConjugateGradient::new(2, 0.01);
        let mut p = vec![10.0, 10.0];
        for _ in 0..200 {
            cg.step(&mut f, &mut p);
        }
        let cost_cg = 0.5 * p[0] * p[0] + 25.0 * p[1] * p[1];
        assert!(cost_cg < 1e-3, "{p:?}");
    }

    #[test]
    fn restart_on_ascent_direction() {
        // A sign-flipping gradient would corrupt the direction without the
        // PR+ clamp and restart; convergence shows they work.
        let mut f = |p: &[f64], g: &mut [f64]| {
            g[0] = p[0].signum() * p[0].abs().sqrt().max(1e-3);
            p[0].abs()
        };
        let mut cg = ConjugateGradient::new(1, 0.5);
        let mut p = vec![4.0];
        for _ in 0..200 {
            cg.step(&mut f, &mut p);
        }
        assert!(p[0].abs() < 1.0, "{p:?}");
    }

    #[test]
    fn reset_clears_state() {
        let (mut f, _) = crate::tests::quadratic_bowl();
        let mut cg = ConjugateGradient::new(4, 0.05);
        let mut p = vec![0.0; 4];
        cg.step(&mut f, &mut p);
        cg.reset();
        assert!(cg.g_prev.is_none() && cg.d_prev.is_none());
    }
}
