//! SGD with classical momentum, the second toolkit solver of Table IV.

use dp_num::Float;

use crate::{inf_norm, ObjectiveFn, Optimizer, OptimizerSnapshot, SnapshotMismatch, StepInfo};

/// SGD with momentum and optional per-step learning-rate decay.
///
/// # Examples
///
/// ```
/// use dp_optim::{Optimizer, SgdMomentum};
///
/// let mut f = |p: &[f64], g: &mut [f64]| {
///     g[0] = 2.0 * p[0];
///     p[0] * p[0]
/// };
/// let mut opt = SgdMomentum::new(1, 0.05);
/// let mut p = vec![4.0];
/// for _ in 0..200 {
///     opt.step(&mut f, &mut p);
/// }
/// assert!(p[0].abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct SgdMomentum<T> {
    lr0: T,
    lr: T,
    momentum: T,
    decay: T,
    velocity: Vec<T>,
}

impl<T: Float> SgdMomentum<T> {
    /// Creates SGD for `n` parameters with learning rate `lr` and the
    /// default momentum 0.9.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn new(n: usize, lr: T) -> Self {
        assert!(lr > T::ZERO, "learning rate must be positive");
        Self {
            lr0: lr,
            lr,
            momentum: T::from_f64(0.9),
            decay: T::ONE,
            velocity: vec![T::ZERO; n],
        }
    }

    /// Sets the momentum coefficient.
    pub fn with_momentum(mut self, momentum: T) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the multiplicative learning-rate decay applied after each step.
    pub fn with_decay(mut self, decay: T) -> Self {
        self.decay = decay;
        self
    }

    /// The current (decayed) learning rate.
    pub fn learning_rate(&self) -> T {
        self.lr
    }
}

impl<T: Float> Optimizer<T> for SgdMomentum<T> {
    fn step(&mut self, f: &mut dyn ObjectiveFn<T>, params: &mut [T]) -> StepInfo<T> {
        assert_eq!(
            params.len(),
            self.velocity.len(),
            "parameter length changed"
        );
        let mut g = vec![T::ZERO; params.len()];
        let cost = f.eval(params, &mut g);
        for i in 0..params.len() {
            self.velocity[i] = self.momentum * self.velocity[i] + g[i];
            params[i] -= self.lr * self.velocity[i];
        }
        let info = StepInfo {
            cost,
            grad_norm: inf_norm(&g),
            step_size: self.lr,
            backtracks: 0,
        };
        self.lr *= self.decay;
        info
    }

    fn reset(&mut self) {
        self.lr = self.lr0;
        self.velocity.iter_mut().for_each(|x| *x = T::ZERO);
    }

    fn name(&self) -> &'static str {
        "sgd-momentum"
    }

    fn snapshot(&self) -> OptimizerSnapshot<T> {
        OptimizerSnapshot::SgdMomentum {
            lr: self.lr,
            velocity: self.velocity.clone(),
        }
    }

    fn restore(&mut self, snapshot: &OptimizerSnapshot<T>) -> Result<(), SnapshotMismatch> {
        match snapshot {
            OptimizerSnapshot::SgdMomentum { lr, velocity } => {
                self.lr = *lr;
                self.velocity = velocity.clone();
                Ok(())
            }
            other => Err(SnapshotMismatch {
                snapshot_engine: other.engine(),
                target_engine: self.name(),
            }),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn momentum_accelerates_along_valleys() {
        // Narrow valley: slow axis benefits from momentum accumulation.
        let mut f = |p: &[f64], g: &mut [f64]| {
            g[0] = 0.02 * p[0];
            g[1] = 2.0 * p[1];
            0.01 * p[0] * p[0] + p[1] * p[1]
        };
        let lr = 0.4;
        let mut with = SgdMomentum::new(2, lr);
        let mut without = SgdMomentum::new(2, lr).with_momentum(0.0);
        let mut pw = vec![100.0, 1.0];
        let mut po = pw.clone();
        for _ in 0..150 {
            with.step(&mut f, &mut pw);
            without.step(&mut f, &mut po);
        }
        assert!(pw[0].abs() < po[0].abs(), "momentum {pw:?} vs plain {po:?}");
    }

    #[test]
    fn decay_and_reset() {
        let mut f = |_: &[f64], g: &mut [f64]| {
            g[0] = 0.0;
            0.0
        };
        let mut opt = SgdMomentum::new(1, 2.0).with_decay(0.5);
        let mut p = vec![0.0];
        opt.step(&mut f, &mut p);
        assert_eq!(opt.learning_rate(), 1.0);
        opt.reset();
        assert_eq!(opt.learning_rate(), 2.0);
    }
}
