//! Adam (Kingma-Ba), the toolkit solver the paper compares in Table IV.

use dp_num::Float;

use crate::{inf_norm, ObjectiveFn, Optimizer, OptimizerSnapshot, SnapshotMismatch, StepInfo};

/// Adam with bias correction and optional per-step learning-rate decay.
///
/// The paper's Table IV runs Adam with a per-design decay factor (0.995 or
/// 0.997) because the toolkit solvers have no line search; `with_decay`
/// reproduces that knob.
///
/// # Examples
///
/// ```
/// use dp_optim::{Adam, Optimizer};
///
/// let mut f = |p: &[f64], g: &mut [f64]| {
///     g[0] = 2.0 * p[0];
///     p[0] * p[0]
/// };
/// let mut opt = Adam::new(1, 0.1);
/// let mut p = vec![3.0];
/// for _ in 0..300 {
///     opt.step(&mut f, &mut p);
/// }
/// assert!(p[0].abs() < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct Adam<T> {
    lr0: T,
    lr: T,
    beta1: T,
    beta2: T,
    eps: T,
    decay: T,
    t: u32,
    m: Vec<T>,
    v: Vec<T>,
}

impl<T: Float> Adam<T> {
    /// Creates Adam for `n` parameters with learning rate `lr` and the
    /// standard defaults (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn new(n: usize, lr: T) -> Self {
        assert!(lr > T::ZERO, "learning rate must be positive");
        Self {
            lr0: lr,
            lr,
            beta1: T::from_f64(0.9),
            beta2: T::from_f64(0.999),
            eps: T::from_f64(1e-8),
            decay: T::ONE,
            t: 0,
            m: vec![T::ZERO; n],
            v: vec![T::ZERO; n],
        }
    }

    /// Sets the multiplicative learning-rate decay applied after each step
    /// (Table IV's "LR Decay" column).
    pub fn with_decay(mut self, decay: T) -> Self {
        self.decay = decay;
        self
    }

    /// Overrides the moment coefficients.
    pub fn with_betas(mut self, beta1: T, beta2: T) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// The current (decayed) learning rate.
    pub fn learning_rate(&self) -> T {
        self.lr
    }
}

impl<T: Float> Optimizer<T> for Adam<T> {
    fn step(&mut self, f: &mut dyn ObjectiveFn<T>, params: &mut [T]) -> StepInfo<T> {
        assert_eq!(params.len(), self.m.len(), "parameter length changed");
        let mut g = vec![T::ZERO; params.len()];
        let cost = f.eval(params, &mut g);
        self.t += 1;
        let b1t = self.beta1.powi(self.t as i32);
        let b2t = self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (T::ONE - self.beta1) * g[i];
            self.v[i] = self.beta2 * self.v[i] + (T::ONE - self.beta2) * g[i] * g[i];
            let m_hat = self.m[i] / (T::ONE - b1t);
            let v_hat = self.v[i] / (T::ONE - b2t);
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        let info = StepInfo {
            cost,
            grad_norm: inf_norm(&g),
            step_size: self.lr,
            backtracks: 0,
        };
        self.lr *= self.decay;
        info
    }

    fn reset(&mut self) {
        self.t = 0;
        self.lr = self.lr0;
        self.m.iter_mut().for_each(|x| *x = T::ZERO);
        self.v.iter_mut().for_each(|x| *x = T::ZERO);
    }

    fn name(&self) -> &'static str {
        "adam"
    }

    fn snapshot(&self) -> OptimizerSnapshot<T> {
        OptimizerSnapshot::Adam {
            lr: self.lr,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    fn restore(&mut self, snapshot: &OptimizerSnapshot<T>) -> Result<(), SnapshotMismatch> {
        match snapshot {
            OptimizerSnapshot::Adam { lr, t, m, v } => {
                self.lr = *lr;
                self.t = *t;
                self.m = m.clone();
                self.v = v.clone();
                Ok(())
            }
            other => Err(SnapshotMismatch {
                snapshot_engine: other.engine(),
                target_engine: self.name(),
            }),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn decay_shrinks_learning_rate() {
        let mut f = |_: &[f64], g: &mut [f64]| {
            g[0] = 1.0;
            0.0
        };
        let mut opt = Adam::new(1, 1.0).with_decay(0.9);
        let mut p = vec![0.0];
        opt.step(&mut f, &mut p);
        assert!((opt.learning_rate() - 0.9).abs() < 1e-12);
        opt.step(&mut f, &mut p);
        assert!((opt.learning_rate() - 0.81).abs() < 1e-12);
        opt.reset();
        assert_eq!(opt.learning_rate(), 1.0);
    }

    #[test]
    fn handles_sparse_gradients_gracefully() {
        // Adam's per-coordinate scaling shines with uneven gradients.
        let mut f = |p: &[f64], g: &mut [f64]| {
            g[0] = 1e-3 * p[0];
            g[1] = 1e3 * p[1];
            0.5e-3 * p[0] * p[0] + 0.5e3 * p[1] * p[1]
        };
        let mut opt = Adam::new(2, 0.5);
        let mut p = vec![100.0, 100.0];
        for _ in 0..1500 {
            opt.step(&mut f, &mut p);
        }
        assert!(p[0].abs() < 1.0, "{p:?}");
        assert!(p[1].abs() < 1.0, "{p:?}");
    }

    #[test]
    fn bias_correction_gives_full_first_step() {
        let mut f = |_: &[f64], g: &mut [f64]| {
            g[0] = 4.0;
            0.0
        };
        let mut opt = Adam::new(1, 0.1);
        let mut p = vec![0.0];
        opt.step(&mut f, &mut p);
        // With bias correction, the first update is ~lr * sign(g).
        assert!((p[0] + 0.1).abs() < 1e-6, "{p:?}");
    }
}
