//! Nesterov's accelerated gradient with Lipschitz step prediction — the
//! ePlace/RePlAce solver the paper adopts (§III-D).
//!
//! The scheme maintains a *major* sequence `u_k` and a *reference* sequence
//! `v_k`. Each iteration descends from the reference point and extrapolates:
//!
//! ```text
//! u_{k+1} = v_k - alpha_k * grad f(v_k)
//! a_{k+1} = (1 + sqrt(4 a_k^2 + 1)) / 2
//! v_{k+1} = u_{k+1} + (a_k - 1)/a_{k+1} * (u_{k+1} - u_k)
//! ```
//!
//! The step size is predicted from the local inverse Lipschitz estimate
//! `alpha = |v_k - v_{k-1}| / |grad(v_k) - grad(v_{k-1})|` and corrected by
//! a bounded backtracking loop: if the prediction exceeds the estimate at
//! the tentative new reference point, the step is retried with the tighter
//! value (at most [`NesterovOptimizer::with_max_backtracks`] times, ePlace
//! uses a similarly small constant).

use dp_num::Float;

use crate::{
    inf_norm, l2_norm, ObjectiveFn, Optimizer, OptimizerSnapshot, SnapshotMismatch, StepInfo,
};

/// The ePlace Nesterov solver; see the [module docs](self) and the
/// [crate example](crate).
#[derive(Debug, Clone)]
pub struct NesterovOptimizer<T> {
    initial_step: T,
    max_backtracks: usize,
    /// `a_k` momentum coefficient.
    a: T,
    /// Reference point `v_k` (lazily initialized to the incoming params).
    v: Option<Vec<T>>,
    /// Previous major point `u_{k-1}`.
    u_prev: Option<Vec<T>>,
    /// Gradient at the previous reference point.
    g_prev: Option<Vec<T>>,
    /// Previous reference point.
    v_prev: Option<Vec<T>>,
    /// Current step size.
    alpha: T,
}

impl<T: Float> NesterovOptimizer<T> {
    /// Creates a solver for `n` parameters with the given initial step.
    ///
    /// # Panics
    ///
    /// Panics if `initial_step` is not strictly positive.
    pub fn new(_n: usize, initial_step: T) -> Self {
        assert!(initial_step > T::ZERO, "initial step must be positive");
        Self {
            initial_step,
            max_backtracks: 10,
            a: T::ONE,
            v: None,
            u_prev: None,
            g_prev: None,
            v_prev: None,
            alpha: initial_step,
        }
    }

    /// Sets the backtracking bound (default 10).
    pub fn with_max_backtracks(mut self, n: usize) -> Self {
        self.max_backtracks = n.max(1);
        self
    }

    /// The current step size (diagnostic).
    pub fn step_size(&self) -> T {
        self.alpha
    }

    /// Lipschitz-based step prediction between two (point, gradient) pairs.
    fn lipschitz_step(v_new: &[T], v_old: &[T], g_new: &[T], g_old: &[T]) -> Option<T> {
        let mut dv = T::ZERO;
        let mut dg = T::ZERO;
        for i in 0..v_new.len() {
            let a = v_new[i] - v_old[i];
            let b = g_new[i] - g_old[i];
            dv += a * a;
            dg += b * b;
        }
        let dg = dg.sqrt();
        if dg <= T::MIN_POSITIVE {
            None
        } else {
            Some(dv.sqrt() / dg)
        }
    }
}

impl<T: Float> Optimizer<T> for NesterovOptimizer<T> {
    fn step(&mut self, f: &mut dyn ObjectiveFn<T>, params: &mut [T]) -> StepInfo<T> {
        let n = params.len();
        let v = self.v.get_or_insert_with(|| params.to_vec());
        assert_eq!(v.len(), n, "parameter length changed between steps");

        let mut g = vec![T::ZERO; n];
        let cost = f.eval(v, &mut g);
        let grad_norm = inf_norm(&g);

        // Predict the step size from the previous reference/gradient pair.
        if let (Some(vp), Some(gp)) = (&self.v_prev, &self.g_prev) {
            if let Some(a) = Self::lipschitz_step(v, vp, &g, gp) {
                self.alpha = a;
            }
        }

        let u_prev = self.u_prev.clone().unwrap_or_else(|| v.clone());
        let a_next = (T::ONE + (T::from_f64(4.0) * self.a * self.a + T::ONE).sqrt()) * T::HALF;
        let coef = (self.a - T::ONE) / a_next;

        let mut backtracks = 0usize;
        let mut alpha = self.alpha;
        let (u_new, v_new) = loop {
            // Tentative major and reference points.
            let mut u_new = vec![T::ZERO; n];
            let mut v_new = vec![T::ZERO; n];
            for i in 0..n {
                u_new[i] = v[i] - alpha * g[i];
                v_new[i] = u_new[i] + coef * (u_new[i] - u_prev[i]);
            }
            if backtracks >= self.max_backtracks {
                break (u_new, v_new);
            }
            // Evaluate the Lipschitz estimate at the tentative point; accept
            // when the applied step does not exceed it (with 5% slack).
            let mut g_new = vec![T::ZERO; n];
            let _ = f.eval(&v_new, &mut g_new);
            match Self::lipschitz_step(&v_new, v, &g_new, &g) {
                Some(a_hat) if alpha > a_hat * T::from_f64(1.05) && a_hat > T::ZERO => {
                    alpha = a_hat;
                    backtracks += 1;
                }
                _ => break (u_new, v_new),
            }
        };
        self.alpha = alpha;

        params.copy_from_slice(&u_new);
        self.u_prev = Some(u_new);
        self.v_prev = Some(std::mem::replace(v, v_new));
        self.g_prev = Some(g);
        self.a = a_next;

        StepInfo {
            cost,
            grad_norm,
            step_size: alpha,
            backtracks,
        }
    }

    fn reset(&mut self) {
        self.a = T::ONE;
        self.v = None;
        self.u_prev = None;
        self.g_prev = None;
        self.v_prev = None;
        self.alpha = self.initial_step;
    }

    fn name(&self) -> &'static str {
        "nesterov"
    }

    fn snapshot(&self) -> OptimizerSnapshot<T> {
        OptimizerSnapshot::Nesterov {
            a: self.a,
            alpha: self.alpha,
            v: self.v.clone(),
            u_prev: self.u_prev.clone(),
            g_prev: self.g_prev.clone(),
            v_prev: self.v_prev.clone(),
        }
    }

    fn restore(&mut self, snapshot: &OptimizerSnapshot<T>) -> Result<(), SnapshotMismatch> {
        match snapshot {
            OptimizerSnapshot::Nesterov {
                a,
                alpha,
                v,
                u_prev,
                g_prev,
                v_prev,
            } => {
                self.a = *a;
                self.alpha = *alpha;
                self.v = v.clone();
                self.u_prev = u_prev.clone();
                self.g_prev = g_prev.clone();
                self.v_prev = v_prev.clone();
                Ok(())
            }
            other => Err(SnapshotMismatch {
                snapshot_engine: other.engine(),
                target_engine: self.name(),
            }),
        }
    }
}

/// Convenience: Euclidean distance between two equal-length vectors.
#[allow(dead_code)]
fn distance<T: Float>(a: &[T], b: &[T]) -> T {
    let diff: Vec<T> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    l2_norm(&diff)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic_faster_than_plain_gd() {
        // f(x) = 0.5 * x^T diag(1, 100) x — ill-conditioned.
        let mut f = |p: &[f64], g: &mut [f64]| -> f64 {
            g[0] = p[0];
            g[1] = 100.0 * p[1];
            0.5 * (p[0] * p[0] + 100.0 * p[1] * p[1])
        };
        let mut nesterov = NesterovOptimizer::new(2, 0.005);
        let mut p = vec![10.0, 1.0];
        for _ in 0..300 {
            nesterov.step(&mut f, &mut p);
        }
        let cost_nesterov = 0.5 * (p[0] * p[0] + 100.0 * p[1] * p[1]);

        // Plain GD with the stable fixed step 1/L = 0.01.
        let mut q = [10.0f64, 1.0];
        for _ in 0..300 {
            let g = [q[0], 100.0 * q[1]];
            q[0] -= 0.005 * g[0];
            q[1] -= 0.005 * g[1];
        }
        let cost_gd = 0.5 * (q[0] * q[0] + 100.0 * q[1] * q[1]);
        assert!(cost_nesterov < cost_gd, "{cost_nesterov} vs {cost_gd}");
        assert!(cost_nesterov < 1e-3, "nesterov cost {cost_nesterov}");
    }

    #[test]
    fn adapts_step_size_to_curvature() {
        let mut f = |p: &[f64], g: &mut [f64]| -> f64 {
            g[0] = 200.0 * p[0];
            100.0 * p[0] * p[0]
        };
        // Deliberately huge initial step: backtracking must tame it.
        let mut opt = NesterovOptimizer::new(1, 10.0);
        let mut p = vec![1.0];
        let info = opt.step(&mut f, &mut p);
        assert!(info.backtracks > 0, "{info:?}");
        assert!(info.step_size < 0.1, "{info:?}");
        for _ in 0..100 {
            opt.step(&mut f, &mut p);
        }
        assert!(p[0].abs() < 1e-4, "{p:?}");
    }

    #[test]
    fn reset_restores_first_step_behaviour() {
        let (mut f, _) = crate::tests::quadratic_bowl();
        let mut opt = NesterovOptimizer::new(4, 0.05);
        let mut p = vec![0.0; 4];
        for _ in 0..5 {
            opt.step(&mut f, &mut p);
        }
        opt.reset();
        assert_eq!(opt.step_size(), 0.05);
        // After reset, continued optimization still converges.
        for _ in 0..200 {
            opt.step(&mut f, &mut p);
        }
        assert!((p[1] + 2.0).abs() < 1e-2);
    }

    #[test]
    fn survives_rosenbrock() {
        let mut p = vec![-1.2, 1.0];
        let mut opt = NesterovOptimizer::new(2, 1e-3);
        let mut f = crate::tests::rosenbrock;
        for _ in 0..2000 {
            opt.step(&mut f, &mut p);
        }
        // Rosenbrock is hard; just require substantial progress toward (1,1).
        let mut g = vec![0.0; 2];
        let cost = crate::tests::rosenbrock(&p, &mut g);
        assert!(cost < 1.0, "cost {cost} at {p:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_step() {
        let _ = NesterovOptimizer::<f64>::new(2, 0.0);
    }
}
