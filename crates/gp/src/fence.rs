//! Fence regions via multiple electric fields (paper §III-G).
//!
//! The paper sketches the extension: "fence regions can be implemented by
//! introducing multiple electric fields, e.g., one for each region, to
//! enable independent spreading between regions." This module does exactly
//! that: each fence region gets its own [`DensityOp`] whose
//!
//! * movable charge is restricted to the cells assigned to the region
//!   (mask), and
//! * fixed charge additionally fills everything *outside* the fence
//!   rectangle, so the region's field pushes its cells inside.
//!
//! Unassigned cells live in the default region, for which every fence
//! rectangle is a blockage. The fence constraint is soft during global
//! placement (like the density constraint itself); legalization of fenced
//! designs is out of scope here, matching the paper's sketch.

use dp_autograd::{ExecCtx, Gradient, Operator};
use dp_dct::TransformError;
use dp_density::{BinGrid, DctBackendKind, DensityOp, DensityStrategy};
use dp_netlist::{Netlist, Placement, Rect};
use dp_num::Float;

/// A fence-region specification.
#[derive(Debug, Clone)]
pub struct FenceSpec<T> {
    /// Fence rectangles (exclusive regions).
    pub regions: Vec<Rect<T>>,
    /// Per movable cell: `Some(r)` assigns it to `regions[r]`, `None`
    /// leaves it in the default region.
    pub assignment: Vec<Option<u16>>,
}

impl<T: Float> FenceSpec<T> {
    /// Fraction of assigned cells whose centers lie inside their fence at
    /// the given placement — the quality metric for the soft constraint.
    pub fn containment(&self, p: &Placement<T>) -> f64 {
        let mut assigned = 0usize;
        let mut inside = 0usize;
        for (c, a) in self.assignment.iter().enumerate() {
            if let Some(r) = a {
                assigned += 1;
                let rect = self.regions[*r as usize];
                if rect.contains(dp_netlist::Point::new(p.x[c], p.y[c])) {
                    inside += 1;
                }
            }
        }
        if assigned == 0 {
            1.0
        } else {
            inside as f64 / assigned as f64
        }
    }
}

/// A density operator with one electric field per fence region plus a
/// default field; see the [module docs](self).
pub struct FencedDensityOp<T: Float> {
    /// One operator per region; the last one is the default region.
    ops: Vec<DensityOp<T>>,
    /// Blockage (area units) each region's fixed map must include, i.e.
    /// everything outside its fence (or all fences, for the default).
    extra_fixed: Vec<Vec<T>>,
    spec: FenceSpec<T>,
}

impl<T: Float> FencedDensityOp<T> {
    /// Builds the per-region operators.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError`] for unsupported grids.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the movable cell count
    /// or references an unknown region.
    pub fn new(
        nl: &Netlist<T>,
        grid: BinGrid<T>,
        strategy: DensityStrategy,
        target_density: T,
        backend: DctBackendKind,
        spec: FenceSpec<T>,
    ) -> Result<Self, TransformError> {
        let n = nl.num_movable();
        assert_eq!(spec.assignment.len(), n, "assignment length mismatch");
        for a in spec.assignment.iter().flatten() {
            assert!(
                (*a as usize) < spec.regions.len(),
                "unknown fence region {a}"
            );
        }
        let num_regions = spec.regions.len();
        let mut ops = Vec::with_capacity(num_regions + 1);
        let mut extra_fixed = Vec::with_capacity(num_regions + 1);

        for r in 0..=num_regions {
            // Region r for r < num_regions; default region otherwise.
            let mask: Vec<bool> = (0..n)
                .map(|c| match spec.assignment[c] {
                    Some(a) => (a as usize) == r,
                    None => r == num_regions,
                })
                .collect();
            let op = DensityOp::with_backend(grid.clone(), strategy, target_density, backend)?
                .with_mask(mask);

            // Blockage map: outside the fence (region ops) or inside every
            // fence (default op).
            let mut blockage = vec![T::ZERO; grid.num_bins()];
            for i in 0..grid.mx() {
                for j in 0..grid.my() {
                    let bin = grid.bin_rect(i, j);
                    let blocked = if r < num_regions {
                        bin.area() - bin.overlap_area(&spec.regions[r])
                    } else {
                        let mut covered = T::ZERO;
                        for fence in &spec.regions {
                            covered += bin.overlap_area(fence);
                        }
                        covered.min(bin.area())
                    };
                    blockage[grid.index(i, j)] = blocked;
                }
            }
            ops.push(op);
            extra_fixed.push(blockage);
        }
        Ok(Self {
            ops,
            extra_fixed,
            spec,
        })
    }

    /// The fence specification.
    pub fn spec(&self) -> &FenceSpec<T> {
        &self.spec
    }

    /// Bakes fixed-cell maps plus the fence blockages into every region op.
    pub fn bake_fixed(&mut self, nl: &Netlist<T>, p: &Placement<T>) {
        for (op, extra) in self.ops.iter_mut().zip(&self.extra_fixed) {
            op.bake_fixed(nl, p);
            op.add_fixed_density(extra);
        }
    }

    /// Enables deterministic fixed-point density accumulation in every
    /// region's operator (thread-count invariant scatters).
    pub fn with_deterministic(mut self, deterministic: bool) -> Self {
        self.ops = self
            .ops
            .into_iter()
            .map(|op| op.with_deterministic(deterministic))
            .collect();
        self
    }

    /// Area-weighted overflow across regions.
    pub fn overflow(&mut self, nl: &Netlist<T>, p: &Placement<T>, ctx: &mut ExecCtx<T>) -> T {
        // Weight each region's overflow by its share of movable area so the
        // combined value is comparable to the single-field overflow.
        let mut total_area = T::ZERO;
        let mut acc = T::ZERO;
        let n = nl.num_movable();
        for (r, op) in self.ops.iter_mut().enumerate() {
            let area: T = (0..n)
                .filter(|&c| match self.spec.assignment[c] {
                    Some(a) => (a as usize) == r,
                    None => r == self.spec.regions.len(),
                })
                .map(|c| nl.cell_widths()[c] * nl.cell_heights()[c])
                .sum();
            if area > T::ZERO {
                acc += op.overflow(nl, p, ctx) * area;
                total_area += area;
            }
        }
        if total_area > T::ZERO {
            acc / total_area
        } else {
            T::ZERO
        }
    }
}

impl<T: Float> Operator<T> for FencedDensityOp<T> {
    fn name(&self) -> &'static str {
        "fenced-density"
    }

    fn forward(&mut self, nl: &Netlist<T>, p: &Placement<T>, ctx: &mut ExecCtx<T>) -> T {
        self.ops.iter_mut().map(|op| op.forward(nl, p, ctx)).sum()
    }

    fn backward(
        &mut self,
        nl: &Netlist<T>,
        p: &Placement<T>,
        grad: &mut Gradient<T>,
        ctx: &mut ExecCtx<T>,
    ) {
        for op in self.ops.iter_mut() {
            op.backward(nl, p, grad, ctx);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::NetlistBuilder;

    fn design() -> (Netlist<f64>, Placement<f64>, FenceSpec<f64>) {
        let mut b = NetlistBuilder::new(0.0, 0.0, 64.0, 64.0);
        let cells: Vec<_> = (0..8).map(|_| b.add_movable_cell(4.0, 4.0)).collect();
        b.add_net(1.0, vec![(cells[0], 0.0, 0.0), (cells[4], 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        for i in 0..8 {
            p.x[i] = 32.0;
            p.y[i] = 32.0;
        }
        // Left half fences cells 0-3, right half cells 4-7.
        let spec = FenceSpec {
            regions: vec![
                Rect::new(0.0, 0.0, 32.0, 64.0),
                Rect::new(32.0, 0.0, 64.0, 64.0),
            ],
            assignment: (0..8).map(|c| Some(if c < 4 { 0u16 } else { 1 })).collect(),
        };
        (nl, p, spec)
    }

    #[test]
    fn fence_fields_pull_cells_toward_their_regions() {
        let (nl, p, spec) = design();
        let grid = BinGrid::new(nl.region(), 16, 16).expect("pow2");
        let mut op = FencedDensityOp::new(
            &nl,
            grid,
            DensityStrategy::Sorted,
            1.0,
            DctBackendKind::Direct2d,
            spec,
        )
        .expect("builds");
        op.bake_fixed(&nl, &p);
        let mut ctx = ExecCtx::serial();
        let mut g = Gradient::zeros(nl.num_cells());
        let _ = op.forward_backward(&nl, &p, &mut g, &mut ctx);
        // All cells sit on the boundary (x = 32): the left-fence cells must
        // be pushed left (positive gradient decreases x under descent) and
        // right-fence cells right.
        for c in 0..4 {
            assert!(g.x[c] > 0.0, "left cell {c}: {:?}", &g.x[..8]);
        }
        for c in 4..8 {
            assert!(g.x[c] < 0.0, "right cell {c}: {:?}", &g.x[..8]);
        }
    }

    #[test]
    fn containment_metric() {
        let (_nl, mut p, spec) = design();
        // Everyone on the boundary center counts as inside the left fence
        // only through <=; place properly instead.
        for c in 0..4 {
            p.x[c] = 16.0;
        }
        for c in 4..8 {
            p.x[c] = 48.0;
        }
        assert_eq!(spec.containment(&p), 1.0);
        p.x[0] = 60.0; // escapes its fence
        assert_eq!(spec.containment(&p), 7.0 / 8.0);
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn rejects_bad_assignment_length() {
        let (nl, _p, mut spec) = design();
        spec.assignment.pop();
        let grid = BinGrid::new(nl.region(), 8, 8).expect("pow2");
        let _ = FencedDensityOp::new(
            &nl,
            grid,
            DensityStrategy::Sorted,
            1.0,
            DctBackendKind::Direct2d,
            spec,
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod gp_integration_tests {
    use super::*;
    use crate::{GlobalPlacer, GpConfig};
    use dp_gen::GeneratorConfig;

    /// End-to-end: global placement with a two-fence specification confines
    /// most cells to their regions, while the unfenced run does not.
    #[test]
    fn fenced_gp_confines_cells() {
        let d = GeneratorConfig::new("fence-gp", 200, 220)
            .with_seed(8)
            .with_utilization(0.35)
            .generate::<f64>()
            .expect("valid");
        let nl = &d.netlist;
        let region = nl.region();
        let mid = (region.xl + region.xh) * 0.5;
        let spec = FenceSpec {
            regions: vec![
                Rect::new(region.xl, region.yl, mid, region.yh),
                Rect::new(mid, region.yl, region.xh, region.yh),
            ],
            // First half of the cells to the left fence, second half to
            // the right — fences contain related logic, and the generator's
            // nets connect nearby indices.
            assignment: (0..nl.num_movable())
                .map(|c| Some(u16::from(c >= nl.num_movable() / 2)))
                .collect(),
        };

        let mut cfg = GpConfig::auto(nl);
        cfg.max_iters = 800;
        cfg.target_overflow = 0.15;
        let plain = GlobalPlacer::new(cfg.clone())
            .place(nl, &d.fixed_positions)
            .expect("plain gp");
        cfg.fence = Some(spec.clone());
        let fenced = GlobalPlacer::new(cfg)
            .place(nl, &d.fixed_positions)
            .expect("fenced gp");

        let c_plain = spec.containment(&plain.placement);
        let c_fenced = spec.containment(&fenced.placement);
        assert!(
            c_fenced > 0.85,
            "fenced containment {c_fenced} (plain {c_plain})"
        );
        assert!(c_fenced > c_plain + 0.2, "{c_fenced} vs {c_plain}");
    }
}
