//! The density-weight (`lambda`) and smoothing (`gamma`) schedulers.

use dp_num::Float;

/// Density weight updater implementing paper Eq. (18) with the TCAD
/// stabilization of §III-C.
///
/// Each iteration:
///
/// ```text
/// p  = Delta HPWL / ref_delta
/// mu = mu_max                      if p < 0   (paper DAC'19 version)
///      mu_max * max(0.9999^k, 0.98) if p < 0  (TCAD stabilization)
///      max(mu_min, mu_max^{1-p})   otherwise
/// lambda <- lambda * mu
/// ```
///
/// # Examples
///
/// ```
/// use dp_gp::DensityWeightScheduler;
///
/// let mut s = DensityWeightScheduler::<f64>::new(1.0, 0.95, 1.05, 1000.0, true);
/// let l1 = s.update(-500.0); // HPWL improved -> raise lambda by ~mu_max
/// assert!(l1 > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DensityWeightScheduler<T> {
    lambda: T,
    mu_min: T,
    mu_max: T,
    ref_delta: T,
    tcad_stabilization: bool,
    iteration: usize,
}

impl<T: Float> DensityWeightScheduler<T> {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `ref_delta` is not strictly positive or
    /// `mu_min > mu_max`.
    pub fn new(lambda0: T, mu_min: f64, mu_max: f64, ref_delta: T, tcad: bool) -> Self {
        assert!(ref_delta > T::ZERO, "reference delta must be positive");
        assert!(mu_min <= mu_max, "mu_min must not exceed mu_max");
        Self {
            lambda: lambda0,
            mu_min: T::from_f64(mu_min),
            mu_max: T::from_f64(mu_max),
            ref_delta,
            tcad_stabilization: tcad,
            iteration: 0,
        }
    }

    /// The current weight.
    pub fn lambda(&self) -> T {
        self.lambda
    }

    /// Overrides the weight (used when restarting after cell inflation).
    pub fn set_lambda(&mut self, lambda: T) {
        self.lambda = lambda;
    }

    /// Updates performed so far (the `k` of the TCAD decay term).
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Restores the update counter (checkpoint resume: the TCAD decay
    /// must continue from where the interrupted run left off).
    pub fn set_iteration(&mut self, iteration: usize) {
        self.iteration = iteration;
    }

    /// The reference `Delta HPWL` this scheduler normalizes against.
    pub fn ref_delta(&self) -> T {
        self.ref_delta
    }

    /// Applies one update given the HPWL change since the last update, and
    /// returns the new weight.
    pub fn update(&mut self, delta_hpwl: T) -> T {
        let p = delta_hpwl / self.ref_delta;
        let mu = if p < T::ZERO {
            if self.tcad_stabilization {
                // mu_max * max(0.9999^k, 0.98): drops from 1.05 toward 1.03
                // over the first ~200 iterations and stays there.
                let decay =
                    T::from_f64(0.9999f64.powi(self.iteration as i32)).max(T::from_f64(0.98));
                self.mu_max * decay
            } else {
                self.mu_max
            }
        } else {
            self.mu_min.max(self.mu_max.powf(T::ONE - p))
        };
        self.lambda *= mu;
        self.iteration += 1;
        self.lambda
    }
}

/// Exponential `gamma` ramp driven by the density overflow, after ePlace:
/// `gamma(tau) = base_bins * bin_size * 10^{k * tau + b}` with
/// `k = 20/9, b = -11/9`, so `gamma` shrinks by two decades as overflow
/// falls from 1.0 to 0.1 and the WA model sharpens toward HPWL.
#[derive(Debug, Clone)]
pub struct GammaScheduler<T> {
    scale: T,
}

impl<T: Float> GammaScheduler<T> {
    /// Creates the schedule for the given bin size (layout units) and base
    /// coefficient in bins.
    ///
    /// # Panics
    ///
    /// Panics if the resulting scale is not strictly positive.
    pub fn new(bin_size: T, base_bins: f64) -> Self {
        let scale = bin_size * T::from_f64(base_bins);
        assert!(scale > T::ZERO, "gamma scale must be positive");
        Self { scale }
    }

    /// Gamma for the given overflow `tau` (clamped to `[0, 1]`).
    pub fn gamma(&self, overflow: T) -> T {
        let tau = overflow.clamp(T::ZERO, T::ONE);
        let k = T::from_f64(20.0 / 9.0);
        let b = T::from_f64(-11.0 / 9.0);
        self.scale * (k * tau + b).exp10()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn lambda_grows_on_improvement() {
        let mut s = DensityWeightScheduler::<f64>::new(1.0, 0.95, 1.05, 100.0, false);
        let l = s.update(-10.0);
        assert!((l - 1.05).abs() < 1e-12);
    }

    #[test]
    fn lambda_shrinks_on_large_hpwl_blowup() {
        let mut s = DensityWeightScheduler::<f64>::new(1.0, 0.95, 1.05, 100.0, false);
        // p = 5 => mu = max(0.95, 1.05^-4) < 1
        let l = s.update(500.0);
        assert!(l < 1.0);
        assert!(l >= 0.95);
    }

    #[test]
    fn tcad_stabilization_caps_mu_at_103_percent_late() {
        let mut s = DensityWeightScheduler::<f64>::new(1.0, 0.95, 1.05, 100.0, true);
        // Warm up past iteration 200.
        for _ in 0..300 {
            let _ = s.update(-1.0);
        }
        let before = s.lambda();
        let after = s.update(-1.0);
        let mu = after / before;
        assert!((mu - 1.05 * 0.98).abs() < 1e-6, "late mu = {mu}");
    }

    #[test]
    fn tcad_mu_starts_at_full_mu_max() {
        let mut s = DensityWeightScheduler::<f64>::new(1.0, 0.95, 1.05, 100.0, true);
        let l = s.update(-1.0);
        assert!((l - 1.05).abs() < 1e-4);
    }

    #[test]
    fn gamma_ramp_endpoints() {
        let g = GammaScheduler::<f64>::new(2.0, 4.0); // scale = 8
        let hi = g.gamma(1.0);
        let lo = g.gamma(0.1);
        assert!((hi - 80.0).abs() < 1e-9, "{hi}");
        assert!((lo - 0.8).abs() < 1e-9, "{lo}");
        // Monotone in between.
        assert!(g.gamma(0.5) > lo && g.gamma(0.5) < hi);
    }

    #[test]
    fn gamma_clamps_overflow() {
        let g = GammaScheduler::<f64>::new(1.0, 8.0);
        assert_eq!(g.gamma(2.0), g.gamma(1.0));
        assert_eq!(g.gamma(-1.0), g.gamma(0.0));
    }
}
