//! Global placement configuration.

use std::error::Error;
use std::fmt;

use dp_density::{DctBackendKind, DensityStrategy};
use dp_netlist::Netlist;
use dp_num::Float;
use dp_wirelength::WaStrategy;

/// Which smooth wirelength model drives the optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WirelengthModel {
    /// Weighted-average (paper Eq. (3)) with the given kernel strategy.
    Wa(WaStrategy),
    /// Log-sum-exp (the alternate model of §III-A).
    Lse,
}

/// The gradient-descent engine (paper §III-D, Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverKind {
    /// Nesterov with Lipschitz line search (ePlace/RePlAce default).
    Nesterov,
    /// Adam with the given learning rate and per-step decay.
    Adam {
        /// Initial learning rate (in layout units per unit gradient).
        lr: f64,
        /// Multiplicative learning-rate decay per iteration.
        decay: f64,
    },
    /// SGD with momentum, same knobs as Adam.
    SgdMomentum {
        /// Initial learning rate.
        lr: f64,
        /// Multiplicative learning-rate decay per iteration.
        decay: f64,
    },
    /// Nonlinear conjugate gradient.
    ConjugateGradient,
}

/// Initial placement mode (paper Fig. 2(b) and §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitKind {
    /// DREAMPlace style: all movable cells at the region center plus a
    /// small Gaussian noise (0.1% of region extent by default).
    RandomCenter,
    /// RePlAce-baseline style: additionally run a wirelength-only
    /// optimization of the given iteration count, emulating the
    /// bound-to-bound quadratic initial placement stage whose runtime the
    /// paper measures at 25-30% of GP (§IV-A).
    WirelengthOnly {
        /// Number of wirelength-only iterations.
        iters: usize,
    },
}

/// Error raised by global placement.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// The bin grid shape was rejected by the transform plans.
    Transform(dp_dct::TransformError),
    /// The objective became non-finite (diverged).
    Diverged {
        /// Iteration at which divergence was detected.
        iteration: usize,
    },
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::Transform(e) => write!(f, "bin grid rejected: {e}"),
            GpError::Diverged { iteration } => {
                write!(f, "objective diverged at iteration {iteration}")
            }
        }
    }
}

impl Error for GpError {}

impl From<dp_dct::TransformError> for GpError {
    fn from(e: dp_dct::TransformError) -> Self {
        GpError::Transform(e)
    }
}

/// Full configuration of the global placer.
///
/// Use [`GpConfig::auto`] for sensible defaults derived from the design
/// size, then override fields as needed.
#[derive(Debug, Clone)]
pub struct GpConfig<T> {
    /// Bin grid dimensions (powers of two).
    pub bins: (usize, usize),
    /// Target density `d_t` of paper Eq. (1b).
    pub target_density: T,
    /// Stop when overflow `tau` drops to this value (RePlAce uses ~0.07).
    pub target_overflow: T,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Minimum iterations before the stop check.
    pub min_iters: usize,
    /// Wirelength model and kernel strategy.
    pub wirelength: WirelengthModel,
    /// Density scatter strategy.
    pub density_strategy: DensityStrategy,
    /// DCT tier for the spectral solver.
    pub dct_backend: DctBackendKind,
    /// Solver engine.
    pub solver: SolverKind,
    /// Initialization mode.
    pub init: InitKind,
    /// RNG seed for the initial noise.
    pub seed: u64,
    /// Initial-noise sigma as a fraction of the region extent (paper: 0.1%).
    pub noise_frac: f64,
    /// Worker threads for the kernels.
    pub threads: usize,
    /// Density-weight scheduler: `mu_min` (paper: 0.95).
    pub mu_min: f64,
    /// Density-weight scheduler: `mu_max` (paper: 1.05).
    pub mu_max: f64,
    /// Reference `Delta HPWL` of Eq. (18); `None` derives it as 0.5% of the
    /// initial HPWL (the paper's 3.5e5 is absolute for contest-scale
    /// designs).
    pub ref_delta_hpwl: Option<T>,
    /// Apply the TCAD extension's stabilization
    /// (`mu <- mu_max * max(0.9999^k, 0.98)` when `p < 0`, §III-C).
    pub tcad_mu_stabilization: bool,
    /// Update `lambda` every this many iterations (1 normally; the
    /// routability flow slows it to 5, §III-F).
    pub lambda_update_interval: usize,
    /// Gamma schedule base coefficient, in bins (ePlace uses 8.0).
    pub gamma_base_bins: f64,
    /// Optional fence regions (paper §III-G): one electric field per
    /// region plus a default field.
    pub fence: Option<crate::fence::FenceSpec<T>>,
}

impl<T: Float> GpConfig<T> {
    /// Defaults derived from the design: bin grid near `sqrt(#movable)`
    /// per dimension (power of two, clamped to `[16, 1024]`).
    pub fn auto(netlist: &Netlist<T>) -> Self {
        let m = Self::auto_bins(netlist.num_movable());
        Self {
            bins: (m, m),
            target_density: T::ONE,
            target_overflow: T::from_f64(0.07),
            max_iters: 1000,
            min_iters: 20,
            wirelength: WirelengthModel::Wa(WaStrategy::Merged),
            density_strategy: DensityStrategy::SortedSubthreads { tx: 2, ty: 2 },
            dct_backend: DctBackendKind::Direct2d,
            solver: SolverKind::Nesterov,
            init: InitKind::RandomCenter,
            seed: 1,
            noise_frac: 0.001,
            threads: 1,
            mu_min: 0.95,
            mu_max: 1.05,
            ref_delta_hpwl: None,
            tcad_mu_stabilization: true,
            lambda_update_interval: 1,
            gamma_base_bins: 4.0,
            fence: None,
        }
    }

    /// Power-of-two bin count per dimension near `sqrt(n)`, in `[16, 1024]`.
    pub fn auto_bins(num_movable: usize) -> usize {
        let target = (num_movable as f64).sqrt();
        let mut m = 16usize;
        while (m as f64) < target && m < 1024 {
            m <<= 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_netlist::NetlistBuilder;

    #[test]
    fn auto_bins_scales_with_design() {
        assert_eq!(GpConfig::<f64>::auto_bins(100), 16);
        assert_eq!(GpConfig::<f64>::auto_bins(1000), 32);
        assert_eq!(GpConfig::<f64>::auto_bins(100_000), 512);
        assert_eq!(GpConfig::<f64>::auto_bins(100_000_000), 1024);
    }

    #[test]
    fn auto_config_is_sane() {
        let mut b = NetlistBuilder::<f64>::new(0.0, 0.0, 100.0, 100.0);
        let a = b.add_movable_cell(1.0, 1.0);
        let c = b.add_movable_cell(1.0, 1.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let cfg = GpConfig::auto(&nl);
        assert_eq!(cfg.bins, (16, 16));
        assert!(cfg.target_overflow > 0.0);
        assert_eq!(cfg.lambda_update_interval, 1);
    }
}
