//! Global placement configuration.

use std::error::Error;
use std::fmt;

use dp_density::{DctBackendKind, DensityStrategy};
use dp_netlist::Netlist;
use dp_num::Float;
use dp_wirelength::WaStrategy;

/// Which smooth wirelength model drives the optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WirelengthModel {
    /// Weighted-average (paper Eq. (3)) with the given kernel strategy.
    Wa(WaStrategy),
    /// Log-sum-exp (the alternate model of §III-A).
    Lse,
}

/// The gradient-descent engine (paper §III-D, Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverKind {
    /// Nesterov with Lipschitz line search (ePlace/RePlAce default).
    Nesterov,
    /// Adam with the given learning rate and per-step decay.
    Adam {
        /// Initial learning rate (in layout units per unit gradient).
        lr: f64,
        /// Multiplicative learning-rate decay per iteration.
        decay: f64,
    },
    /// SGD with momentum, same knobs as Adam.
    SgdMomentum {
        /// Initial learning rate.
        lr: f64,
        /// Multiplicative learning-rate decay per iteration.
        decay: f64,
    },
    /// Nonlinear conjugate gradient.
    ConjugateGradient,
}

/// Initial placement mode (paper Fig. 2(b) and §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitKind {
    /// DREAMPlace style: all movable cells at the region center plus a
    /// small Gaussian noise (0.1% of region extent by default).
    RandomCenter,
    /// RePlAce-baseline style: additionally run a wirelength-only
    /// optimization of the given iteration count, emulating the
    /// bound-to-bound quadratic initial placement stage whose runtime the
    /// paper measures at 25-30% of GP (§IV-A).
    WirelengthOnly {
        /// Number of wirelength-only iterations.
        iters: usize,
    },
}

/// What tripped the divergence detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceCause {
    /// The objective value became NaN or infinite.
    NonFiniteCost,
    /// The gradient contained a NaN or infinity (its infinity norm is
    /// poisoned by any non-finite component).
    NonFiniteGradient,
    /// The solver produced a non-finite coordinate (checked before the
    /// operators touch the iterate, which assume finite positions).
    NonFinitePosition,
    /// The exact HPWL or overflow of the iterate became non-finite.
    NonFiniteHpwl,
    /// The density overflow climbed far above the best value seen, the
    /// signature of an exploding density weight.
    OverflowExplosion,
}

impl fmt::Display for DivergenceCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceCause::NonFiniteCost => write!(f, "non-finite cost"),
            DivergenceCause::NonFiniteGradient => write!(f, "non-finite gradient"),
            DivergenceCause::NonFinitePosition => write!(f, "non-finite cell position"),
            DivergenceCause::NonFiniteHpwl => write!(f, "non-finite wirelength or overflow"),
            DivergenceCause::OverflowExplosion => write!(f, "density overflow exploded"),
        }
    }
}

/// Checkpoint/rollback policy for divergence recovery.
///
/// Every `checkpoint_interval` healthy iterations the engine snapshots the
/// positions, the solver state, and the `lambda` scheduler. When the
/// divergence tripwire fires, the run rolls back to the last checkpoint,
/// multiplies `lambda` by `lambda_backoff`, relaxes `gamma` by
/// `gamma_relax`, and retries — up to `max_recoveries` times before
/// surfacing [`GpError::Diverged`] with the best placement seen.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Iterations between checkpoints (0 disables re-checkpointing; the
    /// initial state is always checkpointed).
    pub checkpoint_interval: usize,
    /// Rollback attempts before giving up.
    pub max_recoveries: usize,
    /// Multiplier applied to the density weight on each rollback (< 1);
    /// compounds across rollbacks within a run.
    pub lambda_backoff: f64,
    /// Multiplier applied to the smoothing `gamma` on each rollback (> 1);
    /// a smoother objective is easier to descend.
    pub gamma_relax: f64,
    /// Trip when overflow exceeds this multiple of the best overflow seen
    /// (and exceeds it by at least 0.1 absolute). `f64::INFINITY` disables
    /// the explosion tripwire.
    pub overflow_explosion: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            checkpoint_interval: 25,
            max_recoveries: 3,
            lambda_backoff: 0.5,
            gamma_relax: 2.0,
            overflow_explosion: 2.0,
        }
    }
}

/// Deliberate fault injection for recovery testing. Empty means no faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Main-loop objective evaluations (0-based, counting every solver
    /// eval including line-search probes) whose gradient is poisoned with
    /// NaN after computation.
    pub nan_grad_evals: Vec<usize>,
}

/// Error raised by global placement.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError<T> {
    /// The bin grid was rejected (unsupported shape or a placement region
    /// with no area).
    Grid(dp_density::GridError),
    /// The objective diverged and the recovery budget is exhausted.
    Diverged {
        /// Iteration at which the final divergence was detected.
        iteration: usize,
        /// What tripped the detector.
        cause: DivergenceCause,
        /// Rollback attempts performed before giving up.
        recoveries: usize,
        /// Best (lowest-overflow) placement seen before divergence; the
        /// initial placement if no iteration completed healthily.
        best: Box<dp_netlist::Placement<T>>,
        /// Overflow of `best` (`f64::INFINITY` if none was measured).
        best_overflow: f64,
        /// Execution-layer counters of the aborted run, so the flow can
        /// fold its kernel time into whatever retry follows (per-op nanos
        /// must survive rollback restarts).
        exec: dp_autograd::ExecSummary,
    },
    /// A checkpointed engine state could not be reinstated (solver kind or
    /// vector shapes disagree with the configuration/netlist).
    Resume {
        /// What was inconsistent.
        reason: String,
    },
}

impl<T> fmt::Display for GpError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::Grid(e) => write!(f, "bin grid rejected: {e}"),
            GpError::Diverged {
                iteration,
                cause,
                recoveries,
                best_overflow,
                ..
            } => {
                write!(
                    f,
                    "objective diverged at iteration {iteration} ({cause}) \
                     after {recoveries} recoveries; best-so-far overflow {best_overflow}"
                )
            }
            GpError::Resume { reason } => {
                write!(f, "engine state cannot be resumed: {reason}")
            }
        }
    }
}

impl<T: fmt::Debug> Error for GpError<T> {}

impl<T> From<dp_density::GridError> for GpError<T> {
    fn from(e: dp_density::GridError) -> Self {
        GpError::Grid(e)
    }
}

impl<T> From<dp_dct::TransformError> for GpError<T> {
    fn from(e: dp_dct::TransformError) -> Self {
        GpError::Grid(dp_density::GridError::Transform(e))
    }
}

/// How the engine obtains its execution context (worker pool ownership).
///
/// The original model is [`ExecBinding::Owned`]: every run spawns its own
/// [`dp_num::WorkerPool`] of [`GpConfig::threads`] workers and keeps it for
/// the run's lifetime. Under the shared-pool scheduler the run instead
/// executes as one tenant of a host-owned pool ([`ExecBinding::Shared`]):
/// kernels launch on the same OS threads as every other job, with the
/// scheduler holding the tenant's [`dp_num::PoolLease`] around each step.
/// Sharing changes no bits — the launch chunking depends only on the
/// thread count, so [`GpConfig::threads`] must equal the shared pool's
/// width (the scheduler enforces this).
#[derive(Clone, Default)]
pub enum ExecBinding {
    /// The run spawns and owns its pool (the classic model).
    #[default]
    Owned,
    /// The run executes as a tenant of a shared pool.
    Shared(std::sync::Arc<dp_num::PoolTenant>),
}

impl fmt::Debug for ExecBinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecBinding::Owned => write!(f, "Owned"),
            ExecBinding::Shared(t) => write!(f, "Shared(threads={})", t.threads()),
        }
    }
}

impl ExecBinding {
    /// Builds the engine's execution context for this binding: a fresh
    /// pool of `threads` workers when owned, a tenant context on the
    /// shared pool otherwise. The telemetry sink is attached either way.
    pub fn make_ctx<T: Float>(
        &self,
        threads: usize,
        telemetry: dp_telemetry::Telemetry,
    ) -> dp_autograd::ExecCtx<T> {
        match self {
            ExecBinding::Owned => dp_autograd::ExecCtx::with_telemetry(threads, telemetry),
            ExecBinding::Shared(tenant) => {
                let mut ctx = dp_autograd::ExecCtx::with_tenant(std::sync::Arc::clone(tenant));
                ctx.set_telemetry(telemetry);
                ctx
            }
        }
    }
}

/// Full configuration of the global placer.
///
/// Use [`GpConfig::auto`] for sensible defaults derived from the design
/// size, then override fields as needed.
#[derive(Debug, Clone)]
pub struct GpConfig<T> {
    /// Bin grid dimensions (powers of two).
    pub bins: (usize, usize),
    /// Target density `d_t` of paper Eq. (1b).
    pub target_density: T,
    /// Stop when overflow `tau` drops to this value (RePlAce uses ~0.07).
    pub target_overflow: T,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Minimum iterations before the stop check.
    pub min_iters: usize,
    /// Wall-clock budget in seconds (`None` = unbounded). When exceeded,
    /// the run stops at the current iterate like an iteration-cap stop —
    /// a stage guard for the flow, never an error.
    pub max_seconds: Option<f64>,
    /// Wirelength model and kernel strategy.
    pub wirelength: WirelengthModel,
    /// Density scatter strategy.
    pub density_strategy: DensityStrategy,
    /// DCT tier for the spectral solver.
    pub dct_backend: DctBackendKind,
    /// Solver engine.
    pub solver: SolverKind,
    /// Initialization mode.
    pub init: InitKind,
    /// RNG seed for the initial noise.
    pub seed: u64,
    /// Initial-noise sigma as a fraction of the region extent (paper: 0.1%).
    pub noise_frac: f64,
    /// Worker threads for the kernels. [`GpConfig::auto`] defaults to
    /// [`dp_num::default_threads`] (the `DP_THREADS` env override, else the
    /// machine's available parallelism).
    pub threads: usize,
    /// Density-weight scheduler: `mu_min` (paper: 0.95).
    pub mu_min: f64,
    /// Density-weight scheduler: `mu_max` (paper: 1.05).
    pub mu_max: f64,
    /// Reference `Delta HPWL` of Eq. (18); `None` derives it as 0.5% of the
    /// initial HPWL (the paper's 3.5e5 is absolute for contest-scale
    /// designs).
    pub ref_delta_hpwl: Option<T>,
    /// Apply the TCAD extension's stabilization
    /// (`mu <- mu_max * max(0.9999^k, 0.98)` when `p < 0`, §III-C).
    pub tcad_mu_stabilization: bool,
    /// Update `lambda` every this many iterations (1 normally; the
    /// routability flow slows it to 5, §III-F).
    pub lambda_update_interval: usize,
    /// Gamma schedule base coefficient, in bins (ePlace uses 8.0).
    pub gamma_base_bins: f64,
    /// Optional fence regions (paper §III-G): one electric field per
    /// region plus a default field.
    pub fence: Option<crate::fence::FenceSpec<T>>,
    /// Checkpoint/rollback policy for divergence recovery.
    pub recovery: RecoveryPolicy,
    /// Fault injection for recovery testing (empty = no faults).
    pub fault_injection: FaultInjection,
    /// Density accumulation mode: `None` picks fixed-point bins whenever
    /// `threads > 1` (multithreaded float atomics are order-dependent),
    /// `Some(true)` forces fixed-point even serially — which makes runs
    /// bit-identical *across thread counts*, the contract the determinism
    /// replayer in `dp-check` verifies — and `Some(false)` forces float
    /// accumulation (serial benchmarking of the non-quantized path).
    pub deterministic: Option<bool>,
    /// Telemetry sink for spans, convergence traces, and kernel timers.
    /// Disabled by default; never touches the numerics either way.
    pub telemetry: dp_telemetry::Telemetry,
    /// Worker-pool ownership: run-owned (default) or shared-pool tenant.
    pub exec: ExecBinding,
}

impl<T: Float> GpConfig<T> {
    /// Defaults derived from the design: bin grid near `sqrt(#movable)`
    /// per dimension (power of two, clamped to `[16, 1024]`).
    pub fn auto(netlist: &Netlist<T>) -> Self {
        let m = Self::auto_bins(netlist.num_movable());
        Self {
            bins: (m, m),
            target_density: T::ONE,
            target_overflow: T::from_f64(0.07),
            max_iters: 1000,
            min_iters: 20,
            max_seconds: None,
            wirelength: WirelengthModel::Wa(WaStrategy::Merged),
            density_strategy: DensityStrategy::SortedSubthreads { tx: 2, ty: 2 },
            dct_backend: DctBackendKind::Direct2d,
            solver: SolverKind::Nesterov,
            init: InitKind::RandomCenter,
            seed: 1,
            noise_frac: 0.001,
            threads: dp_num::default_threads(),
            mu_min: 0.95,
            mu_max: 1.05,
            ref_delta_hpwl: None,
            tcad_mu_stabilization: true,
            lambda_update_interval: 1,
            gamma_base_bins: 4.0,
            fence: None,
            recovery: RecoveryPolicy::default(),
            fault_injection: FaultInjection::default(),
            deterministic: None,
            telemetry: dp_telemetry::Telemetry::disabled(),
            exec: ExecBinding::default(),
        }
    }

    /// Power-of-two bin count per dimension near `sqrt(n)`, in `[16, 1024]`.
    pub fn auto_bins(num_movable: usize) -> usize {
        let target = (num_movable as f64).sqrt();
        let mut m = 16usize;
        while (m as f64) < target && m < 1024 {
            m <<= 1;
        }
        m
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::NetlistBuilder;

    #[test]
    fn auto_bins_scales_with_design() {
        assert_eq!(GpConfig::<f64>::auto_bins(100), 16);
        assert_eq!(GpConfig::<f64>::auto_bins(1000), 32);
        assert_eq!(GpConfig::<f64>::auto_bins(100_000), 512);
        assert_eq!(GpConfig::<f64>::auto_bins(100_000_000), 1024);
    }

    #[test]
    fn auto_config_is_sane() {
        let mut b = NetlistBuilder::<f64>::new(0.0, 0.0, 100.0, 100.0);
        let a = b.add_movable_cell(1.0, 1.0);
        let c = b.add_movable_cell(1.0, 1.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let cfg = GpConfig::auto(&nl);
        assert_eq!(cfg.bins, (16, 16));
        assert!(cfg.target_overflow > 0.0);
        assert_eq!(cfg.lambda_update_interval, 1);
    }
}
