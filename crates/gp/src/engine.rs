//! The global placement main loop, structured as a steppable engine.
//!
//! [`GpEngine`] owns every piece of loop state (operators, solver, the
//! scheduler pair, recovery bookkeeping) and advances one kernel iteration
//! per [`GpEngine::step`] call. [`GlobalPlacer::place_from`] is a thin loop
//! over `step()`, so a driver that wants to interleave work between
//! iterations — the flow state machine, a service daemon, a durable
//! checkpointer — gets the exact same trajectory as the one-shot API.
//!
//! [`GpEngine::state`] captures the complete mutable state as a plain-data
//! [`GpEngineState`] and [`GpEngine::resume`] reinstates it: a run resumed
//! from a captured state is bit-identical to one that never stopped
//! (wall-clock phase attribution aside). That contract is what the durable
//! checkpoint layer in `dreamplace-core` persists to disk.

use std::time::{Duration, Instant};

use dp_autograd::{ExecCtx, ExecSummary, Gradient, Operator};
use dp_density::{BinGrid, DensityOp};
use dp_netlist::{hpwl, Netlist, Placement};
use dp_num::Float;
use dp_optim::{
    Adam, ConjugateGradient, NesterovOptimizer, ObjectiveFn, Optimizer, OptimizerSnapshot,
    SgdMomentum,
};
use dp_wirelength::{LseWirelength, WaWirelength};

use crate::config::{DivergenceCause, GpConfig, GpError, InitKind, SolverKind, WirelengthModel};
use crate::fence::FencedDensityOp;
use crate::init::initial_placement;
use crate::scheduler::{DensityWeightScheduler, GammaScheduler};

/// One iteration's diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Exact HPWL at this iterate.
    pub hpwl: f64,
    /// Density overflow `tau`.
    pub overflow: f64,
    /// Density weight `lambda`.
    pub lambda: f64,
    /// WA/LSE smoothing `gamma`.
    pub gamma: f64,
}

/// Wall-clock spent per phase, for the paper's breakdown figures.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpTiming {
    /// Initial placement (including the wirelength-only stage in
    /// RePlAce-baseline mode).
    pub init: Duration,
    /// Wirelength forward+backward.
    pub wirelength: Duration,
    /// Density forward+backward (including DCT).
    pub density: Duration,
    /// Solver arithmetic (everything inside `step` minus operator time).
    pub solver: Duration,
    /// HPWL/overflow bookkeeping and schedulers.
    pub bookkeeping: Duration,
    /// End-to-end global placement time.
    pub total: Duration,
}

/// One divergence-recovery rollback, as recorded in [`GpStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Iteration at which the tripwire fired.
    pub iteration: usize,
    /// Checkpoint iteration the run rolled back to.
    pub resumed_from: usize,
    /// What tripped the detector.
    pub cause: DivergenceCause,
    /// Density weight after the backoff.
    pub lambda: f64,
    /// Cumulative gamma relaxation factor after this rollback.
    pub gamma_boost: f64,
}

/// Summary of a global placement run.
#[derive(Debug, Clone)]
pub struct GpStats {
    /// Number of kernel GP iterations executed.
    pub iterations: usize,
    /// Exact HPWL of the final placement.
    pub final_hpwl: f64,
    /// Final density overflow.
    pub final_overflow: f64,
    /// Whether the overflow target was reached (vs. iteration cap).
    pub converged: bool,
    /// Per-iteration history.
    pub history: Vec<IterRecord>,
    /// Phase timing.
    pub timing: GpTiming,
    /// Number of divergence rollbacks performed.
    pub recoveries: usize,
    /// One record per rollback, in order.
    pub recovery_events: Vec<RecoveryEvent>,
    /// Execution-layer counters: pool spawns/runs, per-op totals, and
    /// workspace reuse, from the run's [`ExecCtx`].
    pub exec: ExecSummary,
}

/// Result of global placement: coordinates plus statistics.
#[derive(Debug, Clone)]
pub struct GpResult<T> {
    /// Final cell-center coordinates (movable cells spread, fixed intact).
    pub placement: Placement<T>,
    /// Run statistics.
    pub stats: GpStats,
}

/// The global placer; construct with a [`GpConfig`] and call
/// [`GlobalPlacer::place`]. See the [crate example](crate).
pub struct GlobalPlacer<T> {
    config: GpConfig<T>,
}

/// The density model: single electric field, or one per fence region.
/// One instance exists per placement run; variant size is irrelevant.
#[allow(clippy::large_enum_variant)]
enum DensityModel<T: Float> {
    Single(DensityOp<T>),
    Fenced(FencedDensityOp<T>),
}

impl<T: Float> DensityModel<T> {
    fn bake_fixed(&mut self, nl: &Netlist<T>, p: &Placement<T>) {
        match self {
            DensityModel::Single(op) => op.bake_fixed(nl, p),
            DensityModel::Fenced(op) => op.bake_fixed(nl, p),
        }
    }

    fn overflow(&mut self, nl: &Netlist<T>, p: &Placement<T>, ctx: &mut ExecCtx<T>) -> T {
        match self {
            DensityModel::Single(op) => op.overflow(nl, p, ctx),
            DensityModel::Fenced(op) => op.overflow(nl, p, ctx),
        }
    }

    fn forward_backward(
        &mut self,
        nl: &Netlist<T>,
        p: &Placement<T>,
        g: &mut Gradient<T>,
        ctx: &mut ExecCtx<T>,
    ) -> T {
        match self {
            DensityModel::Single(op) => op.forward_backward(nl, p, g, ctx),
            DensityModel::Fenced(op) => op.forward_backward(nl, p, g, ctx),
        }
    }
}

/// The smooth wirelength operator behind the configured model.
/// One instance exists per placement run; variant size is irrelevant.
#[allow(clippy::large_enum_variant)]
enum WlOp<T: Float> {
    Wa(WaWirelength<T>),
    Lse(LseWirelength<T>),
}

impl<T: Float> WlOp<T> {
    fn set_gamma(&mut self, gamma: T) {
        match self {
            WlOp::Wa(op) => op.set_gamma(gamma),
            WlOp::Lse(op) => op.set_gamma(gamma),
        }
    }

    fn forward_backward(
        &mut self,
        nl: &Netlist<T>,
        p: &Placement<T>,
        g: &mut Gradient<T>,
        ctx: &mut ExecCtx<T>,
    ) -> T {
        match self {
            WlOp::Wa(op) => op.forward_backward(nl, p, g, ctx),
            WlOp::Lse(op) => op.forward_backward(nl, p, g, ctx),
        }
    }
}

/// Objective adapter: flat params `[x_mov..., y_mov...]` to operators, with
/// Jacobi preconditioning and per-phase timing. Borrows all of its state
/// from the engine so it can be rebuilt (for free) every step.
struct PlacementObjective<'a, T: Float> {
    nl: &'a Netlist<T>,
    wl: &'a mut WlOp<T>,
    density: &'a mut DensityModel<T>,
    /// The run's execution context: worker pool, workspaces, counters.
    ctx: &'a mut ExecCtx<T>,
    lambda: T,
    pos: &'a mut Placement<T>,
    grad: &'a mut Gradient<T>,
    /// Reused density-gradient accumulator (allocated once per run).
    dgrad: &'a mut Gradient<T>,
    /// Precomputed `#pins` per movable cell (wirelength preconditioner).
    pin_counts: &'a [T],
    /// Precomputed charge per movable cell (density preconditioner).
    charges: &'a [T],
    /// Eval indices whose gradient is poisoned (fault injection).
    faults: &'a [usize],
    t_wl: &'a mut Duration,
    t_density: &'a mut Duration,
    evals: &'a mut usize,
}

impl<'a, T: Float> PlacementObjective<'a, T> {
    fn unpack(&mut self, params: &[T]) {
        let n = self.nl.num_movable();
        self.pos.x[..n].copy_from_slice(&params[..n]);
        self.pos.y[..n].copy_from_slice(&params[n..]);
    }
}

impl<'a, T: Float> ObjectiveFn<T> for PlacementObjective<'a, T> {
    fn eval(&mut self, params: &[T], grad_out: &mut [T]) -> T {
        let n = self.nl.num_movable();
        let eval_idx = *self.evals;
        *self.evals += 1;

        // A solver that consumed a poisoned gradient may probe a
        // non-finite iterate within the same step, before the engine's
        // tripwire sees it. The kernels assume finite geometry, so answer
        // with a non-finite objective instead of evaluating them.
        if !params.iter().all(|v| v.is_finite()) {
            let nan = T::from_f64(f64::NAN);
            grad_out.iter_mut().for_each(|g| *g = nan);
            return nan;
        }

        self.unpack(params);
        self.grad.reset();

        let t0 = Instant::now();
        let wl_cost = self
            .wl
            .forward_backward(self.nl, self.pos, self.grad, self.ctx);
        *self.t_wl += t0.elapsed();

        let t1 = Instant::now();
        self.dgrad.reset();
        let d_cost = self
            .density
            .forward_backward(self.nl, self.pos, self.dgrad, self.ctx);
        self.grad.axpy(self.lambda, self.dgrad);
        *self.t_density += t1.elapsed();

        // Jacobi preconditioning: divide by the diagonal Hessian proxy
        // (#pins + lambda * charge), the ePlace/DREAMPlace conditioner.
        for i in 0..n {
            let precond = (self.pin_counts[i] + self.lambda * self.charges[i]).max(T::ONE);
            grad_out[i] = self.grad.x[i] / precond;
            grad_out[n + i] = self.grad.y[i] / precond;
        }
        if self.faults.contains(&eval_idx) && !grad_out.is_empty() {
            grad_out[0] = T::from_f64(f64::NAN);
        }
        wl_cost + self.lambda * d_cost
    }
}

/// Everything needed to roll the run back to a known-good iterate — the
/// in-memory rollback target of the divergence-recovery tripwire, and part
/// of the durable [`GpEngineState`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpRollbackState<T> {
    /// Iteration count at capture time (0 = initial state).
    pub iteration: usize,
    /// Flat parameter vector at capture time.
    pub params: Vec<T>,
    /// Solver state at capture time.
    pub solver: OptimizerSnapshot<T>,
    /// Lambda-scheduler weight at capture time.
    pub sched_lambda: T,
    /// Lambda-scheduler update counter at capture time.
    pub sched_iteration: usize,
    /// `lambda` as applied in the objective at capture time (the scheduler
    /// may lag it by up to `lambda_update_interval` iterations).
    pub lambda: T,
    /// HPWL reference for the next scheduler update.
    pub prev_hpwl: T,
    /// History length at capture time (rollback truncates to it).
    pub history_len: usize,
    /// Overflow at capture time (1.0 for the initial checkpoint).
    pub overflow: f64,
}

/// Complete plain-data snapshot of a [`GpEngine`] mid-run.
///
/// Captured by [`GpEngine::state`]; [`GpEngine::resume`] reconstructs an
/// engine that continues bit-identically. The durable checkpoint format in
/// `dreamplace-core` serializes exactly this struct.
#[derive(Debug, Clone)]
pub struct GpEngineState<T> {
    /// Next iteration index to execute.
    pub next_iter: usize,
    /// Iterations executed so far (`k + 1` of the last executed step).
    pub iterations: usize,
    /// Objective evaluations performed (drives fault injection replay).
    pub evals: usize,
    /// Current flat parameter vector.
    pub params: Vec<T>,
    /// Lowest-overflow parameter vector seen.
    pub best_params: Vec<T>,
    /// Overflow of `best_params` (`inf` if none measured yet).
    pub best_overflow: f64,
    /// Solver state.
    pub solver: OptimizerSnapshot<T>,
    /// Density weight currently applied in the objective.
    pub lambda: T,
    /// Smoothing gamma currently applied in the wirelength model.
    pub gamma: T,
    /// Cumulative gamma relaxation across rollbacks.
    pub gamma_boost: T,
    /// Cumulative lambda backoff across rollbacks.
    pub lambda_cut: T,
    /// Lambda-scheduler weight.
    pub sched_lambda: T,
    /// Lambda-scheduler update counter.
    pub sched_iteration: usize,
    /// Reference `Delta HPWL` the scheduler was built with (derived from
    /// the initial HPWL, which a resumed run can no longer recompute).
    pub ref_delta: T,
    /// HPWL reference for the next scheduler update.
    pub prev_hpwl: T,
    /// Divergence rollbacks performed.
    pub recoveries: usize,
    /// One record per rollback, in order.
    pub recovery_events: Vec<RecoveryEvent>,
    /// Per-iteration history up to the capture point.
    pub history: Vec<IterRecord>,
    /// The in-run rollback target.
    pub rollback: GpRollbackState<T>,
    /// Wall-clock seconds consumed by the run up to the capture point
    /// (across all processes — feeds the `max_seconds` budget on resume).
    pub consumed_seconds: f64,
    /// Cumulative execution-layer counters up to the capture point.
    pub exec: ExecSummary,
}

/// What one [`GpEngine::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpStepOutcome {
    /// One iteration (or one rollback) ran; the run continues.
    Continue,
    /// The overflow target was reached; the run is done.
    Converged,
    /// The iteration cap was reached; the run is done.
    IterationCap,
    /// The wall-clock budget was exhausted; the run is done (a stage
    /// guard, never an error).
    BudgetStop,
}

impl GpStepOutcome {
    /// True when the run finished (by any stopping rule).
    pub fn is_done(self) -> bool {
        !matches!(self, GpStepOutcome::Continue)
    }
}

/// Overflow-explosion tripwire: fires when overflow exceeds `factor` times
/// the best value seen and has climbed by at least 0.1 absolute.
fn overflow_exploded(overflow: f64, best: f64, factor: f64) -> bool {
    best.is_finite() && overflow > best * factor && overflow > best + 0.1
}

fn make_solver<T: Float>(kind: SolverKind, n: usize, initial_step: T) -> Box<dyn Optimizer<T>> {
    match kind {
        SolverKind::Nesterov => Box::new(NesterovOptimizer::new(n, initial_step)),
        SolverKind::Adam { lr, decay } => {
            Box::new(Adam::new(n, T::from_f64(lr)).with_decay(T::from_f64(decay)))
        }
        SolverKind::SgdMomentum { lr, decay } => {
            Box::new(SgdMomentum::new(n, T::from_f64(lr)).with_decay(T::from_f64(decay)))
        }
        SolverKind::ConjugateGradient => Box::new(ConjugateGradient::new(n, initial_step)),
    }
}

/// The steppable global placement engine; see the [module docs](self).
pub struct GpEngine<T: Float> {
    cfg: GpConfig<T>,
    ctx: ExecCtx<T>,
    wl: WlOp<T>,
    density: DensityModel<T>,
    gamma_sched: GammaScheduler<T>,
    lambda_sched: DensityWeightScheduler<T>,
    ref_delta: T,
    /// `lambda` as applied in the objective (the scheduler may lag it).
    lambda: T,
    /// Gamma currently applied in the wirelength model.
    gamma_cur: T,
    gamma_boost: T,
    lambda_cut: T,
    /// Position scratch: movable entries overwritten by every unpack,
    /// fixed entries intact from construction.
    pos: Placement<T>,
    grad: Gradient<T>,
    dgrad: Gradient<T>,
    pin_counts: Vec<T>,
    charges: Vec<T>,
    faults: Vec<usize>,
    params: Vec<T>,
    solver: Box<dyn Optimizer<T>>,
    history: Vec<IterRecord>,
    prev_hpwl: T,
    converged: bool,
    iterations: usize,
    next_iter: usize,
    recoveries: usize,
    recovery_events: Vec<RecoveryEvent>,
    best_params: Vec<T>,
    best_overflow: f64,
    rollback: GpRollbackState<T>,
    evals: usize,
    t_wl: Duration,
    t_density: Duration,
    prev_op_time: Duration,
    timing: GpTiming,
    /// Busy time this engine has accumulated: construction plus every
    /// completed `step`. Deliberately *not* wall-clock-since-construction:
    /// under the shared-pool scheduler an engine spends most of its life
    /// parked between turns, and budget accounting must not charge a job
    /// for other jobs' time.
    busy: Duration,
    /// Seconds consumed before this process picked the run up (resume).
    consumed_before: f64,
    /// Exec counters consumed before this engine's own `ExecCtx` existed:
    /// a resumed process's prior life, or an aborted primary attempt whose
    /// counters the fallback run must not lose.
    base_exec: Option<ExecSummary>,
    n: usize,
    finished: Option<GpStepOutcome>,
}

impl<T: Float> GpEngine<T> {
    /// Builds the engine from scratch: initial placement, the optional
    /// wirelength-only stage, and automatic lambda initialization.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::Grid`] for unsupported bin grids.
    pub fn new(
        cfg: GpConfig<T>,
        nl: &Netlist<T>,
        fixed: &Placement<T>,
    ) -> Result<Self, GpError<T>> {
        let pos = initial_placement(nl, fixed, cfg.noise_frac, cfg.seed);
        Self::from_placement(cfg, nl, pos, None)
    }

    /// Builds the engine from an existing placement (used by the
    /// routability loop to restart after cell inflation). `lambda0`
    /// overrides the automatic density-weight initialization when given.
    ///
    /// # Errors
    ///
    /// Same as [`GpEngine::new`].
    pub fn from_placement(
        cfg: GpConfig<T>,
        nl: &Netlist<T>,
        mut pos: Placement<T>,
        lambda0: Option<T>,
    ) -> Result<Self, GpError<T>> {
        let t_start = Instant::now();
        let mut timing = GpTiming::default();

        // The persistent executor: under ExecBinding::Owned worker threads
        // spawn here, once, and every kernel below launches on them; under
        // ExecBinding::Shared the kernels launch on the host's long-lived
        // pool as this run's tenant. The telemetry sink (if enabled)
        // receives mirrored kernel timings and pool busy shards.
        let mut ctx = cfg.exec.make_ctx(cfg.threads, cfg.telemetry.clone());

        let (grid, bin_size, gamma_sched, mut wl, mut density) = Self::build_operators(&cfg, nl)?;
        density.bake_fixed(nl, &pos);

        let n = nl.num_movable();
        let pin_counts: Vec<T> = (0..n)
            .map(|i| T::from_usize(nl.cell_pins(dp_netlist::CellId::new(i)).len()))
            .collect();
        let inv_bin_area = T::ONE / grid.bin_area();
        let charges: Vec<T> = (0..n)
            .map(|i| nl.cell_widths()[i] * nl.cell_heights()[i] * inv_bin_area)
            .collect();

        // --- optional wirelength-only initial stage (RePlAce mode) ------
        let t_init = Instant::now();
        if let InitKind::WirelengthOnly { iters } = cfg.init {
            let mut scratch = pos.clone();
            let mut grad = Gradient::zeros(pos.len());
            let mut params = pack(&pos, n);
            let mut solver = ConjugateGradient::new(2 * n, bin_size);
            let mut wl_only = |p: &[T], g: &mut [T]| -> T {
                scratch.x[..n].copy_from_slice(&p[..n]);
                scratch.y[..n].copy_from_slice(&p[n..]);
                grad.reset();
                let c = wl.forward_backward(nl, &scratch, &mut grad, &mut ctx);
                for i in 0..n {
                    let pre = pin_counts[i].max(T::ONE);
                    g[i] = grad.x[i] / pre;
                    g[n + i] = grad.y[i] / pre;
                }
                c
            };
            for _ in 0..iters {
                let _ = solver.step(&mut wl_only, &mut params);
                clamp_params(&mut params, nl);
            }
            unpack_into(&params, &mut pos, n);
        }
        timing.init = t_init.elapsed();

        // --- lambda initialization --------------------------------------
        let mut g_wl = Gradient::zeros(pos.len());
        let _ = wl.forward_backward(nl, &pos, &mut g_wl, &mut ctx);
        let mut g_d = Gradient::zeros(pos.len());
        let _ = density.forward_backward(nl, &pos, &mut g_d, &mut ctx);
        let wl_norm = g_wl.l1_norm(n);
        let d_norm_raw = g_d.l1_norm(n);
        // A zero density gradient (uniform-field mode on degenerate grids,
        // or an all-zero-area design) must yield lambda = 0, not
        // wl_norm / MIN_POSITIVE: an astronomically large lambda poisons
        // the Jacobi preconditioner and freezes the run.
        let lambda_auto = if d_norm_raw > T::ZERO {
            wl_norm / d_norm_raw.max(T::MIN_POSITIVE)
        } else {
            T::ZERO
        };
        let lambda_init = lambda0.unwrap_or(lambda_auto);

        let hpwl0 = hpwl(nl, &pos);
        let ref_delta = cfg
            .ref_delta_hpwl
            .unwrap_or(hpwl0 * T::from_f64(0.005))
            .max(T::MIN_POSITIVE);
        let lambda_sched = DensityWeightScheduler::new(
            lambda_init,
            cfg.mu_min,
            cfg.mu_max,
            ref_delta,
            cfg.tcad_mu_stabilization,
        );

        let lambda = lambda_sched.lambda();
        let params = pack(&pos, n);
        let solver = make_solver(cfg.solver, 2 * n, bin_size);
        let best_params = params.clone();
        let rollback = GpRollbackState {
            iteration: 0,
            params: params.clone(),
            solver: solver.snapshot(),
            sched_lambda: lambda_sched.lambda(),
            sched_iteration: lambda_sched.iteration(),
            lambda,
            prev_hpwl: hpwl0,
            history_len: 0,
            overflow: 1.0,
        };
        let gamma_cur = gamma_sched.gamma(T::ONE);
        let history = Vec::with_capacity(cfg.max_iters.min(1024));
        let faults = cfg.fault_injection.nan_grad_evals.clone();

        Ok(Self {
            cfg,
            ctx,
            wl,
            density,
            gamma_sched,
            lambda_sched,
            ref_delta,
            lambda,
            gamma_cur,
            gamma_boost: T::ONE,
            lambda_cut: T::ONE,
            grad: Gradient::zeros(pos.len()),
            dgrad: Gradient::zeros(pos.len()),
            pos,
            pin_counts,
            charges,
            faults,
            params,
            solver,
            history,
            prev_hpwl: hpwl0,
            converged: false,
            iterations: 0,
            next_iter: 0,
            recoveries: 0,
            recovery_events: Vec::new(),
            best_params,
            best_overflow: f64::INFINITY,
            rollback,
            evals: 0,
            t_wl: Duration::ZERO,
            t_density: Duration::ZERO,
            prev_op_time: Duration::ZERO,
            timing,
            busy: t_start.elapsed(),
            consumed_before: 0.0,
            base_exec: None,
            n,
        finished: None,
        })
    }

    /// Reconstructs an engine mid-run from a captured [`GpEngineState`].
    ///
    /// `cfg` and `nl` must be the same configuration and netlist the state
    /// was captured under (the durable-checkpoint layer validates this);
    /// `fixed` supplies the fixed-cell coordinates exactly as in
    /// [`GpEngine::new`]. The resumed engine's trajectory is bit-identical
    /// to the uninterrupted run's.
    ///
    /// # Errors
    ///
    /// [`GpError::Grid`] as in [`GpEngine::new`], or [`GpError::Resume`]
    /// when the solver snapshot does not match `cfg.solver`.
    pub fn resume(
        cfg: GpConfig<T>,
        nl: &Netlist<T>,
        fixed: &Placement<T>,
        state: GpEngineState<T>,
    ) -> Result<Self, GpError<T>> {
        let t_start = Instant::now();
        let ctx = cfg.exec.make_ctx(cfg.threads, cfg.telemetry.clone());
        let (grid, bin_size, gamma_sched, mut wl, mut density) = Self::build_operators(&cfg, nl)?;
        density.bake_fixed(nl, fixed);
        wl.set_gamma(state.gamma);

        let n = nl.num_movable();
        if state.params.len() != 2 * n || state.best_params.len() != 2 * n {
            return Err(GpError::Resume {
                reason: format!(
                    "parameter vector length {} does not match 2 x {n} movable cells",
                    state.params.len()
                ),
            });
        }
        let pin_counts: Vec<T> = (0..n)
            .map(|i| T::from_usize(nl.cell_pins(dp_netlist::CellId::new(i)).len()))
            .collect();
        let inv_bin_area = T::ONE / grid.bin_area();
        let charges: Vec<T> = (0..n)
            .map(|i| nl.cell_widths()[i] * nl.cell_heights()[i] * inv_bin_area)
            .collect();

        let mut lambda_sched = DensityWeightScheduler::new(
            state.sched_lambda,
            cfg.mu_min,
            cfg.mu_max,
            state.ref_delta,
            cfg.tcad_mu_stabilization,
        );
        lambda_sched.set_iteration(state.sched_iteration);

        let mut solver = make_solver(cfg.solver, 2 * n, bin_size);
        solver
            .restore(&state.solver)
            .map_err(|e| GpError::Resume {
                reason: e.to_string(),
            })?;

        let faults = cfg.fault_injection.nan_grad_evals.clone();
        Ok(Self {
            cfg,
            ctx,
            wl,
            density,
            gamma_sched,
            lambda_sched,
            ref_delta: state.ref_delta,
            lambda: state.lambda,
            gamma_cur: state.gamma,
            gamma_boost: state.gamma_boost,
            lambda_cut: state.lambda_cut,
            pos: fixed.clone(),
            grad: Gradient::zeros(fixed.len()),
            dgrad: Gradient::zeros(fixed.len()),
            pin_counts,
            charges,
            faults,
            params: state.params,
            solver,
            history: state.history,
            prev_hpwl: state.prev_hpwl,
            converged: false,
            iterations: state.iterations,
            next_iter: state.next_iter,
            recoveries: state.recoveries,
            recovery_events: state.recovery_events,
            best_params: state.best_params,
            best_overflow: state.best_overflow,
            rollback: state.rollback,
            evals: state.evals,
            t_wl: Duration::ZERO,
            t_density: Duration::ZERO,
            prev_op_time: Duration::ZERO,
            timing: GpTiming::default(),
            busy: t_start.elapsed(),
            consumed_before: state.consumed_seconds,
            base_exec: Some(state.exec),
            n,
            finished: None,
        })
    }

    #[allow(clippy::type_complexity)]
    fn build_operators(
        cfg: &GpConfig<T>,
        nl: &Netlist<T>,
    ) -> Result<(BinGrid<T>, T, GammaScheduler<T>, WlOp<T>, DensityModel<T>), GpError<T>> {
        let grid = BinGrid::new(nl.region(), cfg.bins.0, cfg.bins.1)?;
        let bin_size = (grid.bin_width() + grid.bin_height()) * T::HALF;
        let gamma_sched = GammaScheduler::new(bin_size, cfg.gamma_base_bins);
        let gamma0 = gamma_sched.gamma(T::ONE);

        let wl = match cfg.wirelength {
            WirelengthModel::Wa(strategy) => WlOp::Wa(WaWirelength::new(strategy, gamma0)),
            WirelengthModel::Lse => WlOp::Lse(LseWirelength::new(gamma0)),
        };
        // Multithreaded float-atomic scatters are order-dependent; the
        // fixed-point bins keep multi-thread runs bit-reproducible (and
        // thread-count invariant) at a 2^-24 bin-area quantization. The
        // config can force either mode (determinism replay compares a
        // serial run against a multithreaded one, so both must quantize).
        let deterministic = cfg.deterministic.unwrap_or(cfg.threads > 1);
        let density = match &cfg.fence {
            None => DensityModel::Single(
                DensityOp::with_backend(
                    grid.clone(),
                    cfg.density_strategy,
                    cfg.target_density,
                    cfg.dct_backend,
                )?
                .with_deterministic(deterministic),
            ),
            Some(spec) => DensityModel::Fenced(
                FencedDensityOp::new(
                    nl,
                    grid.clone(),
                    cfg.density_strategy,
                    cfg.target_density,
                    cfg.dct_backend,
                    spec.clone(),
                )?
                .with_deterministic(deterministic),
            ),
        };
        Ok((grid, bin_size, gamma_sched, wl, density))
    }

    /// The configuration this engine runs under.
    pub fn config(&self) -> &GpConfig<T> {
        &self.cfg
    }

    /// Next iteration index [`GpEngine::step`] would execute.
    pub fn next_iteration(&self) -> usize {
        self.next_iter
    }

    /// Busy seconds this run has consumed, across all processes: the sum
    /// of construction and completed steps (plus any resumed lives), never
    /// the time spent parked between scheduler turns.
    pub fn consumed_seconds(&self) -> f64 {
        self.consumed_before + self.busy.as_secs_f64()
    }

    /// Folds counters from a prior attempt (an aborted primary run whose
    /// fallback this engine is) into the run's cumulative summary.
    pub fn absorb_exec(&mut self, prior: ExecSummary) {
        match &mut self.base_exec {
            Some(base) => base.merge(&prior),
            None => self.base_exec = Some(prior),
        }
    }

    fn cumulative_exec(&self) -> ExecSummary {
        let mut exec = self.ctx.summary();
        if let Some(base) = &self.base_exec {
            exec.merge(base);
        }
        exec
    }

    /// Captures the complete mutable state; see [`GpEngineState`].
    pub fn state(&self) -> GpEngineState<T> {
        GpEngineState {
            next_iter: self.next_iter,
            iterations: self.iterations,
            evals: self.evals,
            params: self.params.clone(),
            best_params: self.best_params.clone(),
            best_overflow: self.best_overflow,
            solver: self.solver.snapshot(),
            lambda: self.lambda,
            gamma: self.gamma_cur,
            gamma_boost: self.gamma_boost,
            lambda_cut: self.lambda_cut,
            sched_lambda: self.lambda_sched.lambda(),
            sched_iteration: self.lambda_sched.iteration(),
            ref_delta: self.ref_delta,
            prev_hpwl: self.prev_hpwl,
            recoveries: self.recoveries,
            recovery_events: self.recovery_events.clone(),
            history: self.history.clone(),
            rollback: self.rollback.clone(),
            consumed_seconds: self.consumed_seconds(),
            exec: self.cumulative_exec(),
        }
    }

    /// Runs one kernel iteration (or one divergence rollback).
    ///
    /// Idempotent after the run finishes: further calls return the
    /// terminal outcome without touching any state.
    ///
    /// # Errors
    ///
    /// [`GpError::Diverged`] when the objective diverges and the rollback
    /// budget is exhausted; the error carries the best placement seen and
    /// the run's cumulative exec counters.
    pub fn step(&mut self, nl: &Netlist<T>) -> Result<GpStepOutcome, GpError<T>> {
        if let Some(done) = self.finished {
            return Ok(done);
        }
        if self.next_iter >= self.cfg.max_iters {
            self.finished = Some(GpStepOutcome::IterationCap);
            return Ok(GpStepOutcome::IterationCap);
        }
        // Wall-clock stage budget: stop at the current iterate, exactly
        // like running out of iterations (never an error). A resumed run
        // counts the seconds its previous lives already spent.
        if let Some(budget) = self.cfg.max_seconds {
            if self.consumed_seconds() >= budget {
                self.finished = Some(GpStepOutcome::BudgetStop);
                return Ok(GpStepOutcome::BudgetStop);
            }
        }
        let t_busy = Instant::now();
        let result = self.step_core(nl);
        self.busy += t_busy.elapsed();
        result
    }

    /// The body of one iteration; `step` wraps it to accumulate busy time.
    fn step_core(&mut self, nl: &Netlist<T>) -> Result<GpStepOutcome, GpError<T>> {
        let k = self.next_iter;
        self.next_iter = k + 1;
        self.iterations = k + 1;
        let tel = self.cfg.telemetry.clone();
        let _iter_span = tel.span(dp_telemetry::SpanKind::Iteration, "gp.iter");
        let t_step = Instant::now();

        let (info, cause, cur_hpwl, overflow_f) = {
            let mut obj = PlacementObjective {
                nl,
                wl: &mut self.wl,
                density: &mut self.density,
                ctx: &mut self.ctx,
                lambda: self.lambda,
                pos: &mut self.pos,
                grad: &mut self.grad,
                dgrad: &mut self.dgrad,
                pin_counts: &self.pin_counts,
                charges: &self.charges,
                faults: &self.faults,
                t_wl: &mut self.t_wl,
                t_density: &mut self.t_density,
                evals: &mut self.evals,
            };
            let info = self.solver.step(&mut obj, &mut self.params);
            clamp_params(&mut self.params, nl);

            // --- divergence tripwire ------------------------------------
            // Solver health and position finiteness come first: the exact
            // HPWL/overflow operators assume finite coordinates and must
            // not see a poisoned iterate.
            let pre_cause = if !info.cost.is_finite() {
                Some(DivergenceCause::NonFiniteCost)
            } else if !info.grad_norm.is_finite() {
                Some(DivergenceCause::NonFiniteGradient)
            } else if !self.params.iter().all(|v| v.is_finite()) {
                Some(DivergenceCause::NonFinitePosition)
            } else {
                None
            };
            let (cause, cur_hpwl, overflow_f) = match pre_cause {
                Some(c) => (Some(c), T::ZERO, f64::NAN),
                None => {
                    obj.unpack(&self.params);
                    let h = hpwl(nl, obj.pos);
                    let o = obj.density.overflow(nl, obj.pos, obj.ctx).to_f64();
                    let c = if !h.is_finite() || !o.is_finite() {
                        Some(DivergenceCause::NonFiniteHpwl)
                    } else if overflow_exploded(
                        o,
                        self.best_overflow,
                        self.cfg.recovery.overflow_explosion,
                    ) {
                        Some(DivergenceCause::OverflowExplosion)
                    } else {
                        None
                    };
                    (c, h, o)
                }
            };
            (info, cause, cur_hpwl, overflow_f)
        };
        let _ = info;
        let step_elapsed = t_step.elapsed();

        // Phase attribution: operator time accumulates inside eval;
        // whatever remains of the step is solver arithmetic.
        let op_time = self.t_wl + self.t_density;
        self.timing.solver += step_elapsed.saturating_sub(op_time.saturating_sub(self.prev_op_time));
        self.prev_op_time = op_time;
        self.timing.wirelength = self.t_wl;
        self.timing.density = self.t_density;

        let t_book = Instant::now();
        if let Some(cause) = cause {
            let policy = &self.cfg.recovery;
            if self.recoveries >= policy.max_recoveries {
                let mut best = self.pos.clone();
                unpack_into(&self.best_params, &mut best, self.n);
                let exec = self.cumulative_exec();
                return Err(GpError::Diverged {
                    iteration: k,
                    cause,
                    recoveries: self.recoveries,
                    best: Box::new(best),
                    best_overflow: self.best_overflow,
                    exec,
                });
            }
            // Roll back to the checkpoint with a tamer objective:
            // smaller density weight, smoother wirelength.
            self.recoveries += 1;
            self.params.copy_from_slice(&self.rollback.params);
            if self.solver.restore(&self.rollback.solver).is_err() {
                self.solver.reset();
            }
            let mut sched = DensityWeightScheduler::new(
                self.rollback.sched_lambda,
                self.cfg.mu_min,
                self.cfg.mu_max,
                self.ref_delta,
                self.cfg.tcad_mu_stabilization,
            );
            sched.set_iteration(self.rollback.sched_iteration);
            self.lambda_sched = sched;
            // Like gamma_boost, the backoff compounds across rollbacks:
            // re-tripping from the same checkpoint must not retry the
            // same density weight.
            self.lambda_cut *= T::from_f64(policy.lambda_backoff);
            let lambda = self.rollback.lambda * self.lambda_cut;
            self.lambda_sched.set_lambda(lambda);
            self.lambda = lambda;
            self.gamma_boost *= T::from_f64(policy.gamma_relax);
            let gamma =
                self.gamma_sched.gamma(T::from_f64(self.rollback.overflow)) * self.gamma_boost;
            self.wl.set_gamma(gamma);
            self.gamma_cur = gamma;
            self.prev_hpwl = self.rollback.prev_hpwl;
            self.history.truncate(self.rollback.history_len);
            tel.point(
                "recovery",
                format!(
                    "gp: {cause} at iter {k}, rolled back to {} (lambda {:.3e}, gamma x{:.2})",
                    self.rollback.iteration,
                    lambda.to_f64(),
                    self.gamma_boost.to_f64()
                ),
            );
            self.recovery_events.push(RecoveryEvent {
                iteration: k,
                resumed_from: self.rollback.iteration,
                cause,
                lambda: lambda.to_f64(),
                gamma_boost: self.gamma_boost.to_f64(),
            });
            self.timing.bookkeeping += t_book.elapsed();
            return Ok(GpStepOutcome::Continue);
        }

        if overflow_f < self.best_overflow {
            self.best_overflow = overflow_f;
            self.best_params.copy_from_slice(&self.params);
        }

        let gamma = self.gamma_sched.gamma(T::from_f64(overflow_f)) * self.gamma_boost;
        self.wl.set_gamma(gamma);
        self.gamma_cur = gamma;

        if (k + 1).is_multiple_of(self.cfg.lambda_update_interval.max(1)) {
            self.lambda = self.lambda_sched.update(cur_hpwl - self.prev_hpwl);
        }
        self.prev_hpwl = cur_hpwl;

        tel.iteration(
            k,
            cur_hpwl.to_f64(),
            overflow_f,
            self.lambda.to_f64(),
            gamma.to_f64(),
        );
        self.history.push(IterRecord {
            iteration: k,
            hpwl: cur_hpwl.to_f64(),
            overflow: overflow_f,
            lambda: self.lambda.to_f64(),
            gamma: gamma.to_f64(),
        });

        let policy = &self.cfg.recovery;
        if policy.checkpoint_interval > 0 && (k + 1).is_multiple_of(policy.checkpoint_interval) {
            self.rollback = GpRollbackState {
                iteration: k + 1,
                params: self.params.clone(),
                solver: self.solver.snapshot(),
                sched_lambda: self.lambda_sched.lambda(),
                sched_iteration: self.lambda_sched.iteration(),
                lambda: self.lambda,
                prev_hpwl: self.prev_hpwl,
                history_len: self.history.len(),
                overflow: overflow_f,
            };
        }
        self.timing.bookkeeping += t_book.elapsed();

        if overflow_f <= self.cfg.target_overflow.to_f64() && k + 1 >= self.cfg.min_iters {
            self.converged = true;
            self.finished = Some(GpStepOutcome::Converged);
            return Ok(GpStepOutcome::Converged);
        }
        Ok(GpStepOutcome::Continue)
    }

    /// Finalizes the run: unpacks the current iterate and assembles
    /// [`GpResult`] with cumulative statistics.
    pub fn finish(mut self, nl: &Netlist<T>) -> GpResult<T> {
        let n = self.n;
        let mut pos = self.pos;
        unpack_into(&self.params, &mut pos, n);
        self.timing.total = Duration::from_secs_f64(self.consumed_before) + self.busy;

        let mut exec = self.ctx.summary();
        if let Some(base) = &self.base_exec {
            exec.merge(base);
        }
        let stats = GpStats {
            iterations: self.iterations,
            final_hpwl: hpwl(nl, &pos).to_f64(),
            final_overflow: self.history.last().map(|r| r.overflow).unwrap_or(f64::NAN),
            converged: self.converged,
            history: self.history,
            timing: self.timing,
            recoveries: self.recoveries,
            recovery_events: self.recovery_events,
            exec,
        };
        GpResult {
            placement: pos,
            stats,
        }
    }
}

impl<T: Float> GlobalPlacer<T> {
    /// Creates a placer from a configuration.
    pub fn new(config: GpConfig<T>) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GpConfig<T> {
        &self.config
    }

    /// Runs global placement from scratch.
    ///
    /// `fixed` supplies the coordinates of fixed cells (movable entries are
    /// ignored).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::Grid`] for unsupported bin grids and
    /// [`GpError::Diverged`] when the objective diverges (non-finite cost,
    /// gradient, or wirelength, or exploding overflow) and the rollback
    /// budget of [`crate::RecoveryPolicy::max_recoveries`] is exhausted;
    /// the error carries the best placement seen.
    pub fn place(&self, nl: &Netlist<T>, fixed: &Placement<T>) -> Result<GpResult<T>, GpError<T>> {
        let pos = initial_placement(nl, fixed, self.config.noise_frac, self.config.seed);
        self.place_from(nl, pos, None)
    }

    /// Runs global placement from an existing placement (used by the
    /// routability loop to restart after cell inflation). `lambda0`
    /// overrides the automatic density-weight initialization when given.
    ///
    /// # Errors
    ///
    /// Same as [`GlobalPlacer::place`].
    pub fn place_from(
        &self,
        nl: &Netlist<T>,
        pos: Placement<T>,
        lambda0: Option<T>,
    ) -> Result<GpResult<T>, GpError<T>> {
        let mut engine = GpEngine::from_placement(self.config.clone(), nl, pos, lambda0)?;
        while !engine.step(nl)?.is_done() {}
        Ok(engine.finish(nl))
    }
}

fn pack<T: Float>(pos: &Placement<T>, n: usize) -> Vec<T> {
    let mut params = Vec::with_capacity(2 * n);
    params.extend_from_slice(&pos.x[..n]);
    params.extend_from_slice(&pos.y[..n]);
    params
}

fn unpack_into<T: Float>(params: &[T], pos: &mut Placement<T>, n: usize) {
    pos.x[..n].copy_from_slice(&params[..n]);
    pos.y[..n].copy_from_slice(&params[n..]);
}

/// Clamps movable cell centers into the region (half a cell inside).
fn clamp_params<T: Float>(params: &mut [T], nl: &Netlist<T>) {
    let n = nl.num_movable();
    let r = nl.region();
    for i in 0..n {
        let hw = nl.cell_widths()[i] * T::HALF;
        let hh = nl.cell_heights()[i] * T::HALF;
        params[i] = params[i].clamp(r.xl + hw, (r.xh - hw).max(r.xl + hw));
        params[n + i] = params[n + i].clamp(r.yl + hh, (r.yh - hh).max(r.yl + hh));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_gen::GeneratorConfig;

    fn small_design() -> dp_gen::GeneratedDesign<f64> {
        GeneratorConfig::new("gp-test", 300, 330)
            .with_seed(5)
            .with_utilization(0.6)
            .generate::<f64>()
            .expect("valid")
    }

    fn quick_config(nl: &Netlist<f64>) -> GpConfig<f64> {
        let mut cfg = GpConfig::auto(nl);
        cfg.max_iters = 400;
        cfg.target_overflow = 0.12;
        cfg
    }

    #[test]
    fn nesterov_spreads_cells_and_reduces_overflow() {
        let d = small_design();
        let cfg = quick_config(&d.netlist);
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("GP runs");
        assert!(
            result.stats.final_overflow < 0.2,
            "overflow {} after {} iters",
            result.stats.final_overflow,
            result.stats.iterations
        );
        // Cells actually spread out from the center cluster.
        let region = d.netlist.region();
        let n = d.netlist.num_movable();
        let min_x = result.placement.x[..n]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max_x = result.placement.x[..n]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_x - min_x > region.width() * 0.5,
            "spread {}",
            max_x - min_x
        );
        assert!(result.stats.final_hpwl.is_finite());
        assert!(result.stats.iterations >= 20);
    }

    #[test]
    fn run_is_deterministic() {
        let d = small_design();
        let cfg = quick_config(&d.netlist);
        let a = GlobalPlacer::new(cfg.clone())
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        let b = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert_eq!(a.stats.iterations, b.stats.iterations);
        assert_eq!(a.stats.final_hpwl, b.stats.final_hpwl);
        assert_eq!(a.placement.x, b.placement.x);
    }

    #[test]
    fn adam_also_converges() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        let bin = d.netlist.region().width() / cfg.bins.0 as f64;
        cfg.solver = SolverKind::Adam {
            lr: bin * 0.5,
            decay: 0.997,
        };
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert!(
            result.stats.final_overflow < 0.3,
            "adam overflow {}",
            result.stats.final_overflow
        );
    }

    #[test]
    fn history_shows_overflow_decreasing() {
        let d = small_design();
        let cfg = quick_config(&d.netlist);
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        let h = &result.stats.history;
        assert!(h.len() >= 20);
        let early: f64 = h[..5].iter().map(|r| r.overflow).sum::<f64>() / 5.0;
        let late: f64 = h[h.len() - 5..].iter().map(|r| r.overflow).sum::<f64>() / 5.0;
        assert!(late < early, "early {early} late {late}");
        // Gamma sharpens as overflow falls.
        assert!(h.last().expect("non-empty").gamma < h[0].gamma);
    }

    #[test]
    fn timing_phases_are_recorded() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.max_iters = 30;
        cfg.target_overflow = 0.0; // force all 30 iterations
        cfg.min_iters = 30;
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        let t = result.stats.timing;
        assert!(t.total > Duration::ZERO);
        assert!(t.wirelength > Duration::ZERO);
        assert!(t.density > Duration::ZERO);
        assert!(t.density + t.wirelength <= t.total);
    }

    #[test]
    fn overflow_explosion_predicate() {
        // No best yet: never trips.
        assert!(!overflow_exploded(5.0, f64::INFINITY, 2.0));
        // Needs both the ratio and the absolute climb.
        assert!(overflow_exploded(0.9, 0.3, 2.0));
        assert!(!overflow_exploded(0.35, 0.3, 2.0)); // ratio not met
        assert!(!overflow_exploded(0.09, 0.04, 2.0)); // climb below 0.1
                                                      // Disabled via infinity.
        assert!(!overflow_exploded(100.0, 0.1, f64::INFINITY));
    }

    /// A NaN injected into the gradient mid-run must trigger a rollback to
    /// the last checkpoint, after which the run completes normally.
    #[test]
    fn nan_gradient_mid_run_rolls_back_and_converges() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        // Nesterov makes at most 11 evals per iteration (1 reference + 10
        // backtracking probes); 12 consecutive poisoned evals guarantee at
        // least one lands on a reference eval whose gradient norm is
        // reported, whatever the backtracking pattern. Each detected
        // divergence advances ~2 evals (poisoned reference + one aborted
        // probe), so clearing the window takes up to 6 rollbacks — give
        // the budget headroom above that.
        cfg.fault_injection.nan_grad_evals = (60..72).collect();
        cfg.recovery.max_recoveries = 8;
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("recovers from injected NaN");
        assert!(result.stats.recoveries >= 1, "no rollback recorded");
        assert_eq!(result.stats.recoveries, result.stats.recovery_events.len());
        let event = result.stats.recovery_events[0];
        assert!(
            matches!(
                event.cause,
                DivergenceCause::NonFiniteGradient
                    | DivergenceCause::NonFiniteCost
                    | DivergenceCause::NonFinitePosition
            ),
            "{event:?}"
        );
        assert!(event.resumed_from <= event.iteration);
        assert!(event.gamma_boost > 1.0);
        // The run still reaches a usable spread.
        assert!(
            result.stats.final_overflow < 0.3,
            "overflow {} after recovery",
            result.stats.final_overflow
        );
        assert!(result.stats.final_hpwl.is_finite());
        assert!(result.placement.x.iter().all(|v| v.is_finite()));
    }

    /// Same run deterministically matches itself with recovery involved.
    #[test]
    fn recovery_is_deterministic() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.fault_injection.nan_grad_evals = (60..72).collect();
        cfg.recovery.max_recoveries = 8;
        let a = GlobalPlacer::new(cfg.clone())
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        let b = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert_eq!(a.stats.recoveries, b.stats.recoveries);
        assert_eq!(a.stats.final_hpwl, b.stats.final_hpwl);
        assert_eq!(a.placement.x, b.placement.x);
    }

    /// With a zero recovery budget the structured error surfaces, carrying
    /// the best placement observed before the fault.
    #[test]
    fn exhausted_recovery_budget_surfaces_best_so_far() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.recovery.max_recoveries = 0;
        cfg.fault_injection.nan_grad_evals = (60..72).collect();
        let err = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect_err("must diverge with no recovery budget");
        match err {
            GpError::Diverged {
                iteration,
                recoveries,
                best,
                best_overflow,
                ..
            } => {
                assert_eq!(recoveries, 0);
                assert!(iteration >= 1, "healthy iterations ran first");
                assert!(best_overflow.is_finite());
                assert!(best.x.iter().all(|v| v.is_finite()));
                assert!(best.y.iter().all(|v| v.is_finite()));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    /// A zero wall-clock budget stops before the first iteration but still
    /// returns the (finite) initial placement — a stage guard, not an error.
    #[test]
    fn wall_clock_budget_stops_without_error() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.max_seconds = Some(0.0);
        let r = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("budget stop is not an error");
        assert_eq!(r.stats.iterations, 0);
        assert!(!r.stats.converged);
        assert!(r.placement.x.iter().all(|v| v.is_finite()));
    }

    /// Sub-minimum grids run in uniform-field mode: the density term is
    /// zero (so lambda initializes to 0 instead of exploding) and the run
    /// completes with finite coordinates.
    #[test]
    fn degenerate_grid_places_with_uniform_field() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.bins = (1, 1);
        cfg.max_iters = 40;
        cfg.min_iters = 5;
        let r = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("uniform-field GP completes");
        assert!(r.stats.final_hpwl.is_finite());
        assert!(r.placement.x.iter().all(|v| v.is_finite()));
        assert!(r.stats.history.iter().all(|h| h.lambda == 0.0));
    }

    #[test]
    fn wirelength_only_init_lowers_initial_hpwl() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.max_iters = 1;
        cfg.min_iters = 1;
        let plain = GlobalPlacer::new(cfg.clone())
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        cfg.init = InitKind::WirelengthOnly { iters: 50 };
        let warm = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert!(warm.stats.timing.init > plain.stats.timing.init);
    }

    /// A run snapshotted mid-flight and resumed into a fresh engine must
    /// finish bit-identically to one that never stopped — the contract the
    /// durable checkpoint layer builds on.
    #[test]
    fn state_resume_is_bit_identical_to_uninterrupted_run() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.deterministic = Some(true);
        let golden = GlobalPlacer::new(cfg.clone())
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");

        for stop_at in [1usize, 17, 60] {
            let pos = initial_placement(&d.netlist, &d.fixed_positions, cfg.noise_frac, cfg.seed);
            let mut first =
                GpEngine::from_placement(cfg.clone(), &d.netlist, pos, None).expect("engine");
            let mut outcome = GpStepOutcome::Continue;
            while first.next_iteration() < stop_at && !outcome.is_done() {
                outcome = first.step(&d.netlist).expect("healthy");
            }
            let state = first.state();
            drop(first); // simulated process death

            let mut resumed =
                GpEngine::resume(cfg.clone(), &d.netlist, &d.fixed_positions, state)
                    .expect("resume");
            while !resumed.step(&d.netlist).expect("healthy").is_done() {}
            let r = resumed.finish(&d.netlist);
            assert_eq!(r.stats.iterations, golden.stats.iterations, "@{stop_at}");
            assert_eq!(
                r.stats.final_hpwl.to_bits(),
                golden.stats.final_hpwl.to_bits(),
                "@{stop_at}"
            );
            assert_eq!(r.placement.x, golden.placement.x, "@{stop_at}");
            assert_eq!(r.placement.y, golden.placement.y, "@{stop_at}");
            assert_eq!(r.stats.history.len(), golden.stats.history.len());
            // Cumulative exec counters: per-op calls and pool launches add
            // up exactly across the process boundary (nanos and workspace
            // first-use counts are wall-clock/lifetime artifacts).
            assert_eq!(
                r.stats.exec.pool_runs, golden.stats.exec.pool_runs,
                "@{stop_at}"
            );
            let calls = |s: &GpStats| {
                s.exec
                    .ops
                    .iter()
                    .map(|(n, c)| (*n, c.calls))
                    .collect::<Vec<_>>()
            };
            assert_eq!(calls(&r.stats), calls(&golden.stats), "@{stop_at}");
        }
    }

    /// Resuming replays fault injection from the persisted eval counter,
    /// so recovery rollbacks land on the same iterations.
    #[test]
    fn state_resume_replays_recovery_identically() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.fault_injection.nan_grad_evals = (60..72).collect();
        cfg.recovery.max_recoveries = 8;
        let golden = GlobalPlacer::new(cfg.clone())
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert!(golden.stats.recoveries >= 1);

        let pos = initial_placement(&d.netlist, &d.fixed_positions, cfg.noise_frac, cfg.seed);
        let mut first =
            GpEngine::from_placement(cfg.clone(), &d.netlist, pos, None).expect("engine");
        // Stop before the poisoned eval window is reached.
        while first.next_iteration() < 3 {
            first.step(&d.netlist).expect("healthy");
        }
        let state = first.state();
        drop(first);
        let mut resumed = GpEngine::resume(cfg.clone(), &d.netlist, &d.fixed_positions, state)
            .expect("resume");
        while !resumed.step(&d.netlist).expect("recovers").is_done() {}
        let r = resumed.finish(&d.netlist);
        assert_eq!(r.stats.recoveries, golden.stats.recoveries);
        assert_eq!(r.stats.recovery_events, golden.stats.recovery_events);
        assert_eq!(r.placement.x, golden.placement.x);
    }

    /// The persisted consumed-seconds counter feeds the wall-clock budget:
    /// a resumed run whose previous life already exceeded the budget stops
    /// immediately instead of restarting the clock.
    #[test]
    fn resume_honors_consumed_budget() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.max_seconds = Some(3600.0); // never trips in-process
        let pos = initial_placement(&d.netlist, &d.fixed_positions, cfg.noise_frac, cfg.seed);
        let mut first =
            GpEngine::from_placement(cfg.clone(), &d.netlist, pos, None).expect("engine");
        for _ in 0..5 {
            first.step(&d.netlist).expect("healthy");
        }
        let mut state = first.state();
        assert!(state.consumed_seconds > 0.0);
        state.consumed_seconds = 3600.0; // previous life spent it all
        let mut resumed =
            GpEngine::resume(cfg, &d.netlist, &d.fixed_positions, state).expect("resume");
        let outcome = resumed.step(&d.netlist).expect("budget stop");
        assert_eq!(outcome, GpStepOutcome::BudgetStop);
        let r = resumed.finish(&d.netlist);
        assert_eq!(r.stats.iterations, 5, "no further iterations may run");
    }
}
