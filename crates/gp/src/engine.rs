//! The global placement main loop.

use std::time::{Duration, Instant};

use dp_autograd::{ExecCtx, ExecSummary, Gradient, Operator};
use dp_density::{BinGrid, DensityOp};
use dp_netlist::{hpwl, Netlist, Placement};
use dp_num::Float;
use dp_optim::{
    Adam, ConjugateGradient, NesterovOptimizer, ObjectiveFn, Optimizer, OptimizerSnapshot,
    SgdMomentum,
};
use dp_wirelength::{LseWirelength, WaWirelength};

use crate::config::{DivergenceCause, GpConfig, GpError, InitKind, SolverKind, WirelengthModel};
use crate::fence::FencedDensityOp;
use crate::init::initial_placement;
use crate::scheduler::{DensityWeightScheduler, GammaScheduler};

/// One iteration's diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Exact HPWL at this iterate.
    pub hpwl: f64,
    /// Density overflow `tau`.
    pub overflow: f64,
    /// Density weight `lambda`.
    pub lambda: f64,
    /// WA/LSE smoothing `gamma`.
    pub gamma: f64,
}

/// Wall-clock spent per phase, for the paper's breakdown figures.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpTiming {
    /// Initial placement (including the wirelength-only stage in
    /// RePlAce-baseline mode).
    pub init: Duration,
    /// Wirelength forward+backward.
    pub wirelength: Duration,
    /// Density forward+backward (including DCT).
    pub density: Duration,
    /// Solver arithmetic (everything inside `step` minus operator time).
    pub solver: Duration,
    /// HPWL/overflow bookkeeping and schedulers.
    pub bookkeeping: Duration,
    /// End-to-end global placement time.
    pub total: Duration,
}

/// One divergence-recovery rollback, as recorded in [`GpStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Iteration at which the tripwire fired.
    pub iteration: usize,
    /// Checkpoint iteration the run rolled back to.
    pub resumed_from: usize,
    /// What tripped the detector.
    pub cause: DivergenceCause,
    /// Density weight after the backoff.
    pub lambda: f64,
    /// Cumulative gamma relaxation factor after this rollback.
    pub gamma_boost: f64,
}

/// Summary of a global placement run.
#[derive(Debug, Clone)]
pub struct GpStats {
    /// Number of kernel GP iterations executed.
    pub iterations: usize,
    /// Exact HPWL of the final placement.
    pub final_hpwl: f64,
    /// Final density overflow.
    pub final_overflow: f64,
    /// Whether the overflow target was reached (vs. iteration cap).
    pub converged: bool,
    /// Per-iteration history.
    pub history: Vec<IterRecord>,
    /// Phase timing.
    pub timing: GpTiming,
    /// Number of divergence rollbacks performed.
    pub recoveries: usize,
    /// One record per rollback, in order.
    pub recovery_events: Vec<RecoveryEvent>,
    /// Execution-layer counters: pool spawns/runs, per-op totals, and
    /// workspace reuse, from the run's [`ExecCtx`].
    pub exec: ExecSummary,
}

/// Result of global placement: coordinates plus statistics.
#[derive(Debug, Clone)]
pub struct GpResult<T> {
    /// Final cell-center coordinates (movable cells spread, fixed intact).
    pub placement: Placement<T>,
    /// Run statistics.
    pub stats: GpStats,
}

/// The global placer; construct with a [`GpConfig`] and call
/// [`GlobalPlacer::place`]. See the [crate example](crate).
pub struct GlobalPlacer<T> {
    config: GpConfig<T>,
}

/// The density model: single electric field, or one per fence region.
/// One instance exists per placement run; variant size is irrelevant.
#[allow(clippy::large_enum_variant)]
enum DensityModel<T: Float> {
    Single(DensityOp<T>),
    Fenced(FencedDensityOp<T>),
}

impl<T: Float> DensityModel<T> {
    fn bake_fixed(&mut self, nl: &Netlist<T>, p: &Placement<T>) {
        match self {
            DensityModel::Single(op) => op.bake_fixed(nl, p),
            DensityModel::Fenced(op) => op.bake_fixed(nl, p),
        }
    }

    fn overflow(&mut self, nl: &Netlist<T>, p: &Placement<T>, ctx: &mut ExecCtx<T>) -> T {
        match self {
            DensityModel::Single(op) => op.overflow(nl, p, ctx),
            DensityModel::Fenced(op) => op.overflow(nl, p, ctx),
        }
    }

    fn forward_backward(
        &mut self,
        nl: &Netlist<T>,
        p: &Placement<T>,
        g: &mut Gradient<T>,
        ctx: &mut ExecCtx<T>,
    ) -> T {
        match self {
            DensityModel::Single(op) => op.forward_backward(nl, p, g, ctx),
            DensityModel::Fenced(op) => op.forward_backward(nl, p, g, ctx),
        }
    }
}

/// The smooth wirelength operator behind the configured model.
/// One instance exists per placement run; variant size is irrelevant.
#[allow(clippy::large_enum_variant)]
enum WlOp<T: Float> {
    Wa(WaWirelength<T>),
    Lse(LseWirelength<T>),
}

impl<T: Float> WlOp<T> {
    fn set_gamma(&mut self, gamma: T) {
        match self {
            WlOp::Wa(op) => op.set_gamma(gamma),
            WlOp::Lse(op) => op.set_gamma(gamma),
        }
    }

    fn forward_backward(
        &mut self,
        nl: &Netlist<T>,
        p: &Placement<T>,
        g: &mut Gradient<T>,
        ctx: &mut ExecCtx<T>,
    ) -> T {
        match self {
            WlOp::Wa(op) => op.forward_backward(nl, p, g, ctx),
            WlOp::Lse(op) => op.forward_backward(nl, p, g, ctx),
        }
    }
}

/// Objective adapter: flat params `[x_mov..., y_mov...]` to operators, with
/// Jacobi preconditioning and per-phase timing.
struct PlacementObjective<'a, T: Float> {
    nl: &'a Netlist<T>,
    wl: &'a mut WlOp<T>,
    density: &'a mut DensityModel<T>,
    /// The run's execution context: worker pool, workspaces, counters.
    ctx: &'a mut ExecCtx<T>,
    lambda: T,
    pos: Placement<T>,
    grad: Gradient<T>,
    /// Reused density-gradient accumulator (allocated once per run).
    dgrad: Gradient<T>,
    /// Precomputed `#pins` per movable cell (wirelength preconditioner).
    pin_counts: Vec<T>,
    /// Precomputed charge per movable cell (density preconditioner).
    charges: Vec<T>,
    /// Eval indices whose gradient is poisoned (fault injection).
    faults: Vec<usize>,
    t_wl: Duration,
    t_density: Duration,
    evals: usize,
}

impl<'a, T: Float> PlacementObjective<'a, T> {
    fn unpack(&mut self, params: &[T]) {
        let n = self.nl.num_movable();
        self.pos.x[..n].copy_from_slice(&params[..n]);
        self.pos.y[..n].copy_from_slice(&params[n..]);
    }
}

impl<'a, T: Float> ObjectiveFn<T> for PlacementObjective<'a, T> {
    fn eval(&mut self, params: &[T], grad_out: &mut [T]) -> T {
        let n = self.nl.num_movable();
        let eval_idx = self.evals;
        self.evals += 1;

        // A solver that consumed a poisoned gradient may probe a
        // non-finite iterate within the same step, before the engine's
        // tripwire sees it. The kernels assume finite geometry, so answer
        // with a non-finite objective instead of evaluating them.
        if !params.iter().all(|v| v.is_finite()) {
            let nan = T::from_f64(f64::NAN);
            grad_out.iter_mut().for_each(|g| *g = nan);
            return nan;
        }

        self.unpack(params);
        self.grad.reset();

        let t0 = Instant::now();
        let wl_cost = self
            .wl
            .forward_backward(self.nl, &self.pos, &mut self.grad, self.ctx);
        self.t_wl += t0.elapsed();

        let t1 = Instant::now();
        self.dgrad.reset();
        let d_cost = self
            .density
            .forward_backward(self.nl, &self.pos, &mut self.dgrad, self.ctx);
        self.grad.axpy(self.lambda, &self.dgrad);
        self.t_density += t1.elapsed();

        // Jacobi preconditioning: divide by the diagonal Hessian proxy
        // (#pins + lambda * charge), the ePlace/DREAMPlace conditioner.
        for i in 0..n {
            let precond = (self.pin_counts[i] + self.lambda * self.charges[i]).max(T::ONE);
            grad_out[i] = self.grad.x[i] / precond;
            grad_out[n + i] = self.grad.y[i] / precond;
        }
        if self.faults.contains(&eval_idx) && !grad_out.is_empty() {
            grad_out[0] = T::from_f64(f64::NAN);
        }
        wl_cost + self.lambda * d_cost
    }
}

/// Everything needed to roll the run back to a known-good iterate.
struct Checkpoint<T> {
    /// Iteration count at capture time (0 = initial state).
    iteration: usize,
    params: Vec<T>,
    solver: OptimizerSnapshot<T>,
    lambda_sched: DensityWeightScheduler<T>,
    /// `obj.lambda` at capture time (the scheduler may lag it by up to
    /// `lambda_update_interval` iterations).
    lambda: T,
    prev_hpwl: T,
    history_len: usize,
    /// Overflow at capture time (1.0 for the initial checkpoint).
    overflow: f64,
}

/// Overflow-explosion tripwire: fires when overflow exceeds `factor` times
/// the best value seen and has climbed by at least 0.1 absolute.
fn overflow_exploded(overflow: f64, best: f64, factor: f64) -> bool {
    best.is_finite() && overflow > best * factor && overflow > best + 0.1
}

fn make_solver<T: Float>(kind: SolverKind, n: usize, initial_step: T) -> Box<dyn Optimizer<T>> {
    match kind {
        SolverKind::Nesterov => Box::new(NesterovOptimizer::new(n, initial_step)),
        SolverKind::Adam { lr, decay } => {
            Box::new(Adam::new(n, T::from_f64(lr)).with_decay(T::from_f64(decay)))
        }
        SolverKind::SgdMomentum { lr, decay } => {
            Box::new(SgdMomentum::new(n, T::from_f64(lr)).with_decay(T::from_f64(decay)))
        }
        SolverKind::ConjugateGradient => Box::new(ConjugateGradient::new(n, initial_step)),
    }
}

impl<T: Float> GlobalPlacer<T> {
    /// Creates a placer from a configuration.
    pub fn new(config: GpConfig<T>) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GpConfig<T> {
        &self.config
    }

    /// Runs global placement from scratch.
    ///
    /// `fixed` supplies the coordinates of fixed cells (movable entries are
    /// ignored).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::Grid`] for unsupported bin grids and
    /// [`GpError::Diverged`] when the objective diverges (non-finite cost,
    /// gradient, or wirelength, or exploding overflow) and the rollback
    /// budget of [`crate::RecoveryPolicy::max_recoveries`] is exhausted;
    /// the error carries the best placement seen.
    pub fn place(&self, nl: &Netlist<T>, fixed: &Placement<T>) -> Result<GpResult<T>, GpError<T>> {
        let pos = initial_placement(nl, fixed, self.config.noise_frac, self.config.seed);
        self.place_from(nl, pos, None)
    }

    /// Runs global placement from an existing placement (used by the
    /// routability loop to restart after cell inflation). `lambda0`
    /// overrides the automatic density-weight initialization when given.
    ///
    /// # Errors
    ///
    /// Same as [`GlobalPlacer::place`].
    pub fn place_from(
        &self,
        nl: &Netlist<T>,
        mut pos: Placement<T>,
        lambda0: Option<T>,
    ) -> Result<GpResult<T>, GpError<T>> {
        let cfg = &self.config;
        let t_start = Instant::now();
        let mut timing = GpTiming::default();

        // One persistent executor per run: worker threads spawn here, once,
        // and every kernel below launches on them. The telemetry sink (if
        // enabled) receives mirrored kernel timings and pool busy shards.
        let mut ctx = ExecCtx::with_telemetry(cfg.threads, cfg.telemetry.clone());
        let tel = cfg.telemetry.clone();

        // --- operators -------------------------------------------------
        let grid = BinGrid::new(nl.region(), cfg.bins.0, cfg.bins.1)?;
        let bin_size = (grid.bin_width() + grid.bin_height()) * T::HALF;
        let gamma_sched = GammaScheduler::new(bin_size, cfg.gamma_base_bins);
        let gamma0 = gamma_sched.gamma(T::ONE);

        let mut wl = match cfg.wirelength {
            WirelengthModel::Wa(strategy) => WlOp::Wa(WaWirelength::new(strategy, gamma0)),
            WirelengthModel::Lse => WlOp::Lse(LseWirelength::new(gamma0)),
        };
        // Multithreaded float-atomic scatters are order-dependent; the
        // fixed-point bins keep multi-thread runs bit-reproducible (and
        // thread-count invariant) at a 2^-24 bin-area quantization. The
        // config can force either mode (determinism replay compares a
        // serial run against a multithreaded one, so both must quantize).
        let deterministic = cfg.deterministic.unwrap_or(cfg.threads > 1);
        let mut density = match &cfg.fence {
            None => DensityModel::Single(
                DensityOp::with_backend(
                    grid.clone(),
                    cfg.density_strategy,
                    cfg.target_density,
                    cfg.dct_backend,
                )?
                .with_deterministic(deterministic),
            ),
            Some(spec) => DensityModel::Fenced(
                FencedDensityOp::new(
                    nl,
                    grid.clone(),
                    cfg.density_strategy,
                    cfg.target_density,
                    cfg.dct_backend,
                    spec.clone(),
                )?
                .with_deterministic(deterministic),
            ),
        };
        density.bake_fixed(nl, &pos);

        let n = nl.num_movable();
        let pin_counts: Vec<T> = (0..n)
            .map(|i| T::from_usize(nl.cell_pins(dp_netlist::CellId::new(i)).len()))
            .collect();
        let inv_bin_area = T::ONE / grid.bin_area();
        let charges: Vec<T> = (0..n)
            .map(|i| nl.cell_widths()[i] * nl.cell_heights()[i] * inv_bin_area)
            .collect();

        // --- optional wirelength-only initial stage (RePlAce mode) ------
        let t_init = Instant::now();
        if let InitKind::WirelengthOnly { iters } = cfg.init {
            let mut obj = PlacementObjective {
                nl,
                wl: &mut wl,
                density: &mut density,
                ctx: &mut ctx,
                lambda: T::ZERO,
                pos: pos.clone(),
                grad: Gradient::zeros(pos.len()),
                dgrad: Gradient::zeros(pos.len()),
                pin_counts: pin_counts.clone(),
                charges: charges.clone(),
                faults: Vec::new(),
                t_wl: Duration::ZERO,
                t_density: Duration::ZERO,
                evals: 0,
            };
            // Wirelength-only: skip the density term entirely by evaluating
            // through a thin closure that zeroes lambda (it already is) but
            // we also avoid the density forward by using the WA op directly.
            let mut params = pack(&pos, n);
            let mut solver = ConjugateGradient::new(2 * n, bin_size);
            let mut wl_only = |p: &[T], g: &mut [T]| -> T {
                obj.unpack(p);
                obj.grad.reset();
                let c = obj
                    .wl
                    .forward_backward(obj.nl, &obj.pos, &mut obj.grad, obj.ctx);
                for i in 0..n {
                    let pre = obj.pin_counts[i].max(T::ONE);
                    g[i] = obj.grad.x[i] / pre;
                    g[n + i] = obj.grad.y[i] / pre;
                }
                c
            };
            for _ in 0..iters {
                let _ = solver.step(&mut wl_only, &mut params);
                clamp_params(&mut params, nl);
            }
            unpack_into(&params, &mut pos, n);
        }
        timing.init = t_init.elapsed();

        // --- lambda initialization --------------------------------------
        let mut g_wl = Gradient::zeros(pos.len());
        let _ = wl.forward_backward(nl, &pos, &mut g_wl, &mut ctx);
        let mut g_d = Gradient::zeros(pos.len());
        let _ = density.forward_backward(nl, &pos, &mut g_d, &mut ctx);
        let wl_norm = g_wl.l1_norm(n);
        let d_norm_raw = g_d.l1_norm(n);
        // A zero density gradient (uniform-field mode on degenerate grids,
        // or an all-zero-area design) must yield lambda = 0, not
        // wl_norm / MIN_POSITIVE: an astronomically large lambda poisons
        // the Jacobi preconditioner and freezes the run.
        let lambda_auto = if d_norm_raw > T::ZERO {
            wl_norm / d_norm_raw.max(T::MIN_POSITIVE)
        } else {
            T::ZERO
        };
        let lambda_init = lambda0.unwrap_or(lambda_auto);

        let hpwl0 = hpwl(nl, &pos);
        let ref_delta = cfg
            .ref_delta_hpwl
            .unwrap_or(hpwl0 * T::from_f64(0.005))
            .max(T::MIN_POSITIVE);
        let mut lambda_sched = DensityWeightScheduler::new(
            lambda_init,
            cfg.mu_min,
            cfg.mu_max,
            ref_delta,
            cfg.tcad_mu_stabilization,
        );

        // --- main loop ---------------------------------------------------
        let mut obj = PlacementObjective {
            nl,
            wl: &mut wl,
            density: &mut density,
            ctx: &mut ctx,
            lambda: lambda_sched.lambda(),
            pos: pos.clone(),
            grad: Gradient::zeros(pos.len()),
            dgrad: Gradient::zeros(pos.len()),
            pin_counts,
            charges,
            faults: cfg.fault_injection.nan_grad_evals.clone(),
            t_wl: Duration::ZERO,
            t_density: Duration::ZERO,
            evals: 0,
        };
        let mut params = pack(&pos, n);
        let mut solver = make_solver(cfg.solver, 2 * n, bin_size);

        let mut history = Vec::with_capacity(cfg.max_iters.min(1024));
        let mut prev_hpwl = hpwl0;
        let mut converged = false;
        let mut iterations = 0;
        let mut prev_op_time = Duration::ZERO;

        // --- recovery state ----------------------------------------------
        let policy = &cfg.recovery;
        let mut gamma_boost = T::ONE;
        let mut lambda_cut = T::ONE;
        let mut recoveries = 0usize;
        let mut recovery_events: Vec<RecoveryEvent> = Vec::new();
        let mut best_params = params.clone();
        let mut best_overflow = f64::INFINITY;
        let mut checkpoint = Checkpoint {
            iteration: 0,
            params: params.clone(),
            solver: solver.snapshot(),
            lambda_sched: lambda_sched.clone(),
            lambda: obj.lambda,
            prev_hpwl,
            history_len: 0,
            overflow: 1.0,
        };

        for k in 0..cfg.max_iters {
            // Wall-clock stage budget: stop at the current iterate, exactly
            // like running out of iterations (never an error).
            if let Some(budget) = cfg.max_seconds {
                if t_start.elapsed().as_secs_f64() >= budget {
                    break;
                }
            }
            iterations = k + 1;
            let _iter_span = tel.span(dp_telemetry::SpanKind::Iteration, "gp.iter");
            let t_step = Instant::now();
            let info = solver.step(&mut obj, &mut params);
            clamp_params(&mut params, nl);
            let step_elapsed = t_step.elapsed();

            // Phase attribution: operator time accumulates inside eval;
            // whatever remains of the step is solver arithmetic.
            let op_time = obj.t_wl + obj.t_density;
            timing.solver += step_elapsed.saturating_sub(op_time.saturating_sub(prev_op_time));
            prev_op_time = op_time;
            timing.wirelength = obj.t_wl;
            timing.density = obj.t_density;

            let t_book = Instant::now();

            // --- divergence tripwire ------------------------------------
            // Solver health and position finiteness come first: the exact
            // HPWL/overflow operators assume finite coordinates and must
            // not see a poisoned iterate.
            let pre_cause = if !info.cost.is_finite() {
                Some(DivergenceCause::NonFiniteCost)
            } else if !info.grad_norm.is_finite() {
                Some(DivergenceCause::NonFiniteGradient)
            } else if !params.iter().all(|v| v.is_finite()) {
                Some(DivergenceCause::NonFinitePosition)
            } else {
                None
            };
            let (cause, cur_hpwl, overflow_f) = match pre_cause {
                Some(c) => (Some(c), T::ZERO, f64::NAN),
                None => {
                    obj.unpack(&params);
                    let h = hpwl(nl, &obj.pos);
                    let o = obj.density.overflow(nl, &obj.pos, obj.ctx).to_f64();
                    let c = if !h.is_finite() || !o.is_finite() {
                        Some(DivergenceCause::NonFiniteHpwl)
                    } else if overflow_exploded(o, best_overflow, policy.overflow_explosion) {
                        Some(DivergenceCause::OverflowExplosion)
                    } else {
                        None
                    };
                    (c, h, o)
                }
            };
            if let Some(cause) = cause {
                if recoveries >= policy.max_recoveries {
                    unpack_into(&best_params, &mut pos, n);
                    let exec = obj.ctx.summary();
                    return Err(GpError::Diverged {
                        iteration: k,
                        cause,
                        recoveries,
                        best: Box::new(pos),
                        best_overflow,
                        exec,
                    });
                }
                // Roll back to the checkpoint with a tamer objective:
                // smaller density weight, smoother wirelength.
                recoveries += 1;
                params.copy_from_slice(&checkpoint.params);
                if solver.restore(&checkpoint.solver).is_err() {
                    solver.reset();
                }
                lambda_sched = checkpoint.lambda_sched.clone();
                // Like gamma_boost, the backoff compounds across rollbacks:
                // re-tripping from the same checkpoint must not retry the
                // same density weight.
                lambda_cut *= T::from_f64(policy.lambda_backoff);
                let lambda = checkpoint.lambda * lambda_cut;
                lambda_sched.set_lambda(lambda);
                obj.lambda = lambda;
                gamma_boost *= T::from_f64(policy.gamma_relax);
                obj.wl
                    .set_gamma(gamma_sched.gamma(T::from_f64(checkpoint.overflow)) * gamma_boost);
                prev_hpwl = checkpoint.prev_hpwl;
                history.truncate(checkpoint.history_len);
                tel.point(
                    "recovery",
                    format!(
                        "gp: {cause} at iter {k}, rolled back to {} (lambda {:.3e}, gamma x{:.2})",
                        checkpoint.iteration,
                        lambda.to_f64(),
                        gamma_boost.to_f64()
                    ),
                );
                recovery_events.push(RecoveryEvent {
                    iteration: k,
                    resumed_from: checkpoint.iteration,
                    cause,
                    lambda: lambda.to_f64(),
                    gamma_boost: gamma_boost.to_f64(),
                });
                timing.bookkeeping += t_book.elapsed();
                continue;
            }

            if overflow_f < best_overflow {
                best_overflow = overflow_f;
                best_params.copy_from_slice(&params);
            }

            let gamma = gamma_sched.gamma(T::from_f64(overflow_f)) * gamma_boost;
            obj.wl.set_gamma(gamma);

            if (k + 1) % cfg.lambda_update_interval.max(1) == 0 {
                obj.lambda = lambda_sched.update(cur_hpwl - prev_hpwl);
            }
            prev_hpwl = cur_hpwl;

            tel.iteration(
                k,
                cur_hpwl.to_f64(),
                overflow_f,
                obj.lambda.to_f64(),
                gamma.to_f64(),
            );
            history.push(IterRecord {
                iteration: k,
                hpwl: cur_hpwl.to_f64(),
                overflow: overflow_f,
                lambda: obj.lambda.to_f64(),
                gamma: gamma.to_f64(),
            });

            if policy.checkpoint_interval > 0 && (k + 1) % policy.checkpoint_interval == 0 {
                checkpoint = Checkpoint {
                    iteration: k + 1,
                    params: params.clone(),
                    solver: solver.snapshot(),
                    lambda_sched: lambda_sched.clone(),
                    lambda: obj.lambda,
                    prev_hpwl,
                    history_len: history.len(),
                    overflow: overflow_f,
                };
            }
            timing.bookkeeping += t_book.elapsed();

            if overflow_f <= cfg.target_overflow.to_f64() && k + 1 >= cfg.min_iters {
                converged = true;
                break;
            }
        }

        unpack_into(&params, &mut pos, n);
        drop(obj);
        timing.total = t_start.elapsed();

        let stats = GpStats {
            iterations,
            final_hpwl: hpwl(nl, &pos).to_f64(),
            final_overflow: history.last().map(|r| r.overflow).unwrap_or(f64::NAN),
            converged,
            history,
            timing,
            recoveries,
            recovery_events,
            exec: ctx.summary(),
        };
        Ok(GpResult {
            placement: pos,
            stats,
        })
    }
}

fn pack<T: Float>(pos: &Placement<T>, n: usize) -> Vec<T> {
    let mut params = Vec::with_capacity(2 * n);
    params.extend_from_slice(&pos.x[..n]);
    params.extend_from_slice(&pos.y[..n]);
    params
}

fn unpack_into<T: Float>(params: &[T], pos: &mut Placement<T>, n: usize) {
    pos.x[..n].copy_from_slice(&params[..n]);
    pos.y[..n].copy_from_slice(&params[n..]);
}

/// Clamps movable cell centers into the region (half a cell inside).
fn clamp_params<T: Float>(params: &mut [T], nl: &Netlist<T>) {
    let n = nl.num_movable();
    let r = nl.region();
    for i in 0..n {
        let hw = nl.cell_widths()[i] * T::HALF;
        let hh = nl.cell_heights()[i] * T::HALF;
        params[i] = params[i].clamp(r.xl + hw, (r.xh - hw).max(r.xl + hw));
        params[n + i] = params[n + i].clamp(r.yl + hh, (r.yh - hh).max(r.yl + hh));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_gen::GeneratorConfig;

    fn small_design() -> dp_gen::GeneratedDesign<f64> {
        GeneratorConfig::new("gp-test", 300, 330)
            .with_seed(5)
            .with_utilization(0.6)
            .generate::<f64>()
            .expect("valid")
    }

    fn quick_config(nl: &Netlist<f64>) -> GpConfig<f64> {
        let mut cfg = GpConfig::auto(nl);
        cfg.max_iters = 400;
        cfg.target_overflow = 0.12;
        cfg
    }

    #[test]
    fn nesterov_spreads_cells_and_reduces_overflow() {
        let d = small_design();
        let cfg = quick_config(&d.netlist);
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("GP runs");
        assert!(
            result.stats.final_overflow < 0.2,
            "overflow {} after {} iters",
            result.stats.final_overflow,
            result.stats.iterations
        );
        // Cells actually spread out from the center cluster.
        let region = d.netlist.region();
        let n = d.netlist.num_movable();
        let min_x = result.placement.x[..n]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max_x = result.placement.x[..n]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_x - min_x > region.width() * 0.5,
            "spread {}",
            max_x - min_x
        );
        assert!(result.stats.final_hpwl.is_finite());
        assert!(result.stats.iterations >= 20);
    }

    #[test]
    fn run_is_deterministic() {
        let d = small_design();
        let cfg = quick_config(&d.netlist);
        let a = GlobalPlacer::new(cfg.clone())
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        let b = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert_eq!(a.stats.iterations, b.stats.iterations);
        assert_eq!(a.stats.final_hpwl, b.stats.final_hpwl);
        assert_eq!(a.placement.x, b.placement.x);
    }

    #[test]
    fn adam_also_converges() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        let bin = d.netlist.region().width() / cfg.bins.0 as f64;
        cfg.solver = SolverKind::Adam {
            lr: bin * 0.5,
            decay: 0.997,
        };
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert!(
            result.stats.final_overflow < 0.3,
            "adam overflow {}",
            result.stats.final_overflow
        );
    }

    #[test]
    fn history_shows_overflow_decreasing() {
        let d = small_design();
        let cfg = quick_config(&d.netlist);
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        let h = &result.stats.history;
        assert!(h.len() >= 20);
        let early: f64 = h[..5].iter().map(|r| r.overflow).sum::<f64>() / 5.0;
        let late: f64 = h[h.len() - 5..].iter().map(|r| r.overflow).sum::<f64>() / 5.0;
        assert!(late < early, "early {early} late {late}");
        // Gamma sharpens as overflow falls.
        assert!(h.last().expect("non-empty").gamma < h[0].gamma);
    }

    #[test]
    fn timing_phases_are_recorded() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.max_iters = 30;
        cfg.target_overflow = 0.0; // force all 30 iterations
        cfg.min_iters = 30;
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        let t = result.stats.timing;
        assert!(t.total > Duration::ZERO);
        assert!(t.wirelength > Duration::ZERO);
        assert!(t.density > Duration::ZERO);
        assert!(t.density + t.wirelength <= t.total);
    }

    #[test]
    fn overflow_explosion_predicate() {
        // No best yet: never trips.
        assert!(!overflow_exploded(5.0, f64::INFINITY, 2.0));
        // Needs both the ratio and the absolute climb.
        assert!(overflow_exploded(0.9, 0.3, 2.0));
        assert!(!overflow_exploded(0.35, 0.3, 2.0)); // ratio not met
        assert!(!overflow_exploded(0.09, 0.04, 2.0)); // climb below 0.1
                                                      // Disabled via infinity.
        assert!(!overflow_exploded(100.0, 0.1, f64::INFINITY));
    }

    /// A NaN injected into the gradient mid-run must trigger a rollback to
    /// the last checkpoint, after which the run completes normally.
    #[test]
    fn nan_gradient_mid_run_rolls_back_and_converges() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        // Nesterov makes at most 11 evals per iteration (1 reference + 10
        // backtracking probes); 12 consecutive poisoned evals guarantee at
        // least one lands on a reference eval whose gradient norm is
        // reported, whatever the backtracking pattern. Each detected
        // divergence advances ~2 evals (poisoned reference + one aborted
        // probe), so clearing the window takes up to 6 rollbacks — give
        // the budget headroom above that.
        cfg.fault_injection.nan_grad_evals = (60..72).collect();
        cfg.recovery.max_recoveries = 8;
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("recovers from injected NaN");
        assert!(result.stats.recoveries >= 1, "no rollback recorded");
        assert_eq!(result.stats.recoveries, result.stats.recovery_events.len());
        let event = result.stats.recovery_events[0];
        assert!(
            matches!(
                event.cause,
                DivergenceCause::NonFiniteGradient
                    | DivergenceCause::NonFiniteCost
                    | DivergenceCause::NonFinitePosition
            ),
            "{event:?}"
        );
        assert!(event.resumed_from <= event.iteration);
        assert!(event.gamma_boost > 1.0);
        // The run still reaches a usable spread.
        assert!(
            result.stats.final_overflow < 0.3,
            "overflow {} after recovery",
            result.stats.final_overflow
        );
        assert!(result.stats.final_hpwl.is_finite());
        assert!(result.placement.x.iter().all(|v| v.is_finite()));
    }

    /// Same run deterministically matches itself with recovery involved.
    #[test]
    fn recovery_is_deterministic() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.fault_injection.nan_grad_evals = (60..72).collect();
        cfg.recovery.max_recoveries = 8;
        let a = GlobalPlacer::new(cfg.clone())
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        let b = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert_eq!(a.stats.recoveries, b.stats.recoveries);
        assert_eq!(a.stats.final_hpwl, b.stats.final_hpwl);
        assert_eq!(a.placement.x, b.placement.x);
    }

    /// With a zero recovery budget the structured error surfaces, carrying
    /// the best placement observed before the fault.
    #[test]
    fn exhausted_recovery_budget_surfaces_best_so_far() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.recovery.max_recoveries = 0;
        cfg.fault_injection.nan_grad_evals = (60..72).collect();
        let err = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect_err("must diverge with no recovery budget");
        match err {
            GpError::Diverged {
                iteration,
                recoveries,
                best,
                best_overflow,
                ..
            } => {
                assert_eq!(recoveries, 0);
                assert!(iteration >= 1, "healthy iterations ran first");
                assert!(best_overflow.is_finite());
                assert!(best.x.iter().all(|v| v.is_finite()));
                assert!(best.y.iter().all(|v| v.is_finite()));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    /// A zero wall-clock budget stops before the first iteration but still
    /// returns the (finite) initial placement — a stage guard, not an error.
    #[test]
    fn wall_clock_budget_stops_without_error() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.max_seconds = Some(0.0);
        let r = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("budget stop is not an error");
        assert_eq!(r.stats.iterations, 0);
        assert!(!r.stats.converged);
        assert!(r.placement.x.iter().all(|v| v.is_finite()));
    }

    /// Sub-minimum grids run in uniform-field mode: the density term is
    /// zero (so lambda initializes to 0 instead of exploding) and the run
    /// completes with finite coordinates.
    #[test]
    fn degenerate_grid_places_with_uniform_field() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.bins = (1, 1);
        cfg.max_iters = 40;
        cfg.min_iters = 5;
        let r = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("uniform-field GP completes");
        assert!(r.stats.final_hpwl.is_finite());
        assert!(r.placement.x.iter().all(|v| v.is_finite()));
        assert!(r.stats.history.iter().all(|h| h.lambda == 0.0));
    }

    #[test]
    fn wirelength_only_init_lowers_initial_hpwl() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.max_iters = 1;
        cfg.min_iters = 1;
        let plain = GlobalPlacer::new(cfg.clone())
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        cfg.init = InitKind::WirelengthOnly { iters: 50 };
        let warm = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert!(warm.stats.timing.init > plain.stats.timing.init);
    }
}
