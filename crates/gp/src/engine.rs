//! The global placement main loop.

use std::time::{Duration, Instant};

use dp_autograd::{Gradient, Operator};
use dp_density::{BinGrid, DensityOp};
use dp_netlist::{hpwl, Netlist, Placement};
use dp_num::Float;
use dp_optim::{Adam, ConjugateGradient, NesterovOptimizer, ObjectiveFn, Optimizer, SgdMomentum};
use dp_wirelength::{LseWirelength, WaWirelength};

use crate::config::{GpConfig, GpError, InitKind, SolverKind, WirelengthModel};
use crate::fence::FencedDensityOp;
use crate::init::initial_placement;
use crate::scheduler::{DensityWeightScheduler, GammaScheduler};

/// One iteration's diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Exact HPWL at this iterate.
    pub hpwl: f64,
    /// Density overflow `tau`.
    pub overflow: f64,
    /// Density weight `lambda`.
    pub lambda: f64,
    /// WA/LSE smoothing `gamma`.
    pub gamma: f64,
}

/// Wall-clock spent per phase, for the paper's breakdown figures.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpTiming {
    /// Initial placement (including the wirelength-only stage in
    /// RePlAce-baseline mode).
    pub init: Duration,
    /// Wirelength forward+backward.
    pub wirelength: Duration,
    /// Density forward+backward (including DCT).
    pub density: Duration,
    /// Solver arithmetic (everything inside `step` minus operator time).
    pub solver: Duration,
    /// HPWL/overflow bookkeeping and schedulers.
    pub bookkeeping: Duration,
    /// End-to-end global placement time.
    pub total: Duration,
}

/// Summary of a global placement run.
#[derive(Debug, Clone)]
pub struct GpStats {
    /// Number of kernel GP iterations executed.
    pub iterations: usize,
    /// Exact HPWL of the final placement.
    pub final_hpwl: f64,
    /// Final density overflow.
    pub final_overflow: f64,
    /// Whether the overflow target was reached (vs. iteration cap).
    pub converged: bool,
    /// Per-iteration history.
    pub history: Vec<IterRecord>,
    /// Phase timing.
    pub timing: GpTiming,
}

/// Result of global placement: coordinates plus statistics.
#[derive(Debug, Clone)]
pub struct GpResult<T> {
    /// Final cell-center coordinates (movable cells spread, fixed intact).
    pub placement: Placement<T>,
    /// Run statistics.
    pub stats: GpStats,
}

/// The global placer; construct with a [`GpConfig`] and call
/// [`GlobalPlacer::place`]. See the [crate example](crate).
pub struct GlobalPlacer<T> {
    config: GpConfig<T>,
}

/// The density model: single electric field, or one per fence region.
/// One instance exists per placement run; variant size is irrelevant.
#[allow(clippy::large_enum_variant)]
enum DensityModel<T: Float> {
    Single(DensityOp<T>),
    Fenced(FencedDensityOp<T>),
}

impl<T: Float> DensityModel<T> {
    fn bake_fixed(&mut self, nl: &Netlist<T>, p: &Placement<T>) {
        match self {
            DensityModel::Single(op) => op.bake_fixed(nl, p),
            DensityModel::Fenced(op) => op.bake_fixed(nl, p),
        }
    }

    fn overflow(&mut self, nl: &Netlist<T>, p: &Placement<T>) -> T {
        match self {
            DensityModel::Single(op) => op.overflow(nl, p),
            DensityModel::Fenced(op) => op.overflow(nl, p),
        }
    }

    fn forward_backward(&mut self, nl: &Netlist<T>, p: &Placement<T>, g: &mut Gradient<T>) -> T {
        match self {
            DensityModel::Single(op) => op.forward_backward(nl, p, g),
            DensityModel::Fenced(op) => op.forward_backward(nl, p, g),
        }
    }
}

/// The smooth wirelength operator behind the configured model.
/// One instance exists per placement run; variant size is irrelevant.
#[allow(clippy::large_enum_variant)]
enum WlOp<T: Float> {
    Wa(WaWirelength<T>),
    Lse(LseWirelength<T>),
}

impl<T: Float> WlOp<T> {
    fn set_gamma(&mut self, gamma: T) {
        match self {
            WlOp::Wa(op) => op.set_gamma(gamma),
            WlOp::Lse(op) => op.set_gamma(gamma),
        }
    }

    fn forward_backward(&mut self, nl: &Netlist<T>, p: &Placement<T>, g: &mut Gradient<T>) -> T {
        match self {
            WlOp::Wa(op) => op.forward_backward(nl, p, g),
            WlOp::Lse(op) => op.forward_backward(nl, p, g),
        }
    }
}

/// Objective adapter: flat params `[x_mov..., y_mov...]` to operators, with
/// Jacobi preconditioning and per-phase timing.
struct PlacementObjective<'a, T: Float> {
    nl: &'a Netlist<T>,
    wl: &'a mut WlOp<T>,
    density: &'a mut DensityModel<T>,
    lambda: T,
    pos: Placement<T>,
    grad: Gradient<T>,
    /// Precomputed `#pins` per movable cell (wirelength preconditioner).
    pin_counts: Vec<T>,
    /// Precomputed charge per movable cell (density preconditioner).
    charges: Vec<T>,
    t_wl: Duration,
    t_density: Duration,
    evals: usize,
}

impl<'a, T: Float> PlacementObjective<'a, T> {
    fn unpack(&mut self, params: &[T]) {
        let n = self.nl.num_movable();
        self.pos.x[..n].copy_from_slice(&params[..n]);
        self.pos.y[..n].copy_from_slice(&params[n..]);
    }
}

impl<'a, T: Float> ObjectiveFn<T> for PlacementObjective<'a, T> {
    fn eval(&mut self, params: &[T], grad_out: &mut [T]) -> T {
        let n = self.nl.num_movable();
        self.unpack(params);
        self.grad.reset();
        self.evals += 1;

        let t0 = Instant::now();
        let wl_cost = self.wl.forward_backward(self.nl, &self.pos, &mut self.grad);
        self.t_wl += t0.elapsed();

        let t1 = Instant::now();
        let mut dgrad = Gradient::zeros(self.pos.len());
        let d_cost = self
            .density
            .forward_backward(self.nl, &self.pos, &mut dgrad);
        self.grad.axpy(self.lambda, &dgrad);
        self.t_density += t1.elapsed();

        // Jacobi preconditioning: divide by the diagonal Hessian proxy
        // (#pins + lambda * charge), the ePlace/DREAMPlace conditioner.
        for i in 0..n {
            let precond = (self.pin_counts[i] + self.lambda * self.charges[i]).max(T::ONE);
            grad_out[i] = self.grad.x[i] / precond;
            grad_out[n + i] = self.grad.y[i] / precond;
        }
        wl_cost + self.lambda * d_cost
    }
}

fn make_solver<T: Float>(kind: SolverKind, n: usize, initial_step: T) -> Box<dyn Optimizer<T>> {
    match kind {
        SolverKind::Nesterov => Box::new(NesterovOptimizer::new(n, initial_step)),
        SolverKind::Adam { lr, decay } => {
            Box::new(Adam::new(n, T::from_f64(lr)).with_decay(T::from_f64(decay)))
        }
        SolverKind::SgdMomentum { lr, decay } => {
            Box::new(SgdMomentum::new(n, T::from_f64(lr)).with_decay(T::from_f64(decay)))
        }
        SolverKind::ConjugateGradient => Box::new(ConjugateGradient::new(n, initial_step)),
    }
}

impl<T: Float> GlobalPlacer<T> {
    /// Creates a placer from a configuration.
    pub fn new(config: GpConfig<T>) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GpConfig<T> {
        &self.config
    }

    /// Runs global placement from scratch.
    ///
    /// `fixed` supplies the coordinates of fixed cells (movable entries are
    /// ignored).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::Transform`] for unsupported bin grids and
    /// [`GpError::Diverged`] if the objective becomes non-finite.
    pub fn place(&self, nl: &Netlist<T>, fixed: &Placement<T>) -> Result<GpResult<T>, GpError> {
        let pos = initial_placement(nl, fixed, self.config.noise_frac, self.config.seed);
        self.place_from(nl, pos, None)
    }

    /// Runs global placement from an existing placement (used by the
    /// routability loop to restart after cell inflation). `lambda0`
    /// overrides the automatic density-weight initialization when given.
    ///
    /// # Errors
    ///
    /// Same as [`GlobalPlacer::place`].
    pub fn place_from(
        &self,
        nl: &Netlist<T>,
        mut pos: Placement<T>,
        lambda0: Option<T>,
    ) -> Result<GpResult<T>, GpError> {
        let cfg = &self.config;
        let t_start = Instant::now();
        let mut timing = GpTiming::default();

        // --- operators -------------------------------------------------
        let grid = BinGrid::new(nl.region(), cfg.bins.0, cfg.bins.1)?;
        let bin_size = (grid.bin_width() + grid.bin_height()) * T::HALF;
        let gamma_sched = GammaScheduler::new(bin_size, cfg.gamma_base_bins);
        let gamma0 = gamma_sched.gamma(T::ONE);

        let mut wl = match cfg.wirelength {
            WirelengthModel::Wa(strategy) => {
                WlOp::Wa(WaWirelength::new(strategy, gamma0).with_threads(cfg.threads))
            }
            WirelengthModel::Lse => WlOp::Lse(LseWirelength::new(gamma0).with_threads(cfg.threads)),
        };
        let mut density = match &cfg.fence {
            None => DensityModel::Single(
                DensityOp::with_backend(
                    grid.clone(),
                    cfg.density_strategy,
                    cfg.target_density,
                    cfg.dct_backend,
                )?
                .with_threads(cfg.threads),
            ),
            Some(spec) => DensityModel::Fenced(FencedDensityOp::new(
                nl,
                grid.clone(),
                cfg.density_strategy,
                cfg.target_density,
                cfg.dct_backend,
                spec.clone(),
            )?),
        };
        density.bake_fixed(nl, &pos);

        let n = nl.num_movable();
        let pin_counts: Vec<T> = (0..n)
            .map(|i| T::from_usize(nl.cell_pins(dp_netlist::CellId::new(i)).len()))
            .collect();
        let inv_bin_area = T::ONE / grid.bin_area();
        let charges: Vec<T> = (0..n)
            .map(|i| nl.cell_widths()[i] * nl.cell_heights()[i] * inv_bin_area)
            .collect();

        // --- optional wirelength-only initial stage (RePlAce mode) ------
        let t_init = Instant::now();
        if let InitKind::WirelengthOnly { iters } = cfg.init {
            let mut obj = PlacementObjective {
                nl,
                wl: &mut wl,
                density: &mut density,
                lambda: T::ZERO,
                pos: pos.clone(),
                grad: Gradient::zeros(pos.len()),
                pin_counts: pin_counts.clone(),
                charges: charges.clone(),
                t_wl: Duration::ZERO,
                t_density: Duration::ZERO,
                evals: 0,
            };
            // Wirelength-only: skip the density term entirely by evaluating
            // through a thin closure that zeroes lambda (it already is) but
            // we also avoid the density forward by using the WA op directly.
            let mut params = pack(&pos, n);
            let mut solver = ConjugateGradient::new(2 * n, bin_size);
            let mut wl_only = |p: &[T], g: &mut [T]| -> T {
                obj.unpack(p);
                obj.grad.reset();
                let c = obj.wl.forward_backward(obj.nl, &obj.pos, &mut obj.grad);
                for i in 0..n {
                    let pre = obj.pin_counts[i].max(T::ONE);
                    g[i] = obj.grad.x[i] / pre;
                    g[n + i] = obj.grad.y[i] / pre;
                }
                c
            };
            for _ in 0..iters {
                let _ = solver.step(&mut wl_only, &mut params);
                clamp_params(&mut params, nl);
            }
            unpack_into(&params, &mut pos, n);
        }
        timing.init = t_init.elapsed();

        // --- lambda initialization --------------------------------------
        let mut g_wl = Gradient::zeros(pos.len());
        let _ = wl.forward_backward(nl, &pos, &mut g_wl);
        let mut g_d = Gradient::zeros(pos.len());
        let _ = density.forward_backward(nl, &pos, &mut g_d);
        let wl_norm = g_wl.l1_norm(n);
        let d_norm = g_d.l1_norm(n).max(T::MIN_POSITIVE);
        let lambda_init = lambda0.unwrap_or(wl_norm / d_norm);

        let hpwl0 = hpwl(nl, &pos);
        let ref_delta = cfg
            .ref_delta_hpwl
            .unwrap_or(hpwl0 * T::from_f64(0.005))
            .max(T::MIN_POSITIVE);
        let mut lambda_sched = DensityWeightScheduler::new(
            lambda_init,
            cfg.mu_min,
            cfg.mu_max,
            ref_delta,
            cfg.tcad_mu_stabilization,
        );

        // --- main loop ---------------------------------------------------
        let mut obj = PlacementObjective {
            nl,
            wl: &mut wl,
            density: &mut density,
            lambda: lambda_sched.lambda(),
            pos: pos.clone(),
            grad: Gradient::zeros(pos.len()),
            pin_counts,
            charges,
            t_wl: Duration::ZERO,
            t_density: Duration::ZERO,
            evals: 0,
        };
        let mut params = pack(&pos, n);
        let mut solver = make_solver(cfg.solver, 2 * n, bin_size);

        let mut history = Vec::with_capacity(cfg.max_iters.min(1024));
        let mut prev_hpwl = hpwl0;
        let mut converged = false;
        let mut iterations = 0;
        let mut prev_op_time = Duration::ZERO;

        for k in 0..cfg.max_iters {
            iterations = k + 1;
            let t_step = Instant::now();
            let info = solver.step(&mut obj, &mut params);
            clamp_params(&mut params, nl);
            let step_elapsed = t_step.elapsed();

            if !info.cost.is_finite() {
                return Err(GpError::Diverged { iteration: k });
            }

            let t_book = Instant::now();
            obj.unpack(&params);
            let cur_hpwl = hpwl(nl, &obj.pos);
            let overflow = obj.density.overflow(nl, &obj.pos);
            let gamma = gamma_sched.gamma(overflow);
            obj.wl.set_gamma(gamma);

            if (k + 1) % cfg.lambda_update_interval.max(1) == 0 {
                obj.lambda = lambda_sched.update(cur_hpwl - prev_hpwl);
            }
            prev_hpwl = cur_hpwl;

            history.push(IterRecord {
                iteration: k,
                hpwl: cur_hpwl.to_f64(),
                overflow: overflow.to_f64(),
                lambda: obj.lambda.to_f64(),
                gamma: gamma.to_f64(),
            });
            timing.bookkeeping += t_book.elapsed();

            // Phase attribution: operator time accumulates inside eval;
            // whatever remains of the step is solver arithmetic.
            let op_time = obj.t_wl + obj.t_density;
            timing.solver += step_elapsed.saturating_sub(op_time.saturating_sub(prev_op_time));
            prev_op_time = op_time;
            timing.wirelength = obj.t_wl;
            timing.density = obj.t_density;

            if overflow <= cfg.target_overflow && k + 1 >= cfg.min_iters {
                converged = true;
                break;
            }
        }

        unpack_into(&params, &mut pos, n);
        timing.total = t_start.elapsed();

        let stats = GpStats {
            iterations,
            final_hpwl: hpwl(nl, &pos).to_f64(),
            final_overflow: history.last().map(|r| r.overflow).unwrap_or(f64::NAN),
            converged,
            history,
            timing,
        };
        Ok(GpResult {
            placement: pos,
            stats,
        })
    }
}

fn pack<T: Float>(pos: &Placement<T>, n: usize) -> Vec<T> {
    let mut params = Vec::with_capacity(2 * n);
    params.extend_from_slice(&pos.x[..n]);
    params.extend_from_slice(&pos.y[..n]);
    params
}

fn unpack_into<T: Float>(params: &[T], pos: &mut Placement<T>, n: usize) {
    pos.x[..n].copy_from_slice(&params[..n]);
    pos.y[..n].copy_from_slice(&params[n..]);
}

/// Clamps movable cell centers into the region (half a cell inside).
fn clamp_params<T: Float>(params: &mut [T], nl: &Netlist<T>) {
    let n = nl.num_movable();
    let r = nl.region();
    for i in 0..n {
        let hw = nl.cell_widths()[i] * T::HALF;
        let hh = nl.cell_heights()[i] * T::HALF;
        params[i] = params[i].clamp(r.xl + hw, (r.xh - hw).max(r.xl + hw));
        params[n + i] = params[n + i].clamp(r.yl + hh, (r.yh - hh).max(r.yl + hh));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_gen::GeneratorConfig;

    fn small_design() -> dp_gen::GeneratedDesign<f64> {
        GeneratorConfig::new("gp-test", 300, 330)
            .with_seed(5)
            .with_utilization(0.6)
            .generate::<f64>()
            .expect("valid")
    }

    fn quick_config(nl: &Netlist<f64>) -> GpConfig<f64> {
        let mut cfg = GpConfig::auto(nl);
        cfg.max_iters = 400;
        cfg.target_overflow = 0.12;
        cfg
    }

    #[test]
    fn nesterov_spreads_cells_and_reduces_overflow() {
        let d = small_design();
        let cfg = quick_config(&d.netlist);
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("GP runs");
        assert!(
            result.stats.final_overflow < 0.2,
            "overflow {} after {} iters",
            result.stats.final_overflow,
            result.stats.iterations
        );
        // Cells actually spread out from the center cluster.
        let region = d.netlist.region();
        let n = d.netlist.num_movable();
        let min_x = result.placement.x[..n]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max_x = result.placement.x[..n]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_x - min_x > region.width() * 0.5,
            "spread {}",
            max_x - min_x
        );
        assert!(result.stats.final_hpwl.is_finite());
        assert!(result.stats.iterations >= 20);
    }

    #[test]
    fn run_is_deterministic() {
        let d = small_design();
        let cfg = quick_config(&d.netlist);
        let a = GlobalPlacer::new(cfg.clone())
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        let b = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert_eq!(a.stats.iterations, b.stats.iterations);
        assert_eq!(a.stats.final_hpwl, b.stats.final_hpwl);
        assert_eq!(a.placement.x, b.placement.x);
    }

    #[test]
    fn adam_also_converges() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        let bin = d.netlist.region().width() / cfg.bins.0 as f64;
        cfg.solver = SolverKind::Adam {
            lr: bin * 0.5,
            decay: 0.997,
        };
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert!(
            result.stats.final_overflow < 0.3,
            "adam overflow {}",
            result.stats.final_overflow
        );
    }

    #[test]
    fn history_shows_overflow_decreasing() {
        let d = small_design();
        let cfg = quick_config(&d.netlist);
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        let h = &result.stats.history;
        assert!(h.len() >= 20);
        let early: f64 = h[..5].iter().map(|r| r.overflow).sum::<f64>() / 5.0;
        let late: f64 = h[h.len() - 5..].iter().map(|r| r.overflow).sum::<f64>() / 5.0;
        assert!(late < early, "early {early} late {late}");
        // Gamma sharpens as overflow falls.
        assert!(h.last().expect("non-empty").gamma < h[0].gamma);
    }

    #[test]
    fn timing_phases_are_recorded() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.max_iters = 30;
        cfg.target_overflow = 0.0; // force all 30 iterations
        cfg.min_iters = 30;
        let result = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        let t = result.stats.timing;
        assert!(t.total > Duration::ZERO);
        assert!(t.wirelength > Duration::ZERO);
        assert!(t.density > Duration::ZERO);
        assert!(t.density + t.wirelength <= t.total);
    }

    #[test]
    fn wirelength_only_init_lowers_initial_hpwl() {
        let d = small_design();
        let mut cfg = quick_config(&d.netlist);
        cfg.max_iters = 1;
        cfg.min_iters = 1;
        let plain = GlobalPlacer::new(cfg.clone())
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        cfg.init = InitKind::WirelengthOnly { iters: 50 };
        let warm = GlobalPlacer::new(cfg)
            .place(&d.netlist, &d.fixed_positions)
            .expect("ok");
        assert!(warm.stats.timing.init > plain.stats.timing.init);
    }
}
