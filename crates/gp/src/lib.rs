//! Global placement engine — the kernel GP iterations of paper Fig. 2(b).
//!
//! The loop minimizes `WL(x, y) + lambda * D(x, y)` (paper Eq. (2)) with a
//! gradient-descent solver, starting from a random center placement
//! (paper §III: cells at the layout center plus 0.1% Gaussian noise, which
//! the paper found matches bound-to-bound initialization within 0.04%
//! quality at a fraction of the runtime), and runs until the density
//! overflow drops below target.
//!
//! Per iteration:
//!
//! 1. fused wirelength forward+backward (any [`dp_wirelength`] strategy);
//! 2. density forward+backward (the electrostatic operator);
//! 3. Jacobi preconditioning (`grad_i /= (#pins_i + lambda * q_i)`, the
//!    standard ePlace/DREAMPlace conditioning);
//! 4. solver step ([`dp_optim`] engine chosen in the config);
//! 5. `lambda` update per paper Eq. (18) with the TCAD tweak
//!    (`mu <- mu_max * max(0.9999^k, 0.98)` when `p < 0`);
//! 6. `gamma` rescheduled from the overflow (ePlace's exponential ramp).
//!
//! Timing of each phase is recorded so the bench harness can reproduce the
//! paper's runtime-breakdown figures (Figs. 3 and 9).
//!
//! # Examples
//!
//! ```no_run
//! use dp_gen::GeneratorConfig;
//! use dp_gp::{GlobalPlacer, GpConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = GeneratorConfig::new("demo", 1000, 1050).generate::<f64>()?;
//! let config = GpConfig::auto(&design.netlist);
//! let result = GlobalPlacer::new(config).place(&design.netlist, &design.fixed_positions)?;
//! println!("HPWL {} after {} iterations", result.stats.final_hpwl, result.stats.iterations);
//! # Ok(())
//! # }
//! ```

// Library code must surface structured errors instead of panicking;
// tests opt out module-by-module.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod config;
pub mod engine;
pub mod fence;
pub mod init;
pub mod scheduler;

pub use config::{
    DivergenceCause, ExecBinding, FaultInjection, GpConfig, GpError, InitKind, RecoveryPolicy,
    SolverKind, WirelengthModel,
};
pub use engine::{
    GlobalPlacer, GpEngine, GpEngineState, GpResult, GpRollbackState, GpStats, GpStepOutcome,
    GpTiming, IterRecord, RecoveryEvent,
};
pub use fence::{FenceSpec, FencedDensityOp};
pub use init::initial_placement;
pub use scheduler::{DensityWeightScheduler, GammaScheduler};
