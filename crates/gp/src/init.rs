//! Initial placement: center + Gaussian noise (paper §III).

use dp_netlist::{Netlist, Placement};
use dp_num::Float;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Places every movable cell at the region center with Gaussian noise of
/// sigma `noise_frac` times the region extent per axis; fixed cells keep
/// their coordinates from `fixed`.
///
/// The paper sets the noise to 0.1% of the region width/height and reports
/// quality within 0.04% of bound-to-bound initialization at ~21% less GP
/// runtime (§III, Fig. 3).
///
/// # Examples
///
/// ```
/// use dp_gen::GeneratorConfig;
/// use dp_gp::initial_placement;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = GeneratorConfig::new("demo", 64, 70).generate::<f64>()?;
/// let p = initial_placement(&d.netlist, &d.fixed_positions, 0.001, 7);
/// let c = d.netlist.region().center();
/// assert!((p.x[0] - c.x).abs() < d.netlist.region().width() * 0.01);
/// # Ok(())
/// # }
/// ```
pub fn initial_placement<T: Float>(
    netlist: &Netlist<T>,
    fixed: &Placement<T>,
    noise_frac: f64,
    seed: u64,
) -> Placement<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let region = netlist.region();
    let center = region.center();
    let sx = region.width().to_f64() * noise_frac;
    let sy = region.height().to_f64() * noise_frac;
    let mut p = fixed.clone();
    for i in 0..netlist.num_movable() {
        p.x[i] = center.x + T::from_f64(gaussian(&mut rng) * sx);
        p.y[i] = center.y + T::from_f64(gaussian(&mut rng) * sy);
    }
    p
}

/// Standard normal sample via Box-Muller (avoids a distribution dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_gen::GeneratorConfig;

    #[test]
    fn movable_cells_cluster_at_center() {
        let d = GeneratorConfig::new("t", 500, 520)
            .with_seed(3)
            .generate::<f64>()
            .expect("ok");
        let p = initial_placement(&d.netlist, &d.fixed_positions, 0.001, 11);
        let c = d.netlist.region().center();
        let w = d.netlist.region().width();
        let mean_x: f64 = p.x[..500].iter().sum::<f64>() / 500.0;
        assert!((mean_x - c.x).abs() < w * 0.001);
        // noise is small but non-zero
        assert!(p.x[..500].iter().any(|&x| (x - c.x).abs() > 1e-9));
        let spread = p.x[..500]
            .iter()
            .map(|&x| (x - c.x).abs())
            .fold(0.0, f64::max);
        assert!(
            spread < w * 0.01,
            "sigma 0.1% keeps cells within 1% of center"
        );
    }

    #[test]
    fn fixed_cells_untouched() {
        let d = GeneratorConfig::new("t", 100, 110)
            .with_macros(3, 0.1)
            .with_seed(4)
            .generate::<f64>()
            .expect("ok");
        let p = initial_placement(&d.netlist, &d.fixed_positions, 0.001, 11);
        for i in d.netlist.num_movable()..d.netlist.num_cells() {
            assert_eq!(p.x[i], d.fixed_positions.x[i]);
            assert_eq!(p.y[i], d.fixed_positions.y[i]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = GeneratorConfig::new("t", 50, 60)
            .generate::<f64>()
            .expect("ok");
        let a = initial_placement(&d.netlist, &d.fixed_positions, 0.001, 5);
        let b = initial_placement(&d.netlist, &d.fixed_positions, 0.001, 5);
        let c = initial_placement(&d.netlist, &d.fixed_positions, 0.001, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
