//! Independent-set matching: optimal re-assignment of same-size cell
//! batches via the Hungarian solver.

use dp_netlist::{CellId, NetId, Netlist, Placement};
use dp_num::Float;

use crate::hungarian::hungarian;
use crate::incremental::IncrementalHpwl;

/// Batches same-size, net-independent cells and solves the exact
/// assignment of cells to the batch's current slots; commits batches whose
/// optimal assignment lowers HPWL. Returns the number of cells actually
/// moved.
///
/// Independence (no two batch members share a net) makes per-cell costs
/// additive, so the Hungarian optimum is the true batch optimum — the same
/// construction as NTUplace3/ABCDPlace ISM.
pub fn independent_set_matching<T: Float>(
    nl: &Netlist<T>,
    p: &mut Placement<T>,
    batch_size: usize,
) -> usize {
    let batch_size = batch_size.clamp(2, 16);
    let n = nl.num_movable();
    let mut inc = IncrementalHpwl::new(nl, p);

    // Group movable cells by (width, height) bit patterns.
    let mut groups: std::collections::BTreeMap<(u64, u64), Vec<usize>> =
        std::collections::BTreeMap::new();
    for c in 0..n {
        let k = (
            nl.cell_widths()[c].to_f64().to_bits(),
            nl.cell_heights()[c].to_f64().to_bits(),
        );
        groups.entry(k).or_default().push(c);
    }

    let mut moved = 0usize;
    for (_, mut cells) in groups {
        if cells.len() < 2 {
            continue;
        }
        // Order spatially (row-major) so batches are local.
        cells.sort_by(|&a, &b| {
            (p.y[a], p.x[a])
                .partial_cmp(&(p.y[b], p.x[b]))
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut cursor = 0usize;
        while cursor < cells.len() {
            // Build a net-independent batch starting at `cursor`.
            let mut batch: Vec<usize> = Vec::with_capacity(batch_size);
            let mut nets_used: Vec<NetId> = Vec::new();
            let mut next_cursor = None;
            for (off, &c) in cells[cursor..].iter().enumerate() {
                let cell_nets: Vec<NetId> = nl
                    .cell_pins(CellId::new(c))
                    .iter()
                    .map(|&pin| nl.pin_net(pin))
                    .collect();
                if cell_nets.iter().any(|net| nets_used.contains(net)) {
                    continue;
                }
                nets_used.extend(cell_nets);
                batch.push(c);
                if next_cursor.is_none() {
                    next_cursor = Some(cursor + off + 1);
                }
                if batch.len() == batch_size {
                    break;
                }
            }
            cursor = next_cursor.unwrap_or(cells.len()).max(cursor + 1);
            if batch.len() < 2 {
                continue;
            }

            let slots: Vec<(T, T)> = batch.iter().map(|&c| (p.x[c], p.y[c])).collect();
            let b = batch.len();
            // cost[i][j] = HPWL of cell i's nets with cell i at slot j.
            let mut cost = vec![vec![0.0f64; b]; b];
            for i in 0..b {
                let c = batch[i];
                let (ox, oy) = (p.x[c], p.y[c]);
                let ids = [CellId::new(c)];
                for j in 0..b {
                    p.x[c] = slots[j].0;
                    p.y[c] = slots[j].1;
                    cost[i][j] = inc.eval_cells(nl, p, &ids).to_f64();
                }
                p.x[c] = ox;
                p.y[c] = oy;
            }
            let assign = hungarian(&cost);
            let current: f64 = (0..b).map(|i| cost[i][i]).sum();
            let optimal: f64 = (0..b).map(|i| cost[i][assign[i]]).sum();
            if optimal + 1e-9 < current {
                let ids: Vec<CellId> = batch.iter().map(|&c| CellId::new(c)).collect();
                for i in 0..b {
                    let c = batch[i];
                    p.x[c] = slots[assign[i]].0;
                    p.y[c] = slots[assign[i]].1;
                    if assign[i] != i {
                        moved += 1;
                    }
                }
                inc.update_cells(nl, p, &ids);
            }
        }
    }
    moved
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_lg::check_legal;
    use dp_netlist::{hpwl, NetlistBuilder, RowGrid};

    /// Three cells cyclically misplaced across three slots: ISM must find
    /// the rotation that global-swap's pairwise moves may miss.
    #[test]
    fn solves_three_cycle() {
        let rows = RowGrid::uniform(0.0, 0.0, 120.0, 16.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 120.0, 16.0).with_rows(rows);
        let cells: Vec<_> = (0..3).map(|_| b.add_movable_cell(2.0, 8.0)).collect();
        let anchors: Vec<_> = (0..3).map(|_| b.add_fixed_cell(2.0, 8.0)).collect();
        for i in 0..3 {
            b.add_net(1.0, vec![(cells[i], 0.0, 0.0), (anchors[i], 0.0, 0.0)])
                .expect("valid");
        }
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        // Cells in the bottom row, rotated by one slot relative to their
        // anchors, which sit in the top row at x = 10, 60, 110.
        p.x = vec![60.0, 110.0, 10.0, 10.0, 60.0, 110.0];
        p.y = vec![4.0, 4.0, 4.0, 12.0, 12.0, 12.0];
        let before = hpwl(&nl, &p);
        let moved = independent_set_matching(&nl, &mut p, 8);
        assert_eq!(moved, 3, "all three cells rotate");
        let after = hpwl(&nl, &p);
        assert!(
            (after - 24.0).abs() < 1e-9,
            "optimal is 3 nets x 8 dy: {before} -> {after}"
        );
        assert!(check_legal(&nl, &p).is_legal());
    }

    #[test]
    fn batches_respect_net_independence() {
        // Two cells sharing a net can never be in one batch, so a case
        // where only a joint move helps must remain unchanged.
        let rows = RowGrid::uniform(0.0, 0.0, 40.0, 8.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 40.0, 8.0).with_rows(rows);
        let a = b.add_movable_cell(2.0, 8.0);
        let c = b.add_movable_cell(2.0, 8.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![5.0, 15.0];
        p.y = vec![4.0, 4.0];
        let before = hpwl(&nl, &p);
        let moved = independent_set_matching(&nl, &mut p, 8);
        assert_eq!(moved, 0);
        assert_eq!(hpwl(&nl, &p), before);
    }
}
