//! A small O(n^3) Hungarian (Kuhn-Munkres) assignment solver.
//!
//! Used by independent-set matching on batches of up to 16 cells, where the
//! exact assignment is cheap and worthwhile.

/// Solves the square assignment problem: returns `assign` with
/// `assign[row] = column` minimizing the total cost.
///
/// # Panics
///
/// Panics if `cost` is not an `n x n` matrix (`cost.len() == n` and every
/// row of length `n`) or if `n == 0`.
///
/// # Examples
///
/// ```
/// let cost = vec![
///     vec![4.0, 1.0, 3.0],
///     vec![2.0, 0.0, 5.0],
///     vec![3.0, 2.0, 2.0],
/// ];
/// let assign = dp_dplace::hungarian(&cost);
/// assert_eq!(assign, vec![1, 0, 2]); // total 1 + 2 + 2 = 5
/// ```
pub fn hungarian(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    assert!(n > 0, "empty cost matrix");
    assert!(
        cost.iter().all(|r| r.len() == n),
        "cost matrix must be square"
    );

    // Potentials + augmenting path implementation (1-indexed internally).
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assign = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assign[p[j] - 1] = j - 1;
        }
    }
    assign
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn total(cost: &[Vec<f64>], assign: &[usize]) -> f64 {
        assign.iter().enumerate().map(|(i, &j)| cost[i][j]).sum()
    }

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let mut cols: Vec<usize> = (0..n).collect();
        let mut best = f64::INFINITY;
        permute(&mut cols, 0, &mut |perm| {
            let t: f64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            if t < best {
                best = t;
            }
        });
        best
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn identity_matrix_prefers_diagonal_zeroes() {
        let n = 4;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { 1.0 }).collect())
            .collect();
        let assign = hungarian(&cost);
        assert_eq!(assign, vec![0, 1, 2, 3]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [2usize, 3, 5, 6] {
            for _ in 0..20 {
                let cost: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
                    .collect();
                let assign = hungarian(&cost);
                // valid permutation
                let mut seen = vec![false; n];
                for &j in &assign {
                    assert!(!seen[j]);
                    seen[j] = true;
                }
                let got = total(&cost, &assign);
                let want = brute_force(&cost);
                assert!((got - want).abs() < 1e-9, "n={n} got {got} want {want}");
            }
        }
    }

    #[test]
    fn handles_negative_costs() {
        let cost = vec![vec![-5.0, 0.0], vec![0.0, -5.0]];
        let assign = hungarian(&cost);
        assert_eq!(assign, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_ragged_matrix() {
        let _ = hungarian(&[vec![1.0, 2.0], vec![3.0]]);
    }
}
