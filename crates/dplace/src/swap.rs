//! Global swap: exchange equal-size cell pairs toward their optimal
//! regions.

use dp_netlist::{CellId, Netlist, Placement};
use dp_num::Float;

use crate::incremental::IncrementalHpwl;

/// For each movable cell, computes its preferred location (the median of
/// its nets' bounding-box centers, the classic "optimal region" proxy) and
/// tries swapping with equal-size cells near that location; commits
/// HPWL-improving swaps. Returns the number of committed swaps.
pub fn global_swap<T: Float>(nl: &Netlist<T>, p: &mut Placement<T>) -> usize {
    let n = nl.num_movable();
    let mut inc = IncrementalHpwl::new(nl, p);
    let eps = T::from_f64(1e-9);

    // Spatial hash of movable cells for candidate lookup.
    let region = nl.region();
    let bucket = (region.width().to_f64() / 16.0).max(1e-9);
    let key = |x: T, y: T| -> (i64, i64) {
        (
            (x.to_f64() / bucket).floor() as i64,
            (y.to_f64() / bucket).floor() as i64,
        )
    };
    let mut grid: std::collections::HashMap<(i64, i64), Vec<usize>> =
        std::collections::HashMap::new();
    for c in 0..n {
        grid.entry(key(p.x[c], p.y[c])).or_default().push(c);
    }

    let mut swaps = 0usize;
    for c in 0..n {
        let target = optimal_position(nl, p, c);
        let (tx, ty) = match target {
            Some(t) => t,
            None => continue,
        };
        // Already close to the target: skip.
        if (p.x[c] - tx).abs().to_f64() < bucket && (p.y[c] - ty).abs().to_f64() < bucket {
            continue;
        }
        let (bx, by) = key(tx, ty);
        let mut best: Option<(T, usize)> = None;
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(cands) = grid.get(&(bx + dx, by + dy)) else {
                    continue;
                };
                for &other in cands {
                    if other == c
                        || nl.cell_widths()[other] != nl.cell_widths()[c]
                        || nl.cell_heights()[other] != nl.cell_heights()[c]
                    {
                        continue;
                    }
                    let ids = [CellId::new(c), CellId::new(other)];
                    let before = inc.cost_of_cells(nl, &ids);
                    swap_positions(p, c, other);
                    let after = inc.eval_cells(nl, p, &ids);
                    swap_positions(p, c, other); // restore
                    let gain = before - after;
                    if gain > eps && best.is_none_or(|(g, _)| gain > g) {
                        best = Some((gain, other));
                    }
                }
            }
        }
        if let Some((_, other)) = best {
            let (kc, ko) = (key(p.x[c], p.y[c]), key(p.x[other], p.y[other]));
            swap_positions(p, c, other);
            inc.update_cells(nl, p, &[CellId::new(c), CellId::new(other)]);
            // Keep the spatial hash in sync.
            if kc != ko {
                if let Some(v) = grid.get_mut(&kc) {
                    v.retain(|&x| x != c);
                    v.push(other);
                }
                if let Some(v) = grid.get_mut(&ko) {
                    v.retain(|&x| x != other);
                    v.push(c);
                }
            }
            swaps += 1;
        }
    }
    swaps
}

/// The median of the incident nets' bounding-box centers, computed with the
/// cell's own pins excluded; `None` for cells with no external connections.
pub(crate) fn optimal_position<T: Float>(
    nl: &Netlist<T>,
    p: &Placement<T>,
    cell: usize,
) -> Option<(T, T)> {
    let cid = CellId::new(cell);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &pin in nl.cell_pins(cid) {
        let net = nl.pin_net(pin);
        let mut x_lo = T::INFINITY;
        let mut x_hi = T::NEG_INFINITY;
        let mut y_lo = T::INFINITY;
        let mut y_hi = T::NEG_INFINITY;
        let mut external = false;
        for &q in nl.net_pins(net) {
            let oc = nl.pin_cell(q);
            if oc == cid {
                continue;
            }
            external = true;
            let (dx, dy) = nl.pin_offset(q);
            let px = p.x[oc.index()] + dx;
            let py = p.y[oc.index()] + dy;
            x_lo = x_lo.min(px);
            x_hi = x_hi.max(px);
            y_lo = y_lo.min(py);
            y_hi = y_hi.max(py);
        }
        if external {
            xs.push((x_lo + x_hi) * T::HALF);
            ys.push((y_lo + y_hi) * T::HALF);
        }
    }
    if xs.is_empty() {
        return None;
    }
    Some((median(&mut xs), median(&mut ys)))
}

fn median<T: Float>(v: &mut [T]) -> T {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v[v.len() / 2]
}

fn swap_positions<T: Float>(p: &mut Placement<T>, a: usize, b: usize) {
    p.x.swap(a, b);
    p.y.swap(a, b);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_lg::check_legal;
    use dp_netlist::{hpwl, NetlistBuilder, RowGrid};

    /// Two cells placed at each other's ideal location must swap.
    #[test]
    fn swaps_mutually_misplaced_cells() {
        let rows = RowGrid::uniform(0.0, 0.0, 100.0, 8.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 100.0, 8.0).with_rows(rows);
        let a = b.add_movable_cell(2.0, 8.0);
        let c = b.add_movable_cell(2.0, 8.0);
        let l = b.add_fixed_cell(2.0, 8.0);
        let r = b.add_fixed_cell(2.0, 8.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (r, 0.0, 0.0)])
            .expect("valid");
        b.add_net(1.0, vec![(c, 0.0, 0.0), (l, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![5.0, 95.0, 1.0, 99.0]; // a left (wants right), c right (wants left)
        p.y = vec![4.0; 4];
        let before = hpwl(&nl, &p);
        let swaps = global_swap(&nl, &mut p);
        assert_eq!(swaps, 1);
        assert!(hpwl(&nl, &p) < before * 0.2, "big win expected");
        assert!(p.x[0] > p.x[1]);
        assert!(check_legal(&nl, &p).is_legal());
    }

    #[test]
    fn ignores_cells_of_different_width() {
        let rows = RowGrid::uniform(0.0, 0.0, 100.0, 8.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 100.0, 8.0).with_rows(rows);
        let a = b.add_movable_cell(2.0, 8.0);
        let c = b.add_movable_cell(4.0, 8.0); // different width
        let l = b.add_fixed_cell(2.0, 8.0);
        let r = b.add_fixed_cell(2.0, 8.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (r, 0.0, 0.0)])
            .expect("valid");
        b.add_net(1.0, vec![(c, 0.0, 0.0), (l, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![5.0, 95.0, 1.0, 99.0];
        p.y = vec![4.0; 4];
        assert_eq!(global_swap(&nl, &mut p), 0);
    }
}
