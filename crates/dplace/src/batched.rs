//! Batched concurrent detailed placement, after ABCDPlace (Lin et al.,
//! TCAD'20), which the paper cites as the route to GPU-accelerated DP and
//! an estimated further 18x flow speedup (paper §IV-A, Fig. 9 discussion).
//!
//! The classic sequential operators commit one move at a time; the batched
//! versions split each pass into
//!
//! 1. a **propose** phase — every cell's best move is evaluated
//!    concurrently against a read-only placement snapshot, and
//! 2. a **commit** phase — proposals are applied in deterministic order,
//!    each re-validated against the live placement so stale gains (from
//!    moves committed earlier in the batch) are rejected.
//!
//! The result is deterministic regardless of worker count, legality is
//! preserved move-by-move, and quality matches the sequential operators to
//! within the usual greedy-order noise.

use dp_netlist::{CellId, Netlist, Placement};
use dp_num::parallel::DisjointSlice;
use dp_num::{Float, WorkerPool};

use crate::incremental::IncrementalHpwl;
use crate::swap::optimal_position;

/// One proposed swap: partner cell and the gain measured at propose time.
#[derive(Debug, Clone, Copy)]
struct Proposal<T> {
    partner: u32,
    gain: T,
}

/// Batched global swap: concurrent proposal, deterministic sequential
/// commit. Returns the number of committed swaps.
///
/// # Examples
///
/// ```
/// use dp_dplace::batched_global_swap;
/// use dp_gen::GeneratorConfig;
/// use dp_gp::initial_placement;
/// use dp_lg::Legalizer;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = GeneratorConfig::new("b", 300, 330).generate::<f64>()?;
/// let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.05, 1);
/// Legalizer::new().legalize(&d.netlist, &mut p)?;
/// let swaps = batched_global_swap(&d.netlist, &mut p, 4);
/// assert!(swaps > 0);
/// # Ok(())
/// # }
/// ```
pub fn batched_global_swap<T: Float>(
    nl: &Netlist<T>,
    p: &mut Placement<T>,
    threads: usize,
) -> usize {
    // Workers spawn once here and are reused by every propose round.
    let pool = WorkerPool::new(threads);
    batched_global_swap_on(nl, p, &pool)
}

/// [`batched_global_swap`] on a caller-owned worker pool, so a multi-round
/// detailed-placement run pays the thread spawn cost exactly once.
pub fn batched_global_swap_on<T: Float>(
    nl: &Netlist<T>,
    p: &mut Placement<T>,
    pool: &WorkerPool,
) -> usize {
    // Jacobi-style batches converge to the sequential (Gauss-Seidel)
    // fixed point over a few propose/commit rounds.
    let mut total = 0usize;
    for _ in 0..8 {
        let committed = batched_swap_round(nl, p, pool);
        total += committed;
        if committed == 0 {
            break;
        }
    }
    total
}

/// One propose-parallel / commit-sequential round.
fn batched_swap_round<T: Float>(nl: &Netlist<T>, p: &mut Placement<T>, pool: &WorkerPool) -> usize {
    let n = nl.num_movable();
    let mut inc = IncrementalHpwl::new(nl, p);
    let eps = T::from_f64(1e-9);

    // Spatial hash (same construction as the sequential operator).
    let region = nl.region();
    let bucket = (region.width().to_f64() / 16.0).max(1e-9);
    let key = |x: T, y: T| -> (i64, i64) {
        (
            (x.to_f64() / bucket).floor() as i64,
            (y.to_f64() / bucket).floor() as i64,
        )
    };
    let mut grid: std::collections::HashMap<(i64, i64), Vec<u32>> =
        std::collections::HashMap::new();
    for c in 0..n {
        grid.entry(key(p.x[c], p.y[c])).or_default().push(c as u32);
    }

    // --- propose phase (parallel, read-only) ---------------------------
    let mut proposals: Vec<Option<Proposal<T>>> = vec![None; n];
    {
        let out = DisjointSlice::new(&mut proposals);
        let chunk = pool.chunk_for(n);
        let p_ref = &*p;
        let inc_ref = &inc;
        let grid_ref = &grid;
        pool.run(n, chunk, |range| {
            // Scratch placement clone per chunk would be O(n); instead we
            // evaluate candidate swaps through a coordinate-override view.
            for c in range {
                let Some((tx, ty)) = optimal_position(nl, p_ref, c) else {
                    continue;
                };
                if (p_ref.x[c] - tx).abs().to_f64() < bucket
                    && (p_ref.y[c] - ty).abs().to_f64() < bucket
                {
                    continue;
                }
                let (bx, by) = key(tx, ty);
                let mut best: Option<Proposal<T>> = None;
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let Some(cands) = grid_ref.get(&(bx + dx, by + dy)) else {
                            continue;
                        };
                        for &other in cands {
                            let other = other as usize;
                            if other == c
                                || nl.cell_widths()[other] != nl.cell_widths()[c]
                                || nl.cell_heights()[other] != nl.cell_heights()[c]
                            {
                                continue;
                            }
                            let gain = swap_gain(nl, p_ref, inc_ref, c, other);
                            if gain > eps && best.is_none_or(|b| gain > b.gain) {
                                best = Some(Proposal {
                                    partner: other as u32,
                                    gain,
                                });
                            }
                        }
                    }
                }
                if let Some(b) = best {
                    // SAFETY: index `c` is unique to this chunk.
                    unsafe { out.write(c, Some(b)) };
                }
            }
        });
    }

    // --- commit phase (sequential, re-validated) ------------------------
    let mut swaps = 0usize;
    let mut touched = vec![false; n];
    for c in 0..n {
        let Some(proposal) = proposals[c] else {
            continue;
        };
        let other = proposal.partner as usize;
        // Skip when either endpoint already moved in this batch; their
        // proposal gains are stale.
        if touched[c] || touched[other] {
            continue;
        }
        let gain = swap_gain(nl, p, &inc, c, other);
        if gain > eps {
            p.x.swap(c, other);
            p.y.swap(c, other);
            inc.update_cells(nl, p, &[CellId::new(c), CellId::new(other)]);
            touched[c] = true;
            touched[other] = true;
            swaps += 1;
        }
    }
    swaps
}

/// HPWL gain of swapping cells `a` and `b` (positive = improvement),
/// evaluated without mutating the placement.
fn swap_gain<T: Float>(
    nl: &Netlist<T>,
    p: &Placement<T>,
    inc: &IncrementalHpwl<T>,
    a: usize,
    b: usize,
) -> T {
    let ids = [CellId::new(a), CellId::new(b)];
    let before = inc.cost_of_cells(nl, &ids);
    let after = inc.eval_cells_swapped(nl, p, a, b);
    before - after
}

/// The batched detailed placement driver: batched global swap plus the
/// sequential reorder/ISM passes (which are window- and batch-local
/// already). `threads` controls the proposal parallelism.
#[derive(Debug, Clone)]
pub struct BatchedDetailedPlacer {
    /// Maximum rounds of the operator cycle.
    pub max_rounds: usize,
    /// Sliding-window size for local reordering.
    pub window: usize,
    /// Batch size for independent-set matching.
    pub ism_batch: usize,
    /// Worker threads for the proposal phases.
    pub threads: usize,
}

impl Default for BatchedDetailedPlacer {
    fn default() -> Self {
        Self {
            max_rounds: 3,
            window: 3,
            ism_batch: 8,
            threads: 1,
        }
    }
}

impl BatchedDetailedPlacer {
    /// Creates the driver with `threads` proposal workers.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::default()
        }
    }

    /// Runs detailed placement in place (placement must be legal).
    pub fn run<T: Float>(&self, nl: &Netlist<T>, p: &mut Placement<T>) -> crate::DpStats {
        let t0 = std::time::Instant::now();
        let initial = dp_netlist::hpwl(nl, p).to_f64();
        // One pool for the whole run: every round's propose phase reuses it.
        let pool = WorkerPool::new(self.threads);
        let mut moves = 0usize;
        for _ in 0..self.max_rounds {
            let before = moves;
            moves += batched_global_swap_on(nl, p, &pool);
            moves += crate::local_reorder(nl, p, self.window);
            moves += crate::independent_set_matching(nl, p, self.ism_batch.clamp(2, 16));
            if moves == before {
                break;
            }
        }
        crate::DpStats {
            initial_hpwl: initial,
            final_hpwl: dp_netlist::hpwl(nl, p).to_f64(),
            moves,
            runtime: t0.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_gen::GeneratorConfig;
    use dp_gp::initial_placement;
    use dp_lg::{check_legal, Legalizer};
    use dp_netlist::hpwl;

    fn legal_start(seed: u64, cells: usize) -> (Netlist<f64>, Placement<f64>) {
        let d = GeneratorConfig::new("batch", cells, cells + cells / 10)
            .with_seed(seed)
            .with_utilization(0.55)
            .generate::<f64>()
            .expect("valid");
        let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.08, seed);
        Legalizer::new().legalize(&d.netlist, &mut p).expect("fits");
        (d.netlist, p)
    }

    #[test]
    fn batched_swap_improves_and_stays_legal() {
        let (nl, mut p) = legal_start(3, 300);
        let before = hpwl(&nl, &p);
        let swaps = batched_global_swap(&nl, &mut p, 4);
        assert!(swaps > 0);
        assert!(hpwl(&nl, &p) < before);
        assert!(check_legal(&nl, &p).is_legal());
    }

    #[test]
    fn batched_result_is_thread_count_invariant() {
        let (nl, p0) = legal_start(5, 250);
        let mut p1 = p0.clone();
        let mut p2 = p0.clone();
        let s1 = batched_global_swap(&nl, &mut p1, 1);
        let s2 = batched_global_swap(&nl, &mut p2, 4);
        assert_eq!(s1, s2, "same commits at any worker count");
        assert_eq!(p1.x, p2.x);
        assert_eq!(p1.y, p2.y);
    }

    #[test]
    fn batched_quality_matches_sequential_driver() {
        let (nl, p0) = legal_start(7, 300);
        let mut seq = p0.clone();
        let mut bat = p0.clone();
        let s_seq = crate::DetailedPlacer::new().run(&nl, &mut seq);
        let s_bat = BatchedDetailedPlacer::new(4).run(&nl, &mut bat);
        // The fixed-point batching may find *more* improvements than one
        // sequential sweep; it must never be meaningfully worse.
        assert!(
            s_bat.final_hpwl <= s_seq.final_hpwl * 1.01,
            "batched {} vs sequential {}",
            s_bat.final_hpwl,
            s_seq.final_hpwl
        );
        assert!(check_legal(&nl, &bat).is_legal());
    }
}
