//! Guarded detailed-placement driver: per-pass quality gates with
//! revert-to-snapshot and pass disabling.
//!
//! Every DP operator in this crate commits only HPWL-improving moves, so a
//! pass that *worsens* HPWL signals a defect (or injected fault). The
//! guarded driver snapshots the placement around each pass, measures HPWL
//! before/after, and on a worsening beyond [`DetailedPlacer::hpwl_tolerance`]
//! reverts the snapshot and disables that pass for the rest of the run —
//! the other operators keep optimizing. A wall-clock budget
//! ([`DetailedPlacer::max_seconds`]) stops the run between passes.
//!
//! Off the failure path the driver is bit-identical to
//! [`DetailedPlacer::run`]: it executes the same pass sequence with the
//! same parameters and stopping rule, and the extra HPWL evaluations do
//! not mutate the placement.

use std::fmt;
use std::time::Instant;

use dp_netlist::{hpwl, Netlist, Placement};
use dp_num::Float;

use crate::{global_swap, independent_set_matching, local_reorder, DetailedPlacer, DpStats};

/// One of the three detailed-placement operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpPass {
    /// Pairwise swaps of equal-size cells toward optimal regions.
    GlobalSwap,
    /// Sliding-window re-sequencing within rows.
    LocalReorder,
    /// Batched same-size slot assignment via the Hungarian solver.
    IndependentSetMatching,
}

impl DpPass {
    /// Stable index for per-pass bookkeeping.
    fn index(self) -> usize {
        match self {
            DpPass::GlobalSwap => 0,
            DpPass::LocalReorder => 1,
            DpPass::IndependentSetMatching => 2,
        }
    }

    /// The three passes in driver order.
    pub const ALL: [DpPass; 3] = [
        DpPass::GlobalSwap,
        DpPass::LocalReorder,
        DpPass::IndependentSetMatching,
    ];
}

impl fmt::Display for DpPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpPass::GlobalSwap => write!(f, "global_swap"),
            DpPass::LocalReorder => write!(f, "local_reorder"),
            DpPass::IndependentSetMatching => write!(f, "independent_set_matching"),
        }
    }
}

/// Fault injection for exercising the DP degradation ladder in tests. Off
/// by default; never set in production flows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpFaultInjection {
    /// After the named pass first runs, swap two equal-size movable cells
    /// so the pass appears to have worsened HPWL (legality-preserving by
    /// identical footprint). The guard must catch and revert it.
    pub worsen_pass: Option<DpPass>,
}

/// What the guard did during a [`DetailedPlacer::run_guarded`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DpGuardReport {
    /// Passes disabled after worsening HPWL, with the relative worsening
    /// that triggered the gate.
    pub disabled: Vec<(DpPass, f64)>,
    /// Snapshot reverts performed (one per disabled pass).
    pub reverts: usize,
    /// The wall-clock budget stopped the run early.
    pub budget_exhausted: bool,
}

impl DpGuardReport {
    /// True when no guard fired — the run matched the unguarded driver.
    pub fn is_clean(&self) -> bool {
        self.disabled.is_empty() && self.reverts == 0 && !self.budget_exhausted
    }
}

impl DetailedPlacer {
    /// Runs detailed placement with per-pass quality gates; see the
    /// [module docs](crate::guarded). The placement must be legal;
    /// all operators (and the guard's reverts) keep it legal.
    pub fn run_guarded<T: Float>(
        &self,
        nl: &Netlist<T>,
        p: &mut Placement<T>,
    ) -> (DpStats, DpGuardReport) {
        let t0 = Instant::now();
        let initial = hpwl(nl, p).to_f64();
        let mut moves = 0usize;
        let mut enabled = [true; 3];
        let mut report = DpGuardReport::default();
        let mut injected = self.fault_injection.worsen_pass;

        'rounds: for _ in 0..self.max_rounds {
            let before_moves = moves;
            for pass in DpPass::ALL {
                if !enabled[pass.index()] {
                    continue;
                }
                if let Some(budget) = self.max_seconds {
                    if t0.elapsed().as_secs_f64() >= budget {
                        report.budget_exhausted = true;
                        self.telemetry.point(
                            "degradation",
                            format!("dp: wall-clock budget {budget:.1}s exhausted -> stopped early"),
                        );
                        break 'rounds;
                    }
                }
                let snapshot = p.clone();
                let before = hpwl(nl, p).to_f64();
                let pass_moves = {
                    let _k = self.telemetry.kernel_span(match pass {
                        DpPass::GlobalSwap => "dp.global_swap",
                        DpPass::LocalReorder => "dp.local_reorder",
                        DpPass::IndependentSetMatching => "dp.ism",
                    });
                    match pass {
                        DpPass::GlobalSwap => global_swap(nl, p),
                        DpPass::LocalReorder => local_reorder(nl, p, self.window),
                        DpPass::IndependentSetMatching => {
                            independent_set_matching(nl, p, self.ism_batch.clamp(2, 16))
                        }
                    }
                };
                if injected == Some(pass) {
                    injected = None;
                    inject_worsening_swaps(nl, p, before * (1.0 + 1e-6) + 1e-6);
                }
                let after = hpwl(nl, p).to_f64();
                let limit = before * (1.0 + self.hpwl_tolerance) + self.hpwl_tolerance;
                // `after > limit` would miss NaN; the gate must also fire
                // when the pass went non-finite.
                let within = matches!(
                    after.partial_cmp(&limit),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                );
                if !within {
                    // Worsened (or went non-finite): revert and disable.
                    *p = snapshot;
                    enabled[pass.index()] = false;
                    report.reverts += 1;
                    let worsening = (after - before) / before.max(1.0);
                    self.telemetry.point(
                        "degradation",
                        format!("dp: {pass} worsened hpwl by {worsening:.3e} -> reverted and disabled"),
                    );
                    report.disabled.push((pass, worsening));
                } else {
                    moves += pass_moves;
                }
            }
            if moves == before_moves {
                break;
            }
        }
        (
            DpStats {
                initial_hpwl: initial,
                final_hpwl: hpwl(nl, p).to_f64(),
                moves,
                runtime: t0.elapsed().as_secs_f64(),
            },
            report,
        )
    }
}

/// Swaps positions of equal-size movable cells, keeping each swap that
/// increases HPWL, until HPWL exceeds `target` (fault injection only).
/// Identical footprints keep the placement legal. No-op if no worsening
/// pairs exist among the scanned cells.
fn inject_worsening_swaps<T: Float>(nl: &Netlist<T>, p: &mut Placement<T>, target: f64) {
    let n = nl.num_movable().min(128);
    let mut current = hpwl(nl, p).to_f64();
    for i in 0..n {
        for j in (i + 1)..n {
            if nl.cell_widths()[i] == nl.cell_widths()[j]
                && nl.cell_heights()[i] == nl.cell_heights()[j]
            {
                p.x.swap(i, j);
                p.y.swap(i, j);
                let trial = hpwl(nl, p).to_f64();
                if trial > current {
                    current = trial;
                    if current > target {
                        return;
                    }
                } else {
                    p.x.swap(i, j);
                    p.y.swap(i, j);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_gen::GeneratorConfig;
    use dp_gp::initial_placement;
    use dp_lg::{check_legal, Legalizer};

    fn legalized_design(seed: u64) -> (dp_netlist::Netlist<f64>, Placement<f64>) {
        let d = GeneratorConfig::new("guard", 250, 270)
            .with_seed(seed)
            .with_utilization(0.55)
            .generate::<f64>()
            .expect("ok");
        let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.05, 2);
        Legalizer::new()
            .legalize(&d.netlist, &mut p)
            .expect("legalizes");
        (d.netlist, p)
    }

    /// The guarded driver must be bit-identical to `run` off the failure
    /// path: same placement, same stats (runtime aside).
    #[test]
    fn clean_path_matches_unguarded_run_bit_for_bit() {
        let (nl, p0) = legalized_design(21);
        let mut a = p0.clone();
        let mut b = p0;
        let sa = DetailedPlacer::new().run(&nl, &mut a);
        let (sb, report) = DetailedPlacer::new().run_guarded(&nl, &mut b);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
        assert_eq!(sa.final_hpwl, sb.final_hpwl);
        assert_eq!(sa.moves, sb.moves);
    }

    #[test]
    fn injected_worsening_pass_is_reverted_and_disabled() {
        let (nl, p0) = legalized_design(22);
        let mut placer = DetailedPlacer::new();
        placer.fault_injection = DpFaultInjection {
            worsen_pass: Some(DpPass::GlobalSwap),
        };
        let mut p = p0;
        let (stats, report) = placer.run_guarded(&nl, &mut p);
        assert_eq!(report.reverts, 1);
        assert!(
            report.disabled.iter().any(|(pass, worsening)| {
                *pass == DpPass::GlobalSwap && *worsening > 0.0
            }),
            "{report:?}"
        );
        // The run survives: other passes keep improving, result stays legal.
        assert!(stats.final_hpwl <= stats.initial_hpwl);
        assert!(check_legal(&nl, &p).is_legal());
    }

    #[test]
    fn zero_budget_stops_before_any_pass() {
        let (nl, p0) = legalized_design(23);
        let mut placer = DetailedPlacer::new();
        placer.max_seconds = Some(0.0);
        let mut p = p0.clone();
        let (stats, report) = placer.run_guarded(&nl, &mut p);
        assert!(report.budget_exhausted);
        assert_eq!(stats.moves, 0);
        assert_eq!(p.x, p0.x);
    }
}
