//! Guarded detailed-placement driver: per-pass quality gates with
//! revert-to-snapshot and pass disabling.
//!
//! Every DP operator in this crate commits only HPWL-improving moves, so a
//! pass that *worsens* HPWL signals a defect (or injected fault). The
//! guarded driver snapshots the placement around each pass, measures HPWL
//! before/after, and on a worsening beyond [`DetailedPlacer::hpwl_tolerance`]
//! reverts the snapshot and disables that pass for the rest of the run —
//! the other operators keep optimizing. A wall-clock budget
//! ([`DetailedPlacer::max_seconds`]) stops the run between passes.
//!
//! Off the failure path the driver is bit-identical to
//! [`DetailedPlacer::run`]: it executes the same pass sequence with the
//! same parameters and stopping rule, and the extra HPWL evaluations do
//! not mutate the placement.

use std::fmt;
use std::time::Instant;

use dp_netlist::{hpwl, Netlist, Placement};
use dp_num::Float;

use crate::{global_swap, independent_set_matching, local_reorder, DetailedPlacer, DpStats};

/// One of the three detailed-placement operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpPass {
    /// Pairwise swaps of equal-size cells toward optimal regions.
    GlobalSwap,
    /// Sliding-window re-sequencing within rows.
    LocalReorder,
    /// Batched same-size slot assignment via the Hungarian solver.
    IndependentSetMatching,
}

impl DpPass {
    /// Stable index for per-pass bookkeeping (also the serialization tag
    /// used by the durable checkpoint format).
    pub fn index(self) -> usize {
        match self {
            DpPass::GlobalSwap => 0,
            DpPass::LocalReorder => 1,
            DpPass::IndependentSetMatching => 2,
        }
    }

    /// Inverse of [`DpPass::index`].
    pub fn from_index(i: usize) -> Option<Self> {
        DpPass::ALL.get(i).copied()
    }

    /// The three passes in driver order.
    pub const ALL: [DpPass; 3] = [
        DpPass::GlobalSwap,
        DpPass::LocalReorder,
        DpPass::IndependentSetMatching,
    ];
}

impl fmt::Display for DpPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpPass::GlobalSwap => write!(f, "global_swap"),
            DpPass::LocalReorder => write!(f, "local_reorder"),
            DpPass::IndependentSetMatching => write!(f, "independent_set_matching"),
        }
    }
}

/// Fault injection for exercising the DP degradation ladder in tests. Off
/// by default; never set in production flows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpFaultInjection {
    /// After the named pass first runs, swap two equal-size movable cells
    /// so the pass appears to have worsened HPWL (legality-preserving by
    /// identical footprint). The guard must catch and revert it.
    pub worsen_pass: Option<DpPass>,
}

/// What the guard did during a [`DetailedPlacer::run_guarded`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DpGuardReport {
    /// Passes disabled after worsening HPWL, with the relative worsening
    /// that triggered the gate.
    pub disabled: Vec<(DpPass, f64)>,
    /// Snapshot reverts performed (one per disabled pass).
    pub reverts: usize,
    /// The wall-clock budget stopped the run early.
    pub budget_exhausted: bool,
}

impl DpGuardReport {
    /// True when no guard fired — the run matched the unguarded driver.
    pub fn is_clean(&self) -> bool {
        self.disabled.is_empty() && self.reverts == 0 && !self.budget_exhausted
    }
}

/// Plain-data snapshot of a [`GuardedDpRun`] between passes.
///
/// Captured by [`GuardedDpRun::state`]; [`GuardedDpRun::resume`] (with the
/// placement saved alongside) reconstructs a run that continues
/// bit-identically. The durable checkpoint layer in `dreamplace-core`
/// persists exactly this struct at DP pass boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct DpRunState {
    /// Current round (0-based).
    pub round: usize,
    /// Next pass slot to execute within the round (0..=3; 3 means the
    /// round-boundary check is pending).
    pub pass_idx: usize,
    /// Moves committed so far.
    pub moves: usize,
    /// Moves committed when the current round started (drives the
    /// no-progress stopping rule).
    pub moves_at_round_start: usize,
    /// Which passes are still enabled, by [`DpPass::index`].
    pub enabled: [bool; 3],
    /// Guard report accumulated so far.
    pub report: DpGuardReport,
    /// Fault injection not yet consumed.
    pub injected_pending: Option<DpPass>,
    /// HPWL when the run began.
    pub initial_hpwl: f64,
    /// Wall-clock seconds consumed so far, across all processes.
    pub consumed_seconds: f64,
}

/// A guarded detailed-placement run advanced one pass per
/// [`GuardedDpRun::step`] call; see the [module docs](crate::guarded).
///
/// [`DetailedPlacer::run_guarded`] is a thin loop over this driver, so
/// stepping externally (for checkpointing between passes) yields the
/// bit-identical pass sequence.
#[derive(Debug)]
pub struct GuardedDpRun {
    round: usize,
    pass_idx: usize,
    moves: usize,
    moves_at_round_start: usize,
    enabled: [bool; 3],
    report: DpGuardReport,
    injected: Option<DpPass>,
    initial_hpwl: f64,
    /// Busy time accumulated across completed `step` calls. Not
    /// wall-clock-since-construction: under the shared-pool scheduler the
    /// run is parked between turns and the budget must not charge a job
    /// for other jobs' time.
    busy: f64,
    consumed_before: f64,
    done: bool,
}

impl GuardedDpRun {
    /// Starts a guarded run on a legal placement.
    pub fn new<T: Float>(placer: &DetailedPlacer, nl: &Netlist<T>, p: &Placement<T>) -> Self {
        Self {
            round: 0,
            pass_idx: 0,
            moves: 0,
            moves_at_round_start: 0,
            enabled: [true; 3],
            report: DpGuardReport::default(),
            injected: placer.fault_injection.worsen_pass,
            initial_hpwl: hpwl(nl, p).to_f64(),
            busy: 0.0,
            consumed_before: 0.0,
            done: false,
        }
    }

    /// Reconstructs a run mid-flight from a captured [`DpRunState`]. The
    /// placement must be the one saved at capture time.
    pub fn resume(state: DpRunState) -> Self {
        Self {
            round: state.round,
            pass_idx: state.pass_idx,
            moves: state.moves,
            moves_at_round_start: state.moves_at_round_start,
            enabled: state.enabled,
            report: state.report,
            injected: state.injected_pending,
            initial_hpwl: state.initial_hpwl,
            busy: 0.0,
            consumed_before: state.consumed_seconds,
            done: false,
        }
    }

    /// Captures the run's complete state (pair it with a copy of the
    /// placement).
    pub fn state(&self) -> DpRunState {
        DpRunState {
            round: self.round,
            pass_idx: self.pass_idx,
            moves: self.moves,
            moves_at_round_start: self.moves_at_round_start,
            enabled: self.enabled,
            report: self.report.clone(),
            injected_pending: self.injected,
            initial_hpwl: self.initial_hpwl,
            consumed_seconds: self.consumed_seconds(),
        }
    }

    /// Busy seconds this run has consumed across all processes: the sum
    /// of completed steps plus any resumed lives, never the time spent
    /// parked between scheduler turns.
    pub fn consumed_seconds(&self) -> f64 {
        self.consumed_before + self.busy
    }

    /// The pass [`GuardedDpRun::step`] would execute next, if any — what
    /// the checkpoint layer reports as the run's position.
    pub fn next_pass(&self, placer: &DetailedPlacer) -> Option<DpPass> {
        if self.done {
            return None;
        }
        // Mirror step()'s slot scan without side effects.
        let mut round = self.round;
        let mut idx = self.pass_idx;
        let mut moves_at_start = self.moves_at_round_start;
        loop {
            if round >= placer.max_rounds {
                return None;
            }
            if idx == DpPass::ALL.len() {
                if self.moves == moves_at_start {
                    return None;
                }
                round += 1;
                idx = 0;
                moves_at_start = self.moves;
                continue;
            }
            let pass = DpPass::ALL[idx];
            if !self.enabled[pass.index()] {
                idx += 1;
                continue;
            }
            return Some(pass);
        }
    }

    /// Executes the next enabled pass (one quality-gated operator run).
    /// Returns `true` when the run is finished — by round convergence,
    /// the round cap, or the wall-clock budget. Idempotent once done.
    pub fn step<T: Float>(
        &mut self,
        placer: &DetailedPlacer,
        nl: &Netlist<T>,
        p: &mut Placement<T>,
    ) -> bool {
        if self.done {
            return true;
        }
        // Find the next enabled pass slot, crossing round boundaries with
        // the same stopping rules as the nested loops in the one-shot
        // driver: stop when a full round made no progress or the round
        // cap is reached.
        let pass = loop {
            if self.round >= placer.max_rounds {
                self.done = true;
                return true;
            }
            if self.pass_idx == DpPass::ALL.len() {
                if self.moves == self.moves_at_round_start {
                    self.done = true;
                    return true;
                }
                self.round += 1;
                self.pass_idx = 0;
                self.moves_at_round_start = self.moves;
                continue;
            }
            let pass = DpPass::ALL[self.pass_idx];
            if !self.enabled[pass.index()] {
                self.pass_idx += 1;
                continue;
            }
            break pass;
        };
        if let Some(budget) = placer.max_seconds {
            if self.consumed_seconds() >= budget {
                self.report.budget_exhausted = true;
                placer.telemetry.point(
                    "degradation",
                    format!("dp: wall-clock budget {budget:.1}s exhausted -> stopped early"),
                );
                self.done = true;
                return true;
            }
        }
        let t_busy = Instant::now();
        let snapshot = p.clone();
        let before = hpwl(nl, p).to_f64();
        let pass_moves = {
            let _k = placer.telemetry.kernel_span(match pass {
                DpPass::GlobalSwap => "dp.global_swap",
                DpPass::LocalReorder => "dp.local_reorder",
                DpPass::IndependentSetMatching => "dp.ism",
            });
            match pass {
                DpPass::GlobalSwap => global_swap(nl, p),
                DpPass::LocalReorder => local_reorder(nl, p, placer.window),
                DpPass::IndependentSetMatching => {
                    independent_set_matching(nl, p, placer.ism_batch.clamp(2, 16))
                }
            }
        };
        if self.injected == Some(pass) {
            self.injected = None;
            inject_worsening_swaps(nl, p, before * (1.0 + 1e-6) + 1e-6);
        }
        let after = hpwl(nl, p).to_f64();
        let limit = before * (1.0 + placer.hpwl_tolerance) + placer.hpwl_tolerance;
        // `after > limit` would miss NaN; the gate must also fire
        // when the pass went non-finite.
        let within = matches!(
            after.partial_cmp(&limit),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        );
        if !within {
            // Worsened (or went non-finite): revert and disable.
            *p = snapshot;
            self.enabled[pass.index()] = false;
            self.report.reverts += 1;
            let worsening = (after - before) / before.max(1.0);
            placer.telemetry.point(
                "degradation",
                format!("dp: {pass} worsened hpwl by {worsening:.3e} -> reverted and disabled"),
            );
            self.report.disabled.push((pass, worsening));
        } else {
            self.moves += pass_moves;
        }
        self.pass_idx += 1;
        self.busy += t_busy.elapsed().as_secs_f64();
        false
    }

    /// Finalizes the run into the `(stats, report)` pair of
    /// [`DetailedPlacer::run_guarded`].
    pub fn finish<T: Float>(self, nl: &Netlist<T>, p: &Placement<T>) -> (DpStats, DpGuardReport) {
        (
            DpStats {
                initial_hpwl: self.initial_hpwl,
                final_hpwl: hpwl(nl, p).to_f64(),
                moves: self.moves,
                runtime: self.consumed_seconds(),
            },
            self.report,
        )
    }
}

impl DetailedPlacer {
    /// Runs detailed placement with per-pass quality gates; see the
    /// [module docs](crate::guarded). The placement must be legal;
    /// all operators (and the guard's reverts) keep it legal.
    pub fn run_guarded<T: Float>(
        &self,
        nl: &Netlist<T>,
        p: &mut Placement<T>,
    ) -> (DpStats, DpGuardReport) {
        let mut run = GuardedDpRun::new(self, nl, p);
        while !run.step(self, nl, p) {}
        run.finish(nl, p)
    }
}

/// Swaps positions of equal-size movable cells, keeping each swap that
/// increases HPWL, until HPWL exceeds `target` (fault injection only).
/// Identical footprints keep the placement legal. No-op if no worsening
/// pairs exist among the scanned cells.
fn inject_worsening_swaps<T: Float>(nl: &Netlist<T>, p: &mut Placement<T>, target: f64) {
    let n = nl.num_movable().min(128);
    let mut current = hpwl(nl, p).to_f64();
    for i in 0..n {
        for j in (i + 1)..n {
            if nl.cell_widths()[i] == nl.cell_widths()[j]
                && nl.cell_heights()[i] == nl.cell_heights()[j]
            {
                p.x.swap(i, j);
                p.y.swap(i, j);
                let trial = hpwl(nl, p).to_f64();
                if trial > current {
                    current = trial;
                    if current > target {
                        return;
                    }
                } else {
                    p.x.swap(i, j);
                    p.y.swap(i, j);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_gen::GeneratorConfig;
    use dp_gp::initial_placement;
    use dp_lg::{check_legal, Legalizer};

    fn legalized_design(seed: u64) -> (dp_netlist::Netlist<f64>, Placement<f64>) {
        let d = GeneratorConfig::new("guard", 250, 270)
            .with_seed(seed)
            .with_utilization(0.55)
            .generate::<f64>()
            .expect("ok");
        let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.05, 2);
        Legalizer::new()
            .legalize(&d.netlist, &mut p)
            .expect("legalizes");
        (d.netlist, p)
    }

    /// The guarded driver must be bit-identical to `run` off the failure
    /// path: same placement, same stats (runtime aside).
    #[test]
    fn clean_path_matches_unguarded_run_bit_for_bit() {
        let (nl, p0) = legalized_design(21);
        let mut a = p0.clone();
        let mut b = p0;
        let sa = DetailedPlacer::new().run(&nl, &mut a);
        let (sb, report) = DetailedPlacer::new().run_guarded(&nl, &mut b);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
        assert_eq!(sa.final_hpwl, sb.final_hpwl);
        assert_eq!(sa.moves, sb.moves);
    }

    #[test]
    fn injected_worsening_pass_is_reverted_and_disabled() {
        let (nl, p0) = legalized_design(22);
        let mut placer = DetailedPlacer::new();
        placer.fault_injection = DpFaultInjection {
            worsen_pass: Some(DpPass::GlobalSwap),
        };
        let mut p = p0;
        let (stats, report) = placer.run_guarded(&nl, &mut p);
        assert_eq!(report.reverts, 1);
        assert!(
            report.disabled.iter().any(|(pass, worsening)| {
                *pass == DpPass::GlobalSwap && *worsening > 0.0
            }),
            "{report:?}"
        );
        // The run survives: other passes keep improving, result stays legal.
        assert!(stats.final_hpwl <= stats.initial_hpwl);
        assert!(check_legal(&nl, &p).is_legal());
    }

    /// A run captured after each pass and resumed into a fresh driver must
    /// finish bit-identically to the one-shot run — the contract the
    /// durable checkpoint layer persists at DP pass boundaries.
    #[test]
    fn state_resume_between_passes_is_bit_identical() {
        let (nl, p0) = legalized_design(24);
        let placer = DetailedPlacer::new();
        let mut golden_p = p0.clone();
        let (golden_stats, golden_report) = placer.run_guarded(&nl, &mut golden_p);

        // Interrupt after each of the first few passes.
        for stop_after in 1..=4usize {
            let mut p = p0.clone();
            let mut run = GuardedDpRun::new(&placer, &nl, &p);
            let mut done = false;
            for _ in 0..stop_after {
                if run.step(&placer, &nl, &mut p) {
                    done = true;
                    break;
                }
            }
            let state = run.state();
            drop(run); // simulated process death (placement saved in `p`)
            let mut resumed = GuardedDpRun::resume(state);
            if !done {
                while !resumed.step(&placer, &nl, &mut p) {}
            }
            let (stats, report) = resumed.finish(&nl, &p);
            assert_eq!(p.x, golden_p.x, "@{stop_after}");
            assert_eq!(p.y, golden_p.y, "@{stop_after}");
            assert_eq!(stats.moves, golden_stats.moves, "@{stop_after}");
            assert_eq!(
                stats.final_hpwl.to_bits(),
                golden_stats.final_hpwl.to_bits(),
                "@{stop_after}"
            );
            assert_eq!(report, golden_report, "@{stop_after}");
        }
    }

    /// Pending fault injection survives a state round-trip: the guard
    /// still fires on the injected pass after resume.
    #[test]
    fn resume_preserves_pending_fault_injection() {
        let (nl, p0) = legalized_design(25);
        let mut placer = DetailedPlacer::new();
        placer.fault_injection = DpFaultInjection {
            worsen_pass: Some(DpPass::LocalReorder),
        };
        let mut p = p0;
        let run = GuardedDpRun::new(&placer, &nl, &p);
        let state = run.state();
        assert_eq!(state.injected_pending, Some(DpPass::LocalReorder));
        let mut resumed = GuardedDpRun::resume(state);
        while !resumed.step(&placer, &nl, &mut p) {}
        let (_, report) = resumed.finish(&nl, &p);
        assert!(report
            .disabled
            .iter()
            .any(|(pass, _)| *pass == DpPass::LocalReorder));
    }

    /// The persisted consumed-seconds counter feeds the wall-clock budget:
    /// a resumed run whose previous life spent the budget stops before
    /// running another pass.
    #[test]
    fn resume_honors_consumed_budget() {
        let (nl, p0) = legalized_design(26);
        let mut placer = DetailedPlacer::new();
        placer.max_seconds = Some(3600.0);
        let mut p = p0.clone();
        let run = GuardedDpRun::new(&placer, &nl, &p);
        let mut state = run.state();
        state.consumed_seconds = 3600.0; // previous life spent it all
        let mut resumed = GuardedDpRun::resume(state);
        assert!(resumed.step(&placer, &nl, &mut p), "must stop immediately");
        let (stats, report) = resumed.finish(&nl, &p);
        assert!(report.budget_exhausted);
        assert_eq!(stats.moves, 0);
        assert_eq!(p.x, p0.x);
    }

    #[test]
    fn zero_budget_stops_before_any_pass() {
        let (nl, p0) = legalized_design(23);
        let mut placer = DetailedPlacer::new();
        placer.max_seconds = Some(0.0);
        let mut p = p0.clone();
        let (stats, report) = placer.run_guarded(&nl, &mut p);
        assert!(report.budget_exhausted);
        assert_eq!(stats.moves, 0);
        assert_eq!(p.x, p0.x);
    }
}
