//! Incremental HPWL evaluation for move-based detailed placement.

use dp_netlist::{net_hpwl, CellId, NetId, Netlist, Placement};
use dp_num::Float;

/// Caches per-net HPWL so that a candidate move only re-evaluates the nets
/// incident to the touched cells.
///
/// # Examples
///
/// ```
/// use dp_dplace::IncrementalHpwl;
/// use dp_netlist::{CellId, NetlistBuilder, Placement};
///
/// # fn main() -> Result<(), dp_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(0.0, 0.0, 10.0, 10.0);
/// let a = b.add_movable_cell(1.0, 1.0);
/// let c = b.add_movable_cell(1.0, 1.0);
/// b.add_net(1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])?;
/// let nl = b.build()?;
/// let mut p = Placement::zeros(2);
/// p.x[1] = 4.0;
/// let mut inc = IncrementalHpwl::new(&nl, &p);
/// assert_eq!(inc.total(), 4.0);
/// p.x[1] = 2.0;
/// inc.update_cells(&nl, &p, &[CellId::new(1)]);
/// assert_eq!(inc.total(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalHpwl<T> {
    per_net: Vec<T>,
    total: T,
}

impl<T: Float> IncrementalHpwl<T> {
    /// Builds the cache at the given placement.
    pub fn new(nl: &Netlist<T>, p: &Placement<T>) -> Self {
        let per_net: Vec<T> = nl
            .nets()
            .map(|net| nl.net_weight(net) * net_hpwl(nl, p, net))
            .collect();
        let total = per_net.iter().copied().sum();
        Self { per_net, total }
    }

    /// Current total weighted HPWL.
    pub fn total(&self) -> T {
        self.total
    }

    /// Weighted HPWL of the nets incident to `cells` at the current cache.
    pub fn cost_of_cells(&self, nl: &Netlist<T>, cells: &[CellId]) -> T {
        let mut seen = Vec::new();
        let mut sum = T::ZERO;
        for &c in cells {
            for &pin in nl.cell_pins(c) {
                let net = nl.pin_net(pin);
                if !seen.contains(&net) {
                    seen.push(net);
                    sum += self.per_net[net.index()];
                }
            }
        }
        sum
    }

    /// Evaluates (without committing) the weighted HPWL the nets incident
    /// to `cells` would have at placement `p`.
    pub fn eval_cells(&self, nl: &Netlist<T>, p: &Placement<T>, cells: &[CellId]) -> T {
        let mut seen: Vec<NetId> = Vec::new();
        let mut sum = T::ZERO;
        for &c in cells {
            for &pin in nl.cell_pins(c) {
                let net = nl.pin_net(pin);
                if !seen.contains(&net) {
                    seen.push(net);
                    sum += nl.net_weight(net) * net_hpwl(nl, p, net);
                }
            }
        }
        sum
    }

    /// Evaluates the weighted HPWL of the nets incident to cells `a` and
    /// `b` as if their positions were exchanged, without mutating `p` —
    /// the read-only probe the batched (concurrent) operators need.
    pub fn eval_cells_swapped(&self, nl: &Netlist<T>, p: &Placement<T>, a: usize, b: usize) -> T {
        let coord = |c: usize| -> (T, T) {
            if c == a {
                (p.x[b], p.y[b])
            } else if c == b {
                (p.x[a], p.y[a])
            } else {
                (p.x[c], p.y[c])
            }
        };
        let mut seen: Vec<NetId> = Vec::new();
        let mut sum = T::ZERO;
        for &cell in &[CellId::new(a), CellId::new(b)] {
            for &pin in nl.cell_pins(cell) {
                let net = nl.pin_net(pin);
                if seen.contains(&net) {
                    continue;
                }
                seen.push(net);
                let mut x_lo = T::INFINITY;
                let mut x_hi = T::NEG_INFINITY;
                let mut y_lo = T::INFINITY;
                let mut y_hi = T::NEG_INFINITY;
                for &q in nl.net_pins(net) {
                    let c = nl.pin_cell(q).index();
                    let (dx, dy) = nl.pin_offset(q);
                    let (cx, cy) = coord(c);
                    let px = cx + dx;
                    let py = cy + dy;
                    x_lo = x_lo.min(px);
                    x_hi = x_hi.max(px);
                    y_lo = y_lo.min(py);
                    y_hi = y_hi.max(py);
                }
                sum += nl.net_weight(net) * (x_hi - x_lo + y_hi - y_lo);
            }
        }
        sum
    }

    /// Recomputes the nets incident to `cells` from placement `p` and
    /// updates the cached total.
    pub fn update_cells(&mut self, nl: &Netlist<T>, p: &Placement<T>, cells: &[CellId]) {
        let mut seen: Vec<NetId> = Vec::new();
        for &c in cells {
            for &pin in nl.cell_pins(c) {
                let net = nl.pin_net(pin);
                if !seen.contains(&net) {
                    seen.push(net);
                    let fresh = nl.net_weight(net) * net_hpwl(nl, p, net);
                    self.total += fresh - self.per_net[net.index()];
                    self.per_net[net.index()] = fresh;
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_netlist::{hpwl, NetlistBuilder};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_case(seed: u64) -> (Netlist<f64>, Placement<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new(0.0, 0.0, 50.0, 50.0);
        let cells: Vec<_> = (0..20).map(|_| b.add_movable_cell(1.0, 1.0)).collect();
        for _ in 0..30 {
            let deg = rng.gen_range(2..5);
            let pins = (0..deg)
                .map(|_| (cells[rng.gen_range(0..20)], 0.0, 0.0))
                .collect();
            b.add_net(rng.gen_range(0.5..2.0), pins).expect("valid");
        }
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        for i in 0..20 {
            p.x[i] = rng.gen_range(0.0..50.0);
            p.y[i] = rng.gen_range(0.0..50.0);
        }
        (nl, p)
    }

    #[test]
    fn matches_full_recomputation_after_updates() {
        let (nl, mut p) = random_case(4);
        let mut inc = IncrementalHpwl::new(&nl, &p);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let c = rng.gen_range(0..20);
            p.x[c] = rng.gen_range(0.0..50.0);
            p.y[c] = rng.gen_range(0.0..50.0);
            inc.update_cells(&nl, &p, &[CellId::new(c)]);
        }
        let exact = hpwl(&nl, &p);
        assert!((inc.total() - exact).abs() < 1e-9 * exact.max(1.0));
    }

    #[test]
    fn eval_does_not_mutate() {
        let (nl, mut p) = random_case(5);
        let inc = IncrementalHpwl::new(&nl, &p);
        let before = inc.total();
        p.x[0] += 5.0;
        let _ = inc.eval_cells(&nl, &p, &[CellId::new(0)]);
        assert_eq!(inc.total(), before);
    }

    #[test]
    fn delta_consistency() {
        // total' - total == eval(after) - cost(before) for the touched nets
        let (nl, mut p) = random_case(6);
        let mut inc = IncrementalHpwl::new(&nl, &p);
        let cells = [CellId::new(3)];
        let before_cost = inc.cost_of_cells(&nl, &cells);
        let total_before = inc.total();
        p.x[3] += 7.0;
        let after_cost = inc.eval_cells(&nl, &p, &cells);
        inc.update_cells(&nl, &p, &cells);
        assert!(((inc.total() - total_before) - (after_cost - before_cost)).abs() < 1e-9);
    }
}
