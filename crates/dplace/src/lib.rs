//! Detailed placement (the DP stage of paper Fig. 2(b)).
//!
//! The paper delegates detailed placement to NTUplace3 and reports it as
//! the dominant share of the accelerated flow's runtime (Fig. 9a: ~82%).
//! This crate is the from-scratch substrate standing in for it, built from
//! the classic DP triad (as in NTUplace3/ABCDPlace):
//!
//! * [`local_reorder`] — sliding-window re-sequencing within rows
//!   (all permutations of `k` consecutive cells, `k <= 4`);
//! * [`global_swap`] — pairwise swaps of equal-size cells toward each
//!   cell's optimal region;
//! * [`independent_set_matching`] — batches of same-size cells assigned to
//!   each other's slots optimally via a Hungarian solver.
//!
//! Every operator preserves legality by construction (cells only exchange
//! or repack within row spans) and only commits HPWL-improving moves, which
//! the test suite asserts on every pass.
//!
//! # Examples
//!
//! ```
//! use dp_dplace::DetailedPlacer;
//! use dp_gen::GeneratorConfig;
//! use dp_gp::initial_placement;
//! use dp_lg::Legalizer;
//! use dp_netlist::hpwl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = GeneratorConfig::new("demo", 200, 220).generate::<f64>()?;
//! let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.02, 1);
//! Legalizer::new().legalize(&d.netlist, &mut p)?;
//! let before = hpwl(&d.netlist, &p);
//! let stats = DetailedPlacer::new().run(&d.netlist, &mut p);
//! assert!(stats.final_hpwl <= before);
//! # Ok(())
//! # }
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod batched;
pub mod guarded;
pub mod hungarian;
pub mod incremental;
pub mod ism;
pub mod reorder;
pub mod swap;

pub use batched::{batched_global_swap, batched_global_swap_on, BatchedDetailedPlacer};
pub use guarded::{DpFaultInjection, DpGuardReport, DpPass, DpRunState, GuardedDpRun};
pub use hungarian::hungarian;
pub use incremental::IncrementalHpwl;
pub use ism::independent_set_matching;
pub use reorder::local_reorder;
pub use swap::global_swap;

use std::time::Instant;

use dp_netlist::{hpwl, Netlist, Placement};
use dp_num::Float;

/// Statistics of a detailed placement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpStats {
    /// HPWL before any pass.
    pub initial_hpwl: f64,
    /// HPWL after all passes.
    pub final_hpwl: f64,
    /// Number of improving moves committed across all passes.
    pub moves: usize,
    /// Wall-clock seconds.
    pub runtime: f64,
}

/// The detailed placement driver: iterates the three operators until no
/// pass improves (or the pass budget is exhausted).
#[derive(Debug, Clone)]
pub struct DetailedPlacer {
    /// Maximum rounds of the operator cycle.
    pub max_rounds: usize,
    /// Sliding-window size for local reordering (2..=4).
    pub window: usize,
    /// Batch size for independent-set matching (clamped to 16).
    pub ism_batch: usize,
    /// Relative HPWL worsening tolerated per pass before the guarded
    /// driver ([`DetailedPlacer::run_guarded`]) reverts and disables it.
    pub hpwl_tolerance: f64,
    /// Wall-clock budget for the guarded driver; checked between passes.
    pub max_seconds: Option<f64>,
    /// Fault injection for the guarded driver (tests only).
    pub fault_injection: guarded::DpFaultInjection,
    /// Telemetry sink: per-pass kernel spans and guard degradation events
    /// from the guarded driver. Disabled by default.
    pub telemetry: dp_telemetry::Telemetry,
}

impl Default for DetailedPlacer {
    fn default() -> Self {
        Self {
            max_rounds: 3,
            window: 3,
            ism_batch: 8,
            hpwl_tolerance: 1e-9,
            max_seconds: None,
            fault_injection: guarded::DpFaultInjection::default(),
            telemetry: dp_telemetry::Telemetry::disabled(),
        }
    }
}

impl DetailedPlacer {
    /// Creates the driver with default knobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs detailed placement in place. The placement must be legal; all
    /// operators keep it legal.
    pub fn run<T: Float>(&self, nl: &Netlist<T>, p: &mut Placement<T>) -> DpStats {
        let t0 = Instant::now();
        let initial = hpwl(nl, p).to_f64();
        let mut moves = 0usize;
        for _ in 0..self.max_rounds {
            let before = moves;
            moves += global_swap(nl, p);
            moves += local_reorder(nl, p, self.window);
            moves += independent_set_matching(nl, p, self.ism_batch.clamp(2, 16));
            if moves == before {
                break;
            }
        }
        DpStats {
            initial_hpwl: initial,
            final_hpwl: hpwl(nl, p).to_f64(),
            moves,
            runtime: t0.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_gen::GeneratorConfig;
    use dp_gp::initial_placement;
    use dp_lg::{check_legal, Legalizer};

    #[test]
    fn full_dp_improves_and_stays_legal() {
        let d = GeneratorConfig::new("t", 300, 330)
            .with_seed(10)
            .with_utilization(0.6)
            .generate::<f64>()
            .expect("ok");
        let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.05, 2);
        Legalizer::new()
            .legalize(&d.netlist, &mut p)
            .expect("legalizes");
        let stats = DetailedPlacer::new().run(&d.netlist, &mut p);
        assert!(stats.final_hpwl <= stats.initial_hpwl);
        assert!(
            stats.moves > 0,
            "expected improving moves on a random start"
        );
        let report = check_legal(&d.netlist, &p);
        assert!(report.is_legal(), "{report:?}");
    }

    #[test]
    fn dp_is_deterministic() {
        let d = GeneratorConfig::new("t", 150, 170)
            .with_seed(3)
            .generate::<f64>()
            .expect("ok");
        let mut p1 = initial_placement(&d.netlist, &d.fixed_positions, 0.05, 2);
        Legalizer::new()
            .legalize(&d.netlist, &mut p1)
            .expect("legalizes");
        let mut p2 = p1.clone();
        let s1 = DetailedPlacer::new().run(&d.netlist, &mut p1);
        let s2 = DetailedPlacer::new().run(&d.netlist, &mut p2);
        assert_eq!(s1.final_hpwl, s2.final_hpwl);
        assert_eq!(p1.x, p2.x);
    }
}
