//! Local reordering: exhaustive permutation of small windows within rows.

use dp_netlist::{CellId, Netlist, Placement};
use dp_num::Float;

use crate::incremental::IncrementalHpwl;

/// Re-sequences every window of `k` consecutive cells per row when a
/// permutation lowers HPWL; returns the number of committed improvements.
///
/// Cells in a window are repacked consecutively from the window's left
/// edge, which always fits inside the original span, so legality is
/// preserved.
///
/// # Panics
///
/// Panics if `k < 2` (window of one is meaningless) or `k > 4`
/// (factorial blow-up guard).
pub fn local_reorder<T: Float>(nl: &Netlist<T>, p: &mut Placement<T>, k: usize) -> usize {
    assert!((2..=4).contains(&k), "window size must be 2..=4");
    let rows = group_rows(nl, p);
    let mut inc = IncrementalHpwl::new(nl, p);
    let mut improvements = 0usize;
    let eps = T::from_f64(1e-9);

    for mut row in rows {
        if row.len() < k {
            continue;
        }
        for w0 in 0..=row.len() - k {
            let window: Vec<usize> = row[w0..w0 + k].to_vec();
            let ids: Vec<CellId> = window.iter().map(|&c| CellId::new(c)).collect();
            // Left edge of the packed window.
            let start = window
                .iter()
                .map(|&c| p.x[c] - nl.cell_widths()[c] * T::HALF)
                .fold(T::INFINITY, T::min);

            let before = inc.cost_of_cells(nl, &ids);
            let saved: Vec<T> = window.iter().map(|&c| p.x[c]).collect();

            let mut best_cost = before;
            let mut best_perm: Option<Vec<usize>> = None;
            let mut perm: Vec<usize> = (0..k).collect();
            permute(&mut perm, 0, &mut |order| {
                let mut x = start;
                for &slot in order {
                    let c = window[slot];
                    let w = nl.cell_widths()[c];
                    p.x[c] = x + w * T::HALF;
                    x += w;
                }
                let cost = inc.eval_cells(nl, p, &ids);
                if cost + eps < best_cost {
                    best_cost = cost;
                    best_perm = Some(order.to_vec());
                }
            });

            // Restore, then commit the best order if it improves.
            for (i, &c) in window.iter().enumerate() {
                p.x[c] = saved[i];
            }
            if let Some(order) = best_perm {
                let mut x = start;
                for &slot in &order {
                    let c = window[slot];
                    let w = nl.cell_widths()[c];
                    p.x[c] = x + w * T::HALF;
                    x += w;
                }
                inc.update_cells(nl, p, &ids);
                // Keep the row list in x order so the next (overlapping)
                // window packs against the committed neighbors.
                for (i, &slot) in order.iter().enumerate() {
                    row[w0 + i] = window[slot];
                }
                improvements += 1;
            }
        }
    }
    improvements
}

/// Groups movable cells into row *segments* by their (legal) y coordinate,
/// sorted by x and split wherever a fixed blockage lies between two
/// neighbours — windows must never pack a cell across a macro.
pub(crate) fn group_rows<T: Float>(nl: &Netlist<T>, p: &Placement<T>) -> Vec<Vec<usize>> {
    // Single-row cells only; movable macros (taller than the common row
    // height) are treated as blockages like fixed cells.
    let row_h = nl
        .rows()
        .map(|r| r.row_height().to_f64())
        .unwrap_or_else(|| {
            (0..nl.num_movable())
                .map(|c| nl.cell_heights()[c].to_f64())
                .fold(f64::INFINITY, f64::min)
        });
    let mut by_y: std::collections::BTreeMap<i64, Vec<usize>> = std::collections::BTreeMap::new();
    let mut tall: Vec<usize> = Vec::new();
    for c in 0..nl.num_movable() {
        if nl.cell_heights()[c].to_f64() > row_h + 1e-9 {
            tall.push(c);
            continue;
        }
        let key = (p.y[c].to_f64() * 1024.0).round() as i64;
        by_y.entry(key).or_default().push(c);
    }

    // Fixed cells and movable macros as (y-interval, x-interval) blockages.
    let blockages: Vec<(f64, f64, f64, f64)> = (nl.num_movable()..nl.num_cells())
        .chain(tall)
        .map(|i| {
            let w = nl.cell_widths()[i].to_f64();
            let h = nl.cell_heights()[i].to_f64();
            let (cx, cy) = (p.x[i].to_f64(), p.y[i].to_f64());
            (cy - h / 2.0, cy + h / 2.0, cx - w / 2.0, cx + w / 2.0)
        })
        .collect();

    let mut out = Vec::new();
    for (_, mut row) in by_y {
        row.sort_by(|&a, &b| p.x[a].partial_cmp(&p.x[b]).unwrap_or(std::cmp::Ordering::Equal));
        if row.is_empty() {
            continue;
        }
        // Blockage x-intervals overlapping this row's y band.
        let y0 = p.y[row[0]].to_f64() - nl.cell_heights()[row[0]].to_f64() / 2.0;
        let y1 = p.y[row[0]].to_f64() + nl.cell_heights()[row[0]].to_f64() / 2.0;
        let blocked: Vec<(f64, f64)> = blockages
            .iter()
            .filter(|&&(byl, byh, ..)| byl < y1 - 1e-9 && byh > y0 + 1e-9)
            .map(|&(_, _, bxl, bxh)| (bxl, bxh))
            .collect();

        let mut segment: Vec<usize> = Vec::new();
        let mut prev_end = f64::NEG_INFINITY;
        for &c in &row {
            let ll = p.x[c].to_f64() - nl.cell_widths()[c].to_f64() / 2.0;
            let split = blocked
                .iter()
                .any(|&(bxl, bxh)| bxl >= prev_end - 1e-9 && bxh <= ll + 1e-9);
            if split && !segment.is_empty() {
                out.push(std::mem::take(&mut segment));
            }
            prev_end = ll + nl.cell_widths()[c].to_f64();
            segment.push(c);
        }
        if !segment.is_empty() {
            out.push(segment);
        }
    }
    out
}

fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use dp_lg::check_legal;
    use dp_netlist::{hpwl, NetlistBuilder, RowGrid};

    /// Two cells in the wrong order relative to their anchors: reordering
    /// must swap them.
    #[test]
    fn swaps_crossed_pair() {
        let rows = RowGrid::uniform(0.0, 0.0, 40.0, 8.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 40.0, 8.0).with_rows(rows);
        let a = b.add_movable_cell(2.0, 8.0);
        let c = b.add_movable_cell(2.0, 8.0);
        let l = b.add_fixed_cell(2.0, 8.0); // left anchor
        let r = b.add_fixed_cell(2.0, 8.0); // right anchor
        b.add_net(1.0, vec![(a, 0.0, 0.0), (r, 0.0, 0.0)])
            .expect("valid");
        b.add_net(1.0, vec![(c, 0.0, 0.0), (l, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        // a sits left of c, but a wants to be right (anchored at 39).
        p.x = vec![11.0, 13.0, 1.0, 39.0];
        p.y = vec![4.0, 4.0, 4.0, 4.0];
        let before = hpwl(&nl, &p);
        let n = local_reorder(&nl, &mut p, 2);
        assert_eq!(n, 1);
        assert!(hpwl(&nl, &p) < before);
        assert!(p.x[0] > p.x[1], "cells swapped: {:?}", p.x);
        assert!(check_legal(&nl, &p).is_legal());
    }

    #[test]
    fn no_moves_on_already_optimal_row() {
        let rows = RowGrid::uniform(0.0, 0.0, 40.0, 8.0, 8.0, 1.0);
        let mut b = NetlistBuilder::new(0.0, 0.0, 40.0, 8.0).with_rows(rows);
        let a = b.add_movable_cell(2.0, 8.0);
        let c = b.add_movable_cell(2.0, 8.0);
        let l = b.add_fixed_cell(2.0, 8.0);
        let r = b.add_fixed_cell(2.0, 8.0);
        b.add_net(1.0, vec![(a, 0.0, 0.0), (l, 0.0, 0.0)])
            .expect("valid");
        b.add_net(1.0, vec![(c, 0.0, 0.0), (r, 0.0, 0.0)])
            .expect("valid");
        let nl = b.build().expect("valid");
        let mut p = Placement::zeros(nl.num_cells());
        p.x = vec![5.0, 7.0, 1.0, 39.0];
        p.y = vec![4.0, 4.0, 4.0, 4.0];
        // Already in the right order and adjacent: no strict improvement.
        let n = local_reorder(&nl, &mut p, 2);
        assert_eq!(n, 0);
    }
}
