//! Offline stand-in for the subset of the `crossbeam` crate this workspace
//! uses: [`scope`] with [`Scope::spawn`], built on `std::thread::scope`.
//!
//! Semantics match the real crate where the workspace relies on them: all
//! spawned threads are joined before `scope` returns, and a panicking worker
//! surfaces as an `Err` rather than a panic in the caller.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope handle passed to [`scope`]'s closure; spawn borrows-capturing
/// worker threads through it.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker. The closure receives the scope again (like
    /// crossbeam's nested-spawn API); its result is available via the
    /// returned handle's `join`.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a [`Scope`], joining every spawned thread before
/// returning. Returns `Err` with the panic payload if any worker (or the
/// closure itself) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::scope;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_join_and_share_borrows() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            7
        })
        .expect("no panics");
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_is_reported_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
