//! Offline stand-in for the subset of the `criterion` crate API this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and `black_box`.
//!
//! It performs a short warm-up plus a fixed number of timed samples and
//! prints mean time per iteration — no statistics, plots, or baselines.
//! Enough to keep `cargo bench` runnable and the bench targets compiling
//! without network access.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {name:<40} {:>12.3?}/iter", b.mean);
        self
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Benchmarks `f` against a fixed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        println!("bench {}/{:<32} {:>12.3?}/iter", self.name, id.id, b.mean);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {}/{:<32} {:>12.3?}/iter", self.name, id, b.mean);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.sample_size as u32;
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` / `cargo bench` pass harness flags; a stub bench
            // binary only needs to not crash on them.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("stub");
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
