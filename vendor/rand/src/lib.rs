//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `StdRng`/`SmallRng` seeded via [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen_range` / `gen`.
//!
//! The build environment has no network access and no registry cache, so the
//! real crate cannot be fetched; this stub keeps the same deterministic
//! "seed -> reproducible stream" contract on a xoshiro256++ generator. It is
//! **not** a cryptographic RNG and implements only what the workspace calls.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: expands a 64-bit seed into well-mixed stream of words.
/// Used to initialize the xoshiro state (the upstream-recommended scheme).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state shared by [`StdRng`] and [`SmallRng`].
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; splitmix64 cannot
        // produce four zero outputs from any seed, but guard anyway.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0xDEAD_BEEF_CAFE_F00D;
        }
        Self { s }
    }

    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Deterministic general-purpose generator (stub of `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    /// Small fast generator (stub of `rand::rngs::SmallRng`); identical
    /// engine to [`StdRng`] here.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::from_u64(state))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::from_u64(state ^ 0xA5A5_5A5A_1234_5678))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }
}

/// Values producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution bound of the real crate).
pub trait StandardSample {
    /// Draws one value from the generator.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types supporting uniform sampling from a bounded range (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` included when `inclusive`).
    /// Panics on an empty range, like the real crate.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % (span as u128);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A range from which a uniform value can be drawn (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range, like the real crate.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draw from the "standard" distribution of `T` (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::standard_sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_honored() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
