//! Offline stand-in for the subset of the `proptest` crate API this
//! workspace uses: the [`proptest!`] macro, range / tuple / `prop_map` /
//! `collection::vec` strategies, `any::<T>()`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This stub runs each property as a deterministic loop of random
//! cases (no shrinking): enough to preserve the test suite's coverage and
//! reproducibility, not a full QuickCheck engine.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values for one property-test input.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.0.gen::<u64>() as $t
                }
            }
        )*};
    }

    int_arbitrary!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.0.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> f64 {
            rng.0.gen::<f64>()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_sample(rng: &mut TestRng) -> f32 {
            rng.0.gen::<f32>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `proptest::collection::vec`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification: an exact size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Configuration and per-case RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The deterministic per-case generator threaded through strategies.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// A generator for case number `case`; pure function of the index,
        /// so runs are reproducible.
        pub fn for_case(case: u64) -> Self {
            Self(StdRng::seed_from_u64(
                case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_5EED_5EED_5EED,
            ))
        }
    }

    /// Runner configuration; only `cases` is honored by the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; unused (the stub never shrinks).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 32,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`",
                lhs,
                rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs != rhs) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}`",
                lhs,
                rhs
            ));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                let mut inputs = ::std::string::String::new();
                $(
                    let sampled = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    inputs.push_str(&::std::format!(
                        "\n  {} = {:?}",
                        stringify!($arg),
                        &sampled
                    ));
                    let $arg = sampled;
                )*
                let outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                    $body;
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(message) = outcome {
                    ::core::panic!(
                        "property `{}` failed on case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(
            x in 1u64..100,
            v in crate::collection::vec(-1.0f64..1.0, 3..7),
            pair in (0usize..4, 0usize..4),
        ) {
            prop_assert!((1..100).contains(&x), "x = {x}");
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|e| (-1.0..1.0).contains(e)));
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }

        #[test]
        fn map_and_any(k in (2u32..=8).prop_map(|k| 1usize << k), seed in any::<u64>()) {
            prop_assert!(k.is_power_of_two());
            prop_assert!(k >= 4 && k <= 256);
            let _ = seed;
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n > 3);
            prop_assert!(n > 3);
        }
    }

    #[test]
    fn eq_macros_compile() {
        fn inner() -> Result<(), String> {
            prop_assert_eq!(1 + 1, 2);
            prop_assert_ne!(1, 2);
            Ok(())
        }
        inner().expect("assertions hold");
    }
}
