//! Offline placeholder for the `serde` crate. No code in this workspace
//! currently (de)serializes; the manifests keep a `serde` dependency slot
//! for future result export, and this stub satisfies it without network
//! access. Only marker traits are provided.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
