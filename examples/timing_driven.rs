//! Timing-driven placement via net weighting (paper §III-G): place, run
//! static timing analysis, up-weight critical nets, place again.
//!
//! ```text
//! cargo run --release --example timing_driven [num_cells] [rounds]
//! ```

use dp_timing::TimingConfig;
use dreamplace::gen::GeneratorConfig;
use dreamplace::{FlowConfig, TimingDrivenConfig, TimingDrivenPlacer, ToolMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_cells: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2_000);
    let rounds: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2);

    let design = GeneratorConfig::new("timing-demo", num_cells, num_cells + 100)
        .with_seed(9)
        .generate::<f64>()?;
    let flow = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &design.netlist);
    let config = TimingDrivenConfig {
        flow,
        timing: TimingConfig::default(),
        rounds,
        w_max: 6.0,
        exponent: 2.0,
    };
    let result = TimingDrivenPlacer::new(config).place(&design)?;

    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>12}",
        "round", "WNS", "TNS", "crit. delay", "HPWL"
    );
    for (k, s) in result.history.iter().enumerate() {
        println!(
            "{:<8} {:>12.3} {:>12.1} {:>14.3} {:>12.4e}",
            if k == 0 {
                "initial".to_string()
            } else {
                format!("{k}")
            },
            s.wns,
            s.tns,
            s.max_arrival,
            s.hpwl
        );
    }
    let i = result.initial;
    let f = result.final_timing;
    println!(
        "\nWNS improved by {:.1}%; HPWL cost {:.2}%",
        100.0 * (f.wns - i.wns) / i.wns.abs().max(1e-12),
        100.0 * (f.hpwl - i.hpwl) / i.hpwl
    );
    Ok(())
}
