//! ISPD 2005-style comparison: the RePlAce baseline versus DREAMPlace on a
//! scaled contest design, printed like a row of paper Table II.
//!
//! ```text
//! cargo run --release --example ispd_flow [design-name] [scale-divisor]
//! ```
//!
//! `design-name` is one of adaptec1..4 / bigblue1..4 (default adaptec1);
//! `scale-divisor` shrinks the paper-size design (default 64).

use dreamplace::gen::ispd2005_suite;
use dreamplace::{DreamPlacer, FlowConfig, ToolMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "adaptec1".into());
    let scale: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(64);

    let preset = ispd2005_suite()
        .into_iter()
        .find(|p| p.config.name == name)
        .ok_or_else(|| format!("unknown design {name}; try adaptec1..4 or bigblue1..4"))?
        .scaled_down(scale);
    println!(
        "== {} at 1/{scale} scale: {} cells, {} nets ==",
        name, preset.config.num_cells, preset.config.num_nets
    );
    let design = preset.config.generate::<f64>()?;

    println!(
        "\n{:<22} {:>12} {:>8} {:>8} {:>8} {:>9}",
        "tool", "HPWL", "GP(s)", "LG(s)", "DP(s)", "total(s)"
    );
    let mut baseline_hpwl = None;
    for mode in [
        ToolMode::ReplaceBaseline {
            threads: dp_num::default_threads(),
        },
        ToolMode::DreamplaceCpu {
            threads: dp_num::default_threads(),
        },
        ToolMode::DreamplaceGpuSim,
    ] {
        let config = FlowConfig::for_mode(mode, &design.netlist);
        let r = DreamPlacer::new(config).place(&design)?;
        let quality = baseline_hpwl.get_or_insert(r.hpwl_final).to_owned();
        println!(
            "{:<22} {:>12.4e} {:>8.2} {:>8.2} {:>8.2} {:>9.2}   ({:+.2}% vs baseline)",
            mode.label(),
            r.hpwl_final,
            r.timing.gp,
            r.timing.lg,
            r.timing.dp,
            r.timing.total,
            100.0 * (r.hpwl_final - quality) / quality,
        );
    }
    Ok(())
}
