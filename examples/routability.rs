//! Routability-driven placement on a DAC 2012-style design (paper §III-F,
//! Table V): cell inflation driven by the global router, reporting sHPWL
//! and RC.
//!
//! ```text
//! cargo run --release --example routability [design-name] [scale-divisor]
//! ```

use dreamplace::gen::dac2012_suite;
use dreamplace::route::RouterConfig;
use dreamplace::{RoutabilityConfig, RoutabilityPlacer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "superblue19".into());
    let scale: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(128);

    let preset = dac2012_suite()
        .into_iter()
        .find(|p| p.config.name == name)
        .ok_or_else(|| format!("unknown design {name}; try superblue2/3/6/7/9/11/12/14/16/19"))?
        .scaled_down(scale);
    let hints = preset
        .routing
        .expect("DAC 2012 presets carry routing hints");
    println!(
        "== {} at 1/{scale}: {} cells | {} layers, cap {}/{} per tile ==",
        name, preset.config.num_cells, hints.num_layers, hints.capacity_h, hints.capacity_v
    );
    let design = preset.config.generate::<f64>()?;

    // Aggregate same-direction layers into the router's two capacities and
    // size the routing grid from the hint's tile pitch.
    let h_layers = hints.num_layers.div_ceil(2);
    let v_layers = hints.num_layers / 2;
    let region = design.netlist.region();
    let tiles = ((region.width() / (hints.tile_sites as f64)).round() as usize).clamp(8, 64);
    let router = RouterConfig {
        gx: tiles,
        gy: tiles,
        cap_h: (hints.capacity_h * h_layers) as u32,
        cap_v: (hints.capacity_v * v_layers) as u32,
        reroute_passes: 2,
        maze_passes: 1,
    };

    let config = RoutabilityConfig::auto(&design.netlist, router);
    let result = RoutabilityPlacer::new(config).place(&design)?;

    println!("\nsHPWL  {:.4e}", result.shpwl);
    println!("HPWL   {:.4e}", result.hpwl);
    println!("RC     {:.2}", result.rc);
    println!(
        "inflation: {} rounds, +{:.2}% cell area",
        result.inflation_rounds,
        100.0 * result.inflation_area_frac
    );
    println!(
        "runtime: NL {:.2}s | GR {:.2}s | LG {:.2}s | DP {:.2}s",
        result.nl_time, result.gr_time, result.lg_time, result.dp_time
    );
    Ok(())
}
