//! Self-healing global placement: poison a window of gradient evaluations
//! with NaN mid-run and watch the engine roll back to its last checkpoint,
//! soften the schedule, and still converge (DESIGN.md §8).

use dreamplace::gen::GeneratorConfig;
use dreamplace::{DreamPlacer, FlowConfig, ToolMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = GeneratorConfig::new("heal", 2000, 2100)
        .with_seed(7)
        .generate::<f64>()?;
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &d.netlist);
    cfg.run_dp = false;
    // Poison objective evaluations 120..126 with NaN gradients. Each
    // detected divergence only advances ~2 evals past the window, so give
    // the rollback budget headroom.
    cfg.gp.fault_injection.nan_grad_evals = (120..126).collect();
    cfg.gp.recovery.max_recoveries = 8;
    let r = DreamPlacer::new(cfg).place(&d)?;
    println!(
        "final HPWL {:.4e} (overflow {:.3}) after {} rollbacks",
        r.hpwl_final, r.gp.final_overflow, r.gp.recoveries
    );
    for e in &r.gp.recovery_events {
        println!(
            "  iter {:>4} -> rolled back to {:>4}: {} (lambda {:.3e}, gamma x{:.1})",
            e.iteration, e.resumed_from, e.cause, e.lambda, e.gamma_boost
        );
    }
    assert!(r.hpwl_final.is_finite() && r.gp.recoveries > 0);
    Ok(())
}
