//! Solver comparison (paper Table IV): Nesterov with Lipschitz line search
//! versus the "toolkit native" solvers Adam and SGD-with-momentum, which
//! need a hand-tuned learning-rate decay instead.
//!
//! ```text
//! cargo run --release --example solver_zoo [num_cells]
//! ```

use dp_gp::SolverKind;
use dreamplace::gen::GeneratorConfig;
use dreamplace::{DreamPlacer, FlowConfig, ToolMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_cells: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4_000);
    let design = GeneratorConfig::new("solver-zoo", num_cells, num_cells + num_cells / 20)
        .with_seed(7)
        .generate::<f64>()?;

    // Learning rates in layout units: half a bin, like the paper's tuned
    // per-design decays.
    let bins = dp_gp::GpConfig::<f64>::auto_bins(design.netlist.num_movable());
    let bin = design.netlist.region().width() / bins as f64;

    println!(
        "{:<18} {:>12} {:>8} {:>8} {:>10}",
        "solver", "HPWL", "GP(s)", "iters", "LR decay"
    );
    for (solver, decay_note) in [
        (SolverKind::Nesterov, "-".to_string()),
        (
            SolverKind::Adam {
                lr: bin,
                decay: 0.998,
            },
            "0.998".to_string(),
        ),
        (
            SolverKind::SgdMomentum {
                lr: bin,
                decay: 0.9995,
            },
            "0.9995".to_string(),
        ),
        (SolverKind::ConjugateGradient, "-".to_string()),
    ] {
        let mut config = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &design.netlist);
        config.gp.solver = solver;
        let r = DreamPlacer::new(config).place(&design)?;
        let label = match solver {
            SolverKind::Nesterov => "Nesterov",
            SolverKind::Adam { .. } => "Adam",
            SolverKind::SgdMomentum { .. } => "SGD momentum",
            SolverKind::ConjugateGradient => "Conj. gradient",
        };
        println!(
            "{:<18} {:>12.4e} {:>8.2} {:>8} {:>10}",
            label, r.hpwl_final, r.timing.gp, r.gp.iterations, decay_note
        );
    }
    Ok(())
}
