use dp_gp::SolverKind;
use dreamplace::gen::GeneratorConfig;
use dreamplace::{DreamPlacer, FlowConfig, ToolMode};
fn main() {
    let d = GeneratorConfig::new("tune", 3300, 3453)
        .with_seed(101)
        .with_macros(4, 0.08)
        .with_utilization(0.7)
        .generate::<f64>()
        .unwrap();
    let bins = dp_gp::GpConfig::<f64>::auto_bins(d.netlist.num_movable());
    let bin = d.netlist.region().width() / bins as f64;
    let run = |label: &str, solver: SolverKind| {
        let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &d.netlist);
        cfg.gp.solver = solver;
        cfg.run_dp = false;
        let r = DreamPlacer::new(cfg).place(&d).unwrap();
        println!(
            "{label:<22} hpwl {:.4e} gp {:.1}s iters {} ovf {:.3}",
            r.hpwl_final, r.timing.gp, r.gp.iterations, r.gp.final_overflow
        );
    };
    run("nesterov", SolverKind::Nesterov);
    for (lr, dec) in [(0.5, 0.995), (1.0, 0.998), (2.0, 0.999)] {
        run(
            &format!("adam lr{lr} d{dec}"),
            SolverKind::Adam {
                lr: bin * lr,
                decay: dec,
            },
        );
    }
    for (lr, dec) in [(0.3, 0.998), (0.5, 0.999), (1.0, 0.9995)] {
        run(
            &format!("sgd lr{lr} d{dec}"),
            SolverKind::SgdMomentum {
                lr: bin * lr,
                decay: dec,
            },
        );
    }
}
