//! Fence regions (paper §III-G): one electric field per region confines
//! assigned cells to their fences during global placement. Writes SVG
//! snapshots of the fenced and unfenced results.
//!
//! ```text
//! cargo run --release --example fence_regions [num_cells]
//! ```

use dp_gp::{FenceSpec, GlobalPlacer, GpConfig};
use dreamplace::gen::GeneratorConfig;
use dreamplace::netlist::Rect;
use dreamplace_core::viz::{write_svg, SvgOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_cells: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1_000);
    let design = GeneratorConfig::new("fence-demo", num_cells, num_cells + 50)
        .with_seed(6)
        .with_utilization(0.4)
        .generate::<f64>()?;
    let nl = &design.netlist;
    let region = nl.region();
    let mid = (region.xl + region.xh) * 0.5;

    // Two fences: left half and right half; the first half of the cells
    // (related logic under the generator's locality model) goes left.
    let spec = FenceSpec {
        regions: vec![
            Rect::new(region.xl, region.yl, mid, region.yh),
            Rect::new(mid, region.yl, region.xh, region.yh),
        ],
        assignment: (0..nl.num_movable())
            .map(|c| Some(u16::from(c >= nl.num_movable() / 2)))
            .collect(),
    };

    let mut cfg = GpConfig::auto(nl);
    cfg.max_iters = 800;
    let plain = GlobalPlacer::new(cfg.clone()).place(nl, &design.fixed_positions)?;
    cfg.fence = Some(spec.clone());
    let fenced = GlobalPlacer::new(cfg).place(nl, &design.fixed_positions)?;

    println!(
        "containment: plain {:.1}% -> fenced {:.1}%",
        100.0 * spec.containment(&plain.placement),
        100.0 * spec.containment(&fenced.placement)
    );
    println!(
        "HPWL: plain {:.4e} -> fenced {:.4e} (fences cost wirelength)",
        plain.stats.final_hpwl, fenced.stats.final_hpwl
    );

    let out = std::env::temp_dir();
    let options = SvgOptions {
        fences: spec
            .regions
            .iter()
            .map(|r| (r.xl, r.yl, r.xh, r.yh))
            .collect(),
        groups: Some(spec.assignment.clone()),
        ..SvgOptions::default()
    };
    let p1 = out.join("fence-plain.svg");
    let p2 = out.join("fence-fenced.svg");
    write_svg(&p1, nl, &plain.placement, &options)?;
    write_svg(&p2, nl, &fenced.placement, &options)?;
    println!("snapshots: {} and {}", p1.display(), p2.display());
    Ok(())
}
