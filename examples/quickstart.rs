//! Quickstart: generate a design, run the full DREAMPlace flow, report the
//! paper-style metrics.
//!
//! ```text
//! cargo run --release --example quickstart [num_cells]
//! ```

use dreamplace::gen::GeneratorConfig;
use dreamplace::netlist::hpwl;
use dreamplace::{DreamPlacer, FlowConfig, ToolMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_cells: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(5_000);

    println!("== DREAMPlace quickstart ==");
    let design = GeneratorConfig::new("quickstart", num_cells, num_cells + num_cells / 20)
        .with_seed(42)
        .with_utilization(0.7)
        .generate::<f64>()?;
    let stats = design.netlist.stats();
    println!(
        "design: {} cells, {} nets, {} pins, avg degree {:.2}, utilization {:.2}",
        stats.num_cells, stats.num_nets, stats.num_pins, stats.avg_net_degree, stats.utilization
    );

    let config = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &design.netlist);
    let result = DreamPlacer::new(config).place(&design)?;

    println!("\nphase        time (s)");
    println!(
        "GP           {:8.3}  ({} iterations, overflow {:.3})",
        result.timing.gp, result.gp.iterations, result.gp.final_overflow
    );
    println!(
        "LG           {:8.3}  (avg displacement {:.2})",
        result.timing.lg, result.lg.avg_displacement
    );
    if let Some(dp) = &result.dp {
        println!(
            "DP           {:8.3}  ({} moves)",
            result.timing.dp, dp.moves
        );
    }
    println!("total        {:8.3}", result.timing.total);

    println!("\nHPWL after GP  {:.4e}", result.hpwl_gp);
    println!("HPWL legal     {:.4e}", result.hpwl_legal);
    println!("HPWL final     {:.4e}", result.hpwl_final);
    debug_assert_eq!(result.hpwl_final, hpwl(&design.netlist, &result.placement));
    Ok(())
}
