//! Bookshelf interoperability: write a design to the contest file format,
//! read it back, place it, and save the final `.pl`.
//!
//! Point the first argument at a real `.aux` file (e.g. an ISPD 2005
//! download) to place an actual contest benchmark instead.
//!
//! ```text
//! cargo run --release --example bookshelf_roundtrip [path/to/design.aux]
//! ```

use std::path::PathBuf;

use dreamplace::bookshelf::{read_design, write_design};
use dreamplace::gen::{GeneratedDesign, GeneratorConfig};
use dreamplace::{DreamPlacer, FlowConfig, ToolMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let aux: PathBuf = match std::env::args().nth(1) {
        Some(path) => path.into(),
        None => {
            // No input given: synthesize a design and write it first.
            let dir = std::env::temp_dir().join("dreamplace-roundtrip");
            let d = GeneratorConfig::new("rt", 2_000, 2_100)
                .with_seed(3)
                .generate::<f64>()?;
            write_design(&dir, "rt", &d.netlist, &d.fixed_positions)?;
            println!("wrote synthetic design to {}", dir.display());
            dir.join("rt.aux")
        }
    };

    println!("reading {}", aux.display());
    let parsed = read_design::<f64>(&aux)?;
    let stats = parsed.netlist.stats();
    println!(
        "loaded {}: {} cells ({} movable), {} nets, {} pins",
        parsed.name, stats.num_cells, stats.num_movable, stats.num_nets, stats.num_pins
    );

    let design = GeneratedDesign {
        name: parsed.name.clone(),
        netlist: parsed.netlist,
        fixed_positions: parsed.positions,
    };
    let config = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &design.netlist);
    let result = DreamPlacer::new(config).place(&design)?;
    println!(
        "placed: HPWL {:.4e} in {:.2}s",
        result.hpwl_final, result.timing.total
    );

    let out = std::env::temp_dir().join("dreamplace-roundtrip-out");
    write_design(
        &out,
        &format!("{}-placed", design.name),
        &design.netlist,
        &result.placement,
    )?;
    println!("final placement written to {}", out.display());
    Ok(())
}
