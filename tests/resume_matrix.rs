//! Tier-1 crash/resume gate: a run killed at any state boundary (and at
//! arbitrary mid-GP iterations) and resumed from its last durable
//! checkpoint must be **bit-identical** to the uninterrupted run — same
//! final positions, same HPWL trajectory, same degradation timeline, same
//! merged execution counters.
//!
//! Also covers the failure modes around the checkpoint file itself:
//! corruption is detected by CRC and surfaces as a structured
//! `FlowError::Checkpoint`, resuming onto the wrong design is refused,
//! and wall-clock budgets account for time consumed before the crash.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;

use dp_gp::InitKind;
use dreamplace::gen::{GeneratedDesign, GeneratorConfig};
use dreamplace::{
    read_checkpoint, CheckpointError, CheckpointPolicy, DreamPlacer, DurableOutcome, FlowConfig,
    FlowError, FlowFaultInjection, FlowResult, FlowState, ToolMode,
};

const THREADS: usize = 2;

fn design() -> GeneratedDesign<f64> {
    GeneratorConfig::new("resume-matrix", 420, 460)
        .with_seed(71)
        .with_utilization(0.6)
        .generate::<f64>()
        .expect("valid generator config")
}

fn other_design() -> GeneratedDesign<f64> {
    GeneratorConfig::new("resume-other", 300, 330)
        .with_seed(72)
        .with_utilization(0.6)
        .generate::<f64>()
        .expect("valid generator config")
}

fn config(d: &GeneratedDesign<f64>) -> FlowConfig<f64> {
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceCpu { threads: THREADS }, &d.netlist);
    cfg.gp.max_iters = 300;
    cfg.gp.target_overflow = 0.12;
    cfg.gp.threads = THREADS;
    // Fixed-point density accumulation: bit-identical regardless of how
    // the worker pool interleaves (same setting as the golden gate).
    cfg.gp.deterministic = Some(true);
    if let InitKind::WirelengthOnly { iters } = cfg.gp.init {
        cfg.gp.init = InitKind::WirelengthOnly {
            iters: iters.min(40),
        };
    }
    cfg
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dp-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kills the flow right before `at`, then resumes from the checkpoint
/// directory in a second driver invocation (a fresh "process" as far as
/// the machine is concerned) and runs to completion.
fn killed_then_resumed(
    d: &GeneratedDesign<f64>,
    at: FlowState,
    tag: &str,
    telemetry: Option<&dreamplace::telemetry::Telemetry>,
) -> FlowResult<f64> {
    let dir = tmp_dir(tag);
    let policy = CheckpointPolicy::new(&dir).every(10);

    let outcome = DreamPlacer::new(config(d))
        .place_durable(d, None, Some(&policy), FlowFaultInjection::die_at(at))
        .expect("killed run");
    match outcome {
        DurableOutcome::Killed { at: died } => assert_eq!(died, at, "died at the wrong state"),
        DurableOutcome::Completed(_) => panic!("kill point {at} was never reached"),
    }

    // Kills before the first checkpoint (init/sanitize) leave no file;
    // the resume then degenerates to a fresh run, like the CLI's
    // `--resume-or-restart`.
    let resume_from = match read_checkpoint::<f64>(&dir) {
        Ok(data) => Some(data),
        Err(CheckpointError::Missing { .. }) => None,
        Err(e) => panic!("unreadable checkpoint after kill at {at}: {e}"),
    };
    let mut cfg = config(d);
    if let Some(tel) = telemetry {
        cfg.telemetry = tel.clone();
    }
    let outcome = DreamPlacer::new(cfg)
        .place_durable(d, resume_from, Some(&policy), FlowFaultInjection::default())
        .expect("resumed run");
    let _ = std::fs::remove_dir_all(&dir);
    match outcome {
        DurableOutcome::Completed(r) => *r,
        DurableOutcome::Killed { at } => panic!("resumed run died at {at} without injection"),
    }
}

/// Everything deterministic must match bit-for-bit; only wall-clock
/// fields (timings, per-op nanos) are exempt.
fn assert_bit_identical(golden: &FlowResult<f64>, r: &FlowResult<f64>, tag: &str) {
    assert_eq!(golden.placement.x, r.placement.x, "{tag}: x positions");
    assert_eq!(golden.placement.y, r.placement.y, "{tag}: y positions");
    assert_eq!(
        golden.hpwl_gp.to_bits(),
        r.hpwl_gp.to_bits(),
        "{tag}: hpwl_gp"
    );
    assert_eq!(
        golden.hpwl_legal.to_bits(),
        r.hpwl_legal.to_bits(),
        "{tag}: hpwl_legal"
    );
    assert_eq!(
        golden.hpwl_final.to_bits(),
        r.hpwl_final.to_bits(),
        "{tag}: hpwl_final"
    );

    // GP trajectory: every iteration record, recovery, and counter.
    assert_eq!(golden.gp.iterations, r.gp.iterations, "{tag}: gp iters");
    assert_eq!(golden.gp.converged, r.gp.converged, "{tag}: gp converged");
    assert_eq!(golden.gp.history, r.gp.history, "{tag}: gp history");
    assert_eq!(
        golden.gp.recovery_events, r.gp.recovery_events,
        "{tag}: gp recoveries"
    );

    // Legalization and detailed placement outcomes (runtime excluded).
    assert_eq!(
        golden.lg.avg_displacement.to_bits(),
        r.lg.avg_displacement.to_bits(),
        "{tag}: lg avg displacement"
    );
    assert_eq!(
        golden.lg.max_displacement.to_bits(),
        r.lg.max_displacement.to_bits(),
        "{tag}: lg max displacement"
    );
    assert_eq!(golden.lg.fallback, r.lg.fallback, "{tag}: lg fallback");
    assert_eq!(
        golden.dp.as_ref().map(|s| (s.moves, s.final_hpwl.to_bits())),
        r.dp.as_ref().map(|s| (s.moves, s.final_hpwl.to_bits())),
        "{tag}: dp moves/hpwl"
    );

    // Degradation timeline and GP fallback state.
    assert_eq!(golden.gp_fallback, r.gp_fallback, "{tag}: gp fallback");
    assert_eq!(
        golden.degradations.events, r.degradations.events,
        "{tag}: degradation timeline"
    );

    // Merged execution counters: the resumed process folds the
    // checkpointed counters into its own, so per-op call counts and pool
    // runs must land exactly on the uninterrupted totals. (Nanos and
    // spawn counts are wall-clock noise.)
    let calls = |res: &FlowResult<f64>| -> Vec<(&'static str, u64)> {
        res.gp.exec.ops.iter().map(|(n, c)| (*n, c.calls)).collect()
    };
    assert_eq!(calls(golden), calls(r), "{tag}: per-op call counts");
    assert_eq!(
        golden.gp.exec.pool_runs, r.gp.exec.pool_runs,
        "{tag}: pool runs"
    );
}

#[test]
fn killed_and_resumed_matches_uninterrupted_at_every_state() {
    let d = design();
    let golden = match DreamPlacer::new(config(&d))
        .place_durable(&d, None, None, FlowFaultInjection::default())
        .expect("uninterrupted run")
    {
        DurableOutcome::Completed(r) => *r,
        DurableOutcome::Killed { at } => panic!("uninjected run died at {at}"),
    };
    assert!(golden.gp.iterations > 40, "matrix assumes a long GP run");

    // Every stage boundary plus mid-GP kills both on and off the
    // checkpoint cadence (every 10 iterations).
    let matrix = [
        FlowState::Init,
        FlowState::Sanitize,
        FlowState::Gp { iteration: 0 },
        FlowState::Gp { iteration: 1 },
        FlowState::Gp { iteration: 13 },
        FlowState::Gp { iteration: 40 },
        FlowState::Lg,
        FlowState::Dp { pass: 0 },
        FlowState::Dp { pass: 1 },
        FlowState::Finish,
    ];
    for at in matrix {
        let tag = format!("kill at {at}");
        let r = killed_then_resumed(&d, at, &at.to_string().replace(':', "-"), None);
        assert_bit_identical(&golden, &r, &tag);
    }
}

#[test]
fn resumed_trace_carries_a_resume_point_and_validates() {
    let d = design();
    let tel = dreamplace::telemetry::Telemetry::enabled();
    let r = killed_then_resumed(&d, FlowState::Gp { iteration: 17 }, "traced", Some(&tel));
    assert!(r.hpwl_final > 0.0);
    let mut buf = Vec::new();
    tel.write_jsonl(&mut buf).expect("serialize trace");
    let text = String::from_utf8(buf).expect("utf8 trace");
    let summary = dreamplace::check::validate_str(&text).expect("resumed trace validates");
    assert_eq!(summary.resumes, 1, "resumed run must emit one resume point");
}

#[test]
fn corrupt_checkpoint_surfaces_structured_error_and_restart_matches_golden() {
    let d = design();
    let dir = tmp_dir("corrupt");
    let policy = CheckpointPolicy::new(&dir).every(10);
    DreamPlacer::new(config(&d))
        .place_durable(
            &d,
            None,
            Some(&policy),
            FlowFaultInjection::die_at(FlowState::Lg),
        )
        .expect("killed run");

    // Truncate the checkpoint to simulate a torn disk.
    let file = dir.join("flow.ckpt");
    let text = std::fs::read_to_string(&file).expect("checkpoint");
    std::fs::write(&file, &text[..text.len() / 3]).expect("truncate");

    let err = read_checkpoint::<f64>(&dir).expect_err("truncated checkpoint must fail");
    assert!(
        matches!(err, CheckpointError::CrcMismatch { .. }),
        "want CrcMismatch, got {err:?}"
    );
    // The structured flow error carries a one-line diagnosis.
    let diag = FlowError::<f64>::Checkpoint(err).diagnosis();
    assert!(diag.starts_with("checkpoint:"), "diagnosis {diag:?}");

    // `--resume-or-restart` semantics: fall back to a fresh run, which
    // must match the uninterrupted golden exactly.
    let golden = match DreamPlacer::new(config(&d))
        .place_durable(&d, None, None, FlowFaultInjection::default())
        .expect("golden run")
    {
        DurableOutcome::Completed(r) => *r,
        DurableOutcome::Killed { at } => panic!("uninjected run died at {at}"),
    };
    let restarted = match DreamPlacer::new(config(&d))
        .place_durable(&d, None, Some(&policy), FlowFaultInjection::default())
        .expect("restarted run")
    {
        DurableOutcome::Completed(r) => *r,
        DurableOutcome::Killed { at } => panic!("uninjected run died at {at}"),
    };
    let _ = std::fs::remove_dir_all(&dir);
    assert_bit_identical(&golden, &restarted, "restart after corruption");
}

#[test]
fn resume_refuses_a_checkpoint_from_a_different_design() {
    let d = design();
    let dir = tmp_dir("mismatch");
    let policy = CheckpointPolicy::new(&dir).every(10);
    DreamPlacer::new(config(&d))
        .place_durable(
            &d,
            None,
            Some(&policy),
            FlowFaultInjection::die_at(FlowState::Lg),
        )
        .expect("killed run");
    let data = read_checkpoint::<f64>(&dir).expect("checkpoint");

    let other = other_design();
    let err = DreamPlacer::new(config(&other))
        .place_durable(&other, Some(data), None, FlowFaultInjection::default())
        .expect_err("resuming onto another design must fail");
    let _ = std::fs::remove_dir_all(&dir);
    match err {
        FlowError::Checkpoint(CheckpointError::DesignMismatch { .. }) => {}
        other => panic!("want DesignMismatch, got {other:?}"),
    }
}

#[test]
fn gp_budget_counts_time_consumed_before_the_crash() {
    let d = design();
    let dir = tmp_dir("budget");
    let policy = CheckpointPolicy::new(&dir).every(10);
    DreamPlacer::new(config(&d))
        .place_durable(
            &d,
            None,
            Some(&policy),
            FlowFaultInjection::die_at(FlowState::Gp { iteration: 25 }),
        )
        .expect("killed run");
    let checkpoint = read_checkpoint::<f64>(&dir).expect("checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
    let at_iteration = match checkpoint.state() {
        FlowState::Gp { iteration } => iteration,
        other => panic!("expected a GP checkpoint, got {other}"),
    };

    // Control: with a generous budget the resumed run finishes GP well
    // past the checkpointed iteration.
    let mut generous = config(&d);
    generous.budgets.gp_seconds = Some(3600.0);
    let r = match DreamPlacer::new(generous)
        .place_durable(
            &d,
            Some(checkpoint.clone()),
            None,
            FlowFaultInjection::default(),
        )
        .expect("resumed run")
    {
        DurableOutcome::Completed(r) => *r,
        DurableOutcome::Killed { at } => panic!("uninjected run died at {at}"),
    };
    assert!(
        r.gp.iterations > at_iteration,
        "control run should keep iterating past {at_iteration}"
    );

    // With the pre-crash wall-clock marked as spent, the same budget is
    // already exhausted at resume: GP must stop immediately instead of
    // restarting its clock from zero.
    let mut spent = checkpoint;
    if let dreamplace::CheckpointStage::Gp { engine, .. } = &mut spent.stage {
        engine.consumed_seconds = 3600.0;
    } else {
        panic!("expected a GP-stage checkpoint");
    }
    let mut cfg = config(&d);
    cfg.budgets.gp_seconds = Some(3600.0);
    let r = match DreamPlacer::new(cfg)
        .place_durable(&d, Some(spent), None, FlowFaultInjection::default())
        .expect("resumed run under exhausted budget")
    {
        DurableOutcome::Completed(r) => *r,
        DurableOutcome::Killed { at } => panic!("uninjected run died at {at}"),
    };
    assert_eq!(
        r.gp.iterations, at_iteration,
        "budget must include pre-crash time: no further GP iterations"
    );
    assert!(!r.gp.converged, "a budget stop is not convergence");
}
