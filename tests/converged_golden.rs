//! Converged-scale golden: one larger design run to the *full* overflow
//! target, compared against a committed record. The tier-1 goldens in
//! `differential.rs` stop at a relaxed overflow to stay fast; this gate
//! covers the regime they cannot — full convergence on a design an order
//! of magnitude bigger, where late-lambda density behavior and the DP
//! pass ordering actually bite.
//!
//! The test is `#[ignore]`d so `cargo test` (tier-1) never pays for it;
//! the `slow-golden` CI job runs it explicitly with
//! `cargo test --release --test converged_golden -- --ignored`.
//! Regenerate after an intentional algorithm change with
//! `DP_UPDATE_GOLDEN=1 cargo test --release --test converged_golden -- --ignored`.

use std::path::PathBuf;

use dp_check::{update_requested, GoldenRecord, GoldenTolerance};
use dreamplace::gen::GeneratorConfig;
use dreamplace::{DreamPlacer, FlowConfig, ToolMode};

const THREADS: usize = 2;
const SEED: u64 = 77;
const NAME: &str = "golden-converged";

#[test]
#[ignore = "slow: full-convergence run; exercised by the slow-golden CI job"]
fn converged_large_design_matches_golden_record() {
    let design = GeneratorConfig::new(NAME, 4000, 4300)
        .with_seed(SEED)
        .with_utilization(0.65)
        .with_macros(4, 0.10)
        .generate::<f64>()
        .expect("valid generator config");

    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceCpu { threads: THREADS }, &design.netlist);
    // Full overflow target — no relaxation, no iteration haircut.
    cfg.gp.target_overflow = 0.07;
    cfg.gp.threads = THREADS;
    cfg.gp.deterministic = Some(true);
    cfg.run_dp = true;
    let result = DreamPlacer::new(cfg).place(&design).expect("flow completes");
    assert!(
        result.gp.final_overflow <= 0.12,
        "did not converge near target: overflow {}",
        result.gp.final_overflow
    );

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results/golden")
        .join(format!("{NAME}.json"));
    let actual = GoldenRecord::from_flow(NAME, SEED, THREADS, &result);
    if update_requested() {
        actual.store(&path).expect("write golden record");
        return;
    }
    let expected = GoldenRecord::load(&path).unwrap_or_else(|e| {
        panic!(
            "missing/corrupt golden `{}` ({e}); regenerate with DP_UPDATE_GOLDEN=1 \
             cargo test --release --test converged_golden -- --ignored",
            path.display()
        )
    });
    if let Err(errs) = expected.compare(&actual, &GoldenTolerance::default()) {
        panic!("converged golden drift:\n{}", errs.join("\n"));
    }
}
