//! Cross-crate integration: the full flow on generated designs.

use dp_gp::InitKind;
use dreamplace::gen::GeneratorConfig;
use dreamplace::{DreamPlacer, FlowConfig, ToolMode};

fn design(seed: u64, cells: usize) -> dreamplace::gen::GeneratedDesign<f64> {
    GeneratorConfig::new(format!("it-{seed}"), cells, cells + cells / 10)
        .with_seed(seed)
        .with_utilization(0.62)
        .generate::<f64>()
        .expect("valid generator config")
}

fn quick(mode: ToolMode, nl: &dreamplace::netlist::Netlist<f64>) -> FlowConfig<f64> {
    let mut cfg = FlowConfig::for_mode(mode, nl);
    cfg.gp.max_iters = 300;
    cfg.gp.target_overflow = 0.15;
    if let InitKind::WirelengthOnly { iters } = cfg.gp.init {
        cfg.gp.init = InitKind::WirelengthOnly {
            iters: iters.min(40),
        };
    }
    cfg
}

#[test]
fn all_three_modes_complete_with_similar_quality() {
    let d = design(1, 400);
    let mut results = Vec::new();
    for mode in [
        ToolMode::ReplaceBaseline { threads: 1 },
        ToolMode::DreamplaceCpu { threads: 1 },
        ToolMode::DreamplaceGpuSim,
    ] {
        let r = DreamPlacer::new(quick(mode, &d.netlist))
            .place(&d)
            .expect("flow");
        assert!(
            dp_lg::check_legal(&d.netlist, &r.placement).is_legal(),
            "{} produced an illegal placement",
            mode.label()
        );
        results.push((mode.label(), r.hpwl_final));
    }
    // On tiny (400-cell) designs with capped iterations the quality spread
    // is noisy; the bench harness demonstrates sub-percent parity at scale
    // with fully converged runs (see EXPERIMENTS.md).
    let best = results
        .iter()
        .map(|(_, h)| *h)
        .fold(f64::INFINITY, f64::min);
    for (label, h) in &results {
        let gap = (h - best) / best;
        assert!(gap < 0.30, "{label} is {:.1}% off best", gap * 100.0);
    }
}

#[test]
fn flow_is_deterministic_end_to_end() {
    let d = design(2, 300);
    let a = DreamPlacer::new(quick(ToolMode::DreamplaceGpuSim, &d.netlist))
        .place(&d)
        .expect("flow");
    let b = DreamPlacer::new(quick(ToolMode::DreamplaceGpuSim, &d.netlist))
        .place(&d)
        .expect("flow");
    assert_eq!(a.hpwl_final, b.hpwl_final);
    assert_eq!(a.placement.x, b.placement.x);
    assert_eq!(a.placement.y, b.placement.y);
}

#[test]
fn dp_stage_only_improves() {
    let d = design(3, 300);
    let mut with_dp = quick(ToolMode::DreamplaceGpuSim, &d.netlist);
    with_dp.run_dp = true;
    let mut without_dp = with_dp.clone();
    without_dp.run_dp = false;
    let a = DreamPlacer::new(with_dp).place(&d).expect("flow");
    let b = DreamPlacer::new(without_dp).place(&d).expect("flow");
    assert!(a.hpwl_final <= b.hpwl_final + 1e-9);
    assert_eq!(a.hpwl_legal, b.hpwl_legal, "same GP+LG prefix");
}

#[test]
fn macros_are_respected_through_the_whole_flow() {
    let d = GeneratorConfig::new("it-macros", 300, 330)
        .with_seed(4)
        .with_macros(4, 0.15)
        .with_utilization(0.5)
        .generate::<f64>()
        .expect("valid");
    let r = DreamPlacer::new(quick(ToolMode::DreamplaceGpuSim, &d.netlist))
        .place(&d)
        .expect("flow");
    // Fixed cells never move.
    for i in d.netlist.num_movable()..d.netlist.num_cells() {
        assert_eq!(r.placement.x[i], d.fixed_positions.x[i]);
        assert_eq!(r.placement.y[i], d.fixed_positions.y[i]);
    }
    // And no movable cell overlaps them.
    assert!(dp_lg::check_legal(&d.netlist, &r.placement).is_legal());
}

#[test]
fn gp_spreads_cells_across_the_region() {
    let d = design(5, 400);
    let r = DreamPlacer::new(quick(ToolMode::DreamplaceGpuSim, &d.netlist))
        .place(&d)
        .expect("flow");
    let region = d.netlist.region();
    let n = d.netlist.num_movable();
    let span = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    };
    assert!(span(&r.placement.x[..n]) > 0.6 * region.width());
    assert!(span(&r.placement.y[..n]) > 0.6 * region.height());
}

#[test]
fn mixed_size_designs_place_end_to_end() {
    // Movable multi-row macros (ePlace-MS setting): GP treats them as big
    // charges, the legalizer places them first, and DP leaves them alone.
    let d = GeneratorConfig::new("it-mixed", 250, 280)
        .with_seed(6)
        .with_utilization(0.45)
        .with_movable_macros(3, 4)
        .generate::<f64>()
        .expect("valid");
    assert_eq!(d.netlist.num_movable(), 253);
    let r = DreamPlacer::new(quick(ToolMode::DreamplaceGpuSim, &d.netlist))
        .place(&d)
        .expect("flow");
    let report = dp_lg::check_legal(&d.netlist, &r.placement);
    assert!(report.is_legal(), "{report:?}");
    // The macros ended row-aligned inside the region.
    let rows = d.netlist.rows().expect("rows");
    for c in 250..253 {
        let yl = r.placement.y[c] - d.netlist.cell_heights()[c] / 2.0;
        let rel = yl / rows.row_height();
        assert!(
            (rel - rel.round()).abs() < 1e-6,
            "macro {c} off-row at {yl}"
        );
    }
}

#[test]
fn batched_dp_backend_matches_sequential_quality() {
    let d = design(8, 300);
    let mut seq_cfg = quick(ToolMode::DreamplaceGpuSim, &d.netlist);
    seq_cfg.run_dp = true;
    let mut bat_cfg = seq_cfg.clone();
    bat_cfg.batched_dp_threads = Some(4);
    let seq = DreamPlacer::new(seq_cfg)
        .place(&d)
        .expect("sequential flow");
    let bat = DreamPlacer::new(bat_cfg).place(&d).expect("batched flow");
    assert!(
        bat.hpwl_final <= seq.hpwl_final * 1.01,
        "batched {} vs sequential {}",
        bat.hpwl_final,
        seq.hpwl_final
    );
    assert!(dp_lg::check_legal(&d.netlist, &bat.placement).is_legal());
}
