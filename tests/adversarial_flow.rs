//! Tier-1 adversarial gate: every adversarial design family and every
//! corrupted-design class runs the *hardened* flow end-to-end and must
//! finish without panicking — either with a legal placement or with a
//! structured fatal report. Degenerate bin grids place in uniform-field
//! mode, and injected LG/DP faults take their documented degradation
//! ladders, each recorded in `FlowResult::degradations`.
//!
//! CI runs this suite by name (`cargo test --test adversarial_flow`).

use dreamplace::gen::{
    adversarial_design, corrupt_design, AdversarialCase, CorruptKind, GeneratedDesign,
    GeneratorConfig,
};
use dreamplace::gp::FenceSpec;
use dreamplace::{
    DegradationFallback, DegradationTrigger, DreamPlacer, FlowConfig, FlowError, FlowStage,
    ToolMode,
};
use dp_dplace::{DpFaultInjection, DpPass};
use dp_lg::{check_legal, Legalizer, LgFaultInjection};

fn quick_config(d: &GeneratedDesign<f64>) -> FlowConfig<f64> {
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &d.netlist);
    cfg.gp.max_iters = 150;
    cfg.gp.target_overflow = 0.2;
    if let dreamplace::gp::InitKind::WirelengthOnly { iters } = cfg.gp.init {
        cfg.gp.init = dreamplace::gp::InitKind::WirelengthOnly {
            iters: iters.min(30),
        };
    }
    cfg
}

/// Every adversarial family must survive the hardened flow: no panic, and
/// either a legal placement or a structured error whose diagnosis names
/// the failing stage.
#[test]
fn adversarial_families_complete_without_panic() {
    for case in AdversarialCase::ALL {
        let a = adversarial_design::<f64>(case, 11).expect("generates");
        let mut cfg = quick_config(&a.design);
        if case == AdversarialCase::FenceRegions {
            cfg.gp.fence = Some(FenceSpec {
                regions: a.fence_regions.clone(),
                assignment: a.fence_assignment.clone(),
            });
        }
        match DreamPlacer::new(cfg).place(&a.design) {
            Ok(r) => {
                let report = check_legal(&a.design.netlist, &r.placement);
                assert!(report.is_legal(), "{case}: illegal result {report:?}");
                assert!(r.hpwl_final.is_finite(), "{case}: non-finite HPWL");
            }
            Err(e) => {
                let diag = e.diagnosis();
                assert!(
                    diag.contains(':'),
                    "{case}: diagnosis must name a stage: {diag}"
                );
            }
        }
    }
}

/// Bin shapes below the spectral solver's minimum used to be hard errors;
/// the flow now places them in uniform-field mode and records the trade.
#[test]
fn degenerate_bin_grids_place_in_uniform_field_mode() {
    let d = GeneratorConfig::new("degenerate-bins", 120, 140)
        .with_seed(17)
        .with_utilization(0.5)
        .generate::<f64>()
        .expect("generates");
    for bins in [(1, 1), (1, 4), (2, 1), (2, 4)] {
        let mut cfg = quick_config(&d);
        cfg.gp.bins = bins;
        cfg.gp.max_iters = 60;
        let r = DreamPlacer::new(cfg)
            .place(&d)
            .unwrap_or_else(|e| panic!("bins {bins:?}: {}", e.diagnosis()));
        assert!(
            check_legal(&d.netlist, &r.placement).is_legal(),
            "bins {bins:?}"
        );
        let degraded = r.degradations.for_stage(FlowStage::Gp).any(|e| {
            matches!(e.trigger, DegradationTrigger::DegenerateGrid { .. })
                && e.fallback == DegradationFallback::UniformFieldDensity
        });
        let sub_spectral = bins.0 < 2 || bins.1 < 4;
        assert_eq!(
            degraded, sub_spectral,
            "bins {bins:?}: degradation log {}",
            r.degradations
        );
    }
}

/// Every corrupted-design class either gets repaired (flow completes, the
/// sanitizer report names the class) or is fatally reported — never a
/// panic, never a silent pass-through.
#[test]
fn corrupted_designs_are_repaired_or_fatally_reported() {
    for kind in CorruptKind::ALL {
        let d = corrupt_design::<f64>(kind, 23).expect("generates");
        let cfg = quick_config(&d);
        match DreamPlacer::new(cfg).place(&d) {
            Ok(r) => {
                assert!(!kind.is_fatal(), "{kind}: fatal class must not place");
                assert!(
                    !r.sanitize.is_clean(),
                    "{kind}: sanitizer must report the repair"
                );
                assert!(
                    check_legal(&d.netlist, &r.placement).is_legal()
                        || !r.sanitize.is_clean(),
                    "{kind}"
                );
                assert!(r.hpwl_final.is_finite(), "{kind}");
            }
            Err(FlowError::Sanitize(report)) => {
                assert!(kind.is_fatal(), "{kind}: repairable class aborted: {report}");
                assert!(report.is_fatal(), "{kind}");
            }
            Err(e) => panic!("{kind}: unexpected error {}", e.diagnosis()),
        }
    }
}

/// An injected Abacus failure must take the documented ladder: keep the
/// Tetris result, record the event, still end legal.
#[test]
fn injected_lg_fault_takes_tetris_ladder() {
    let d = GeneratorConfig::new("lg-fault", 200, 220)
        .with_seed(31)
        .with_utilization(0.55)
        .generate::<f64>()
        .expect("generates");
    let mut cfg = quick_config(&d);
    cfg.lg = Legalizer::new().with_fault_injection(LgFaultInjection { fail_abacus: true });
    let r = DreamPlacer::new(cfg).place(&d).expect("ladder survives");
    let event = r
        .degradations
        .for_stage(FlowStage::Lg)
        .next()
        .expect("lg degradation recorded");
    assert_eq!(event.trigger, DegradationTrigger::AbacusFailed);
    assert_eq!(event.fallback, DegradationFallback::TetrisResult);
    assert!(check_legal(&d.netlist, &r.placement).is_legal());
}

/// An injected worsening DP pass must be reverted and disabled, with the
/// event naming the pass; the surviving passes keep the quality contract.
#[test]
fn injected_dp_fault_disables_offending_pass() {
    let d = GeneratorConfig::new("dp-fault", 200, 220)
        .with_seed(37)
        .with_utilization(0.55)
        .generate::<f64>()
        .expect("generates");
    let mut cfg = quick_config(&d);
    cfg.dp.fault_injection = DpFaultInjection {
        worsen_pass: Some(DpPass::GlobalSwap),
    };
    let r = DreamPlacer::new(cfg).place(&d).expect("ladder survives");
    let event = r
        .degradations
        .for_stage(FlowStage::Dp)
        .next()
        .expect("dp degradation recorded");
    assert!(matches!(
        event.trigger,
        DegradationTrigger::DpPassWorsened {
            pass: DpPass::GlobalSwap,
            ..
        }
    ));
    assert_eq!(
        event.fallback,
        DegradationFallback::DisabledDpPass(DpPass::GlobalSwap)
    );
    assert!(r.hpwl_final <= r.hpwl_legal, "guard must protect quality");
    assert!(check_legal(&d.netlist, &r.placement).is_legal());
}
