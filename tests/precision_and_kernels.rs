//! Precision (float32 vs float64) and kernel-strategy equivalence at the
//! flow level — the correctness side of the paper's Figs. 6-8 and 10-12.

use dp_density::{DctBackendKind, DensityStrategy};
use dp_wirelength::WaStrategy;
use dreamplace::gen::GeneratorConfig;
use dreamplace::{DreamPlacer, FlowConfig, ToolMode};

fn run_f64(mutate: impl FnOnce(&mut FlowConfig<f64>)) -> f64 {
    let d = GeneratorConfig::new("pk", 300, 330)
        .with_seed(9)
        .generate::<f64>()
        .expect("valid");
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &d.netlist);
    cfg.gp.max_iters = 250;
    cfg.gp.target_overflow = 0.15;
    mutate(&mut cfg);
    DreamPlacer::new(cfg).place(&d).expect("flow").hpwl_final
}

#[test]
fn float32_matches_float64_quality() {
    // Same design, same configuration, both precisions (paper: "quality
    // stays almost the same" when switching to float32).
    let d64 = GeneratorConfig::new("pk32", 300, 330)
        .with_seed(11)
        .generate::<f64>()
        .expect("ok");
    let d32 = GeneratorConfig::new("pk32", 300, 330)
        .with_seed(11)
        .generate::<f32>()
        .expect("ok");
    let mut c64 = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &d64.netlist);
    c64.gp.max_iters = 250;
    c64.gp.target_overflow = 0.15;
    let mut c32 = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &d32.netlist);
    c32.gp.max_iters = 250;
    c32.gp.target_overflow = 0.15;
    let h64 = DreamPlacer::new(c64)
        .place(&d64)
        .expect("f64 flow")
        .hpwl_final;
    let h32 = DreamPlacer::new(c32)
        .place(&d32)
        .expect("f32 flow")
        .hpwl_final;
    let gap = (h64 - h32).abs() / h64;
    assert!(
        gap < 0.05,
        "precision gap {:.2}% ({h64} vs {h32})",
        gap * 100.0
    );
}

#[test]
fn wirelength_strategies_give_identical_flows() {
    // The three WA kernels compute the same math, so the whole (serial,
    // deterministic) flow must agree bit-for-bit on its final HPWL within
    // float tolerance.
    let a = run_f64(|c| c.gp.wirelength = dp_gp::WirelengthModel::Wa(WaStrategy::NetByNet));
    let b = run_f64(|c| c.gp.wirelength = dp_gp::WirelengthModel::Wa(WaStrategy::Atomic));
    let m = run_f64(|c| c.gp.wirelength = dp_gp::WirelengthModel::Wa(WaStrategy::Merged));
    assert!((a - b).abs() / a < 1e-6, "{a} vs {b}");
    assert!((a - m).abs() / a < 1e-6, "{a} vs {m}");
}

#[test]
fn density_strategies_give_identical_flows() {
    let a = run_f64(|c| c.gp.density_strategy = DensityStrategy::Naive);
    let b = run_f64(|c| c.gp.density_strategy = DensityStrategy::Sorted);
    let s = run_f64(|c| c.gp.density_strategy = DensityStrategy::SortedSubthreads { tx: 2, ty: 2 });
    assert!((a - b).abs() / a < 1e-6, "{a} vs {b}");
    assert!((a - s).abs() / a < 1e-6, "{a} vs {s}");
}

#[test]
fn dct_tiers_give_identical_flows() {
    let a = run_f64(|c| c.gp.dct_backend = DctBackendKind::RowColumn2n);
    let b = run_f64(|c| c.gp.dct_backend = DctBackendKind::RowColumnN);
    let d = run_f64(|c| c.gp.dct_backend = DctBackendKind::Direct2d);
    assert!((a - b).abs() / a < 1e-6, "{a} vs {b}");
    assert!((a - d).abs() / a < 1e-6, "{a} vs {d}");
}

#[test]
fn lse_wirelength_also_places() {
    let h = run_f64(|c| c.gp.wirelength = dp_gp::WirelengthModel::Lse);
    let wa = run_f64(|_| {});
    // LSE is a different smooth model; quality should be in the same
    // ballpark, not identical.
    let gap = (h - wa).abs() / wa;
    assert!(gap < 0.2, "LSE vs WA gap {:.1}%", gap * 100.0);
}
