//! Integration tests for the routability loop and Bookshelf IO.

use dreamplace::bookshelf::{read_design, write_design};
use dreamplace::gen::{GeneratedDesign, GeneratorConfig};
use dreamplace::route::{GlobalRouter, RouterConfig};
use dreamplace::{DreamPlacer, FlowConfig, RoutabilityConfig, RoutabilityPlacer, ToolMode};

fn congested() -> GeneratedDesign<f64> {
    GeneratorConfig::new("rt-int", 400, 440)
        .with_seed(17)
        .with_utilization(0.55)
        .generate::<f64>()
        .expect("valid")
}

fn tight() -> RouterConfig {
    RouterConfig {
        gx: 16,
        gy: 16,
        cap_h: 18,
        cap_v: 18,
        reroute_passes: 1,
        maze_passes: 1,
    }
}

#[test]
fn inflation_loop_does_not_hurt_congestion() {
    let d = congested();

    // Plain flow, then route to get the baseline RC.
    let mut plain_cfg = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &d.netlist);
    plain_cfg.gp.max_iters = 250;
    plain_cfg.gp.target_overflow = 0.15;
    plain_cfg.run_dp = false;
    let plain = DreamPlacer::new(plain_cfg).place(&d).expect("plain flow");
    let rc_plain = GlobalRouter::new(tight())
        .route(&d.netlist, &plain.placement)
        .rc();

    // Routability flow.
    let mut cfg = RoutabilityConfig::auto(&d.netlist, tight());
    cfg.gp.max_iters = 250;
    cfg.gp.target_overflow = 0.15;
    cfg.run_dp = false;
    let r = RoutabilityPlacer::new(cfg)
        .place(&d)
        .expect("routability flow");

    assert!(r.rc >= 100.0 && rc_plain >= 100.0);
    // Caveat: the synthetic workload's congestion is spatially uniform,
    // so inflation trades area for wirelength instead of flattening a
    // hotspot as it does on the contest designs; we therefore only bound
    // the regression. EXPERIMENTS.md discusses this substitution effect.
    let margin = 5.0;
    assert!(
        r.rc <= rc_plain + margin,
        "routability RC {} vs plain RC {}",
        r.rc,
        rc_plain
    );
    assert!(dp_lg::check_legal(&d.netlist, &r.placement).is_legal());
}

#[test]
fn bookshelf_design_places_identically_to_in_memory_one() {
    let d = GeneratorConfig::new("io-int", 250, 280)
        .with_seed(19)
        .generate::<f64>()
        .expect("ok");
    let dir = std::env::temp_dir().join("dreamplace-int-io");
    write_design(&dir, "io-int", &d.netlist, &d.fixed_positions).expect("write");
    let parsed = read_design::<f64>(&dir.join("io-int.aux")).expect("read");
    let d2 = GeneratedDesign {
        name: parsed.name,
        netlist: parsed.netlist,
        fixed_positions: parsed.positions,
    };

    let mut cfg1 = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &d.netlist);
    cfg1.gp.max_iters = 150;
    cfg1.gp.target_overflow = 0.2;
    let mut cfg2 = cfg1.clone();
    cfg2.gp = ToolMode::DreamplaceGpuSim.gp_config(&d2.netlist);
    cfg2.gp.max_iters = 150;
    cfg2.gp.target_overflow = 0.2;

    let r1 = DreamPlacer::new(cfg1).place(&d).expect("in-memory flow");
    let r2 = DreamPlacer::new(cfg2).place(&d2).expect("bookshelf flow");
    // The parsed design is numerically identical, so the deterministic
    // flow should land on the same result.
    let gap = (r1.hpwl_final - r2.hpwl_final).abs() / r1.hpwl_final;
    assert!(gap < 1e-9, "{} vs {}", r1.hpwl_final, r2.hpwl_final);
}

#[test]
fn router_metrics_scale_with_capacity() {
    let d = congested();
    let p = dp_gp::initial_placement(&d.netlist, &d.fixed_positions, 0.25, 5);
    let loose = GlobalRouter::new(RouterConfig {
        cap_h: 60,
        cap_v: 60,
        ..tight()
    })
    .route(&d.netlist, &p);
    let squeezed = GlobalRouter::new(RouterConfig {
        cap_h: 2,
        cap_v: 2,
        ..tight()
    })
    .route(&d.netlist, &p);
    assert!(squeezed.rc() > loose.rc());
    assert!(squeezed.total_overflow() > loose.total_overflow());
}
