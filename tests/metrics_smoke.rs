//! Metrics-plane smoke tests: the metrics registry must never perturb
//! the flow's numerics, its exposition must be well-formed, and the
//! panic flight recorder must leave a validated postmortem behind.
//!
//! Three guarantees, matching the metrics design contract (DESIGN.md §16):
//!
//! 1. a scheduler run with metrics *enabled* is bit-identical to the same
//!    run with metrics disabled on the tier-1 golden configuration
//!    (instruments observe, never participate);
//! 2. the Prometheus text exposition parses cleanly — every series
//!    appears exactly once per scrape, and every `_total` counter is
//!    monotone non-decreasing across scrapes;
//! 3. a chaos-injected terminal panic in dp-serve dumps a
//!    `job-N.postmortem.jsonl` flight-recorder file that the independent
//!    `dp-check` postmortem validator accepts.

use std::collections::BTreeMap;
use std::io::Cursor;
use std::sync::Arc;

use dreamplace::gen::{GeneratedDesign, GeneratorConfig};
use dreamplace::serve::{serve, ServeOptions, POSTMORTEM_EVENTS};
use dreamplace::telemetry::metrics::Metrics;
use dreamplace::telemetry::Telemetry;
use dreamplace::{
    FlowConfig, FlowResult, JobOutcome, JobStatus, Scheduler, ToolMode,
};
use dp_gp::InitKind;

const THREADS: usize = 2;

fn build() -> GeneratedDesign<f64> {
    GeneratorConfig::new("trace-smoke", 420, 460)
        .with_seed(71)
        .with_utilization(0.6)
        .generate::<f64>()
        .expect("valid generator config")
}

/// Same configuration as the tier-1 golden regression in
/// `tests/differential.rs` / `tests/trace_smoke.rs`.
fn config(d: &GeneratedDesign<f64>) -> FlowConfig<f64> {
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceCpu { threads: THREADS }, &d.netlist);
    cfg.gp.max_iters = 300;
    cfg.gp.target_overflow = 0.12;
    cfg.gp.threads = THREADS;
    cfg.gp.deterministic = Some(true);
    cfg.run_dp = true;
    if let InitKind::WirelengthOnly { iters } = cfg.gp.init {
        cfg.gp.init = InitKind::WirelengthOnly {
            iters: iters.min(40),
        };
    }
    cfg
}

/// Runs the golden config through the scheduler, optionally instrumented.
fn run_scheduled(d: &Arc<GeneratedDesign<f64>>, metrics: Option<&Metrics>) -> FlowResult<f64> {
    let mut sched = Scheduler::with_threads(THREADS);
    if let Some(m) = metrics {
        sched.set_metrics(m);
    }
    let id = sched.submit(config(d), Arc::clone(d), Telemetry::disabled(), None);
    loop {
        sched.step_round();
        match sched.status(id) {
            Some(JobStatus::Running { .. }) | Some(JobStatus::Retrying { .. }) => continue,
            _ => break,
        }
    }
    sched.health(); // refresh the pool gauges for a subsequent render
    match sched.take_outcome(id) {
        Some(JobOutcome::Completed(r)) => *r,
        other => panic!("golden job did not complete: {:?}", other.is_some()),
    }
}

/// Parses one exposition into `series -> value`, failing on duplicate
/// series or non-numeric samples. Comment lines (`# HELP`, `# TYPE`) are
/// checked for shape but not collected.
fn parse_scrape(text: &str) -> BTreeMap<String, f64> {
    let mut series = BTreeMap::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "unknown comment shape: {line}"
            );
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("`series value` sample line");
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            v => v.parse().unwrap_or_else(|_| panic!("non-numeric sample in {line}")),
        };
        assert!(
            series.insert(name.to_string(), value).is_none(),
            "duplicate series {name}"
        );
    }
    assert!(!series.is_empty(), "empty scrape");
    series
}

#[test]
fn metrics_enabled_run_is_bit_identical_and_scrapes_cleanly() {
    let d = Arc::new(build());
    let off = run_scheduled(&d, None);

    let metrics = Metrics::enabled();
    let on = run_scheduled(&d, Some(&metrics));

    // 1. Bit identity: the instruments observed a numerically untouched run.
    assert_eq!(off.hpwl_gp.to_bits(), on.hpwl_gp.to_bits());
    assert_eq!(off.hpwl_legal.to_bits(), on.hpwl_legal.to_bits());
    assert_eq!(off.hpwl_final.to_bits(), on.hpwl_final.to_bits());
    assert_eq!(off.gp.iterations, on.gp.iterations);
    assert_eq!(off.placement.x, on.placement.x);
    assert_eq!(off.placement.y, on.placement.y);

    // 2. The scrape parses with no duplicate series and covers the
    // scheduler and pool layers.
    let first = parse_scrape(&metrics.render());
    assert_eq!(first["dp_sched_jobs_total{outcome=\"completed\"}"], 1.0);
    assert_eq!(first["dp_sched_jobs_submitted_total"], 1.0);
    assert!(first["dp_pool_launches_total"] > 0.0);
    assert!(first["dp_sched_step_seconds_count{stage=\"gp\"}"] > 0.0);
    assert!(first.contains_key("dp_uptime_seconds"));
    // Histogram buckets are cumulative: each le is >= its predecessor,
    // and the +Inf bucket equals the count.
    let gp_count = first["dp_sched_step_seconds_count{stage=\"gp\"}"];
    assert_eq!(first["dp_sched_step_seconds_bucket{stage=\"gp\",le=\"+Inf\"}"], gp_count);

    // 3. Counters are monotone across scrapes: run a second job on the
    // same registry and compare every `_total` sample.
    let again = run_scheduled(&d, Some(&metrics));
    assert_eq!(on.hpwl_final.to_bits(), again.hpwl_final.to_bits());
    let second = parse_scrape(&metrics.render());
    for (name, before) in &first {
        if !name.contains("_total") {
            continue;
        }
        let after = second.get(name).unwrap_or_else(|| panic!("series {name} vanished"));
        assert!(
            after >= before,
            "counter {name} went backwards: {before} -> {after}"
        );
    }
    assert_eq!(second["dp_sched_jobs_total{outcome=\"completed\"}"], 2.0);
}

#[test]
fn chaos_panic_leaves_a_validated_postmortem() {
    let dir = std::env::temp_dir().join(format!("dp-metrics-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp trace dir");
    let input = Cursor::new(
        [
            // max_attempts 1 makes the contained panic terminal, which is
            // what triggers the flight-recorder dump.
            concat!(
                r#"{"cmd":"submit","cells":80,"nets":90,"seed":6,"max_iters":20,"#,
                r#""chaos_panic_at":"gp:3","max_attempts":1}"#
            ),
            r#"{"cmd":"drain"}"#,
        ]
        .join("\n"),
    );
    let mut out = Vec::new();
    let opts = ServeOptions {
        threads: 1,
        slots: 1,
        allow_chaos: true,
        trace_dir: Some(dir.clone()),
        ..ServeOptions::default()
    };
    let stats = serve(input, &mut out, &opts).expect("daemon survives the panic");
    assert_eq!(stats.failed, 1);

    let text = String::from_utf8(out).expect("utf8 events");
    let failed = text
        .lines()
        .find(|l| l.contains("\"event\":\"failed\""))
        .expect("terminal failed event");
    assert!(failed.contains("\"kind\":\"panic\""));
    assert!(failed.contains("\"postmortem_path\":"));

    let path = dir.join("job-0.postmortem.jsonl");
    let summary =
        dreamplace::check::validate_postmortem_file(&path).expect("postmortem validates");
    assert!(summary.lines <= POSTMORTEM_EVENTS + 1, "dump is bounded");
    assert!(summary.panics >= 1, "the contained panic is in the recording");
    // The serve and check crates pin the same flight-recorder window.
    assert_eq!(POSTMORTEM_EVENTS, dreamplace::check::POSTMORTEM_EVENT_CAP);
    let _ = std::fs::remove_dir_all(&dir);
}
