//! Observability smoke tests: telemetry must never perturb the flow's
//! numerics, and the JSONL trace it emits must satisfy the independent
//! schema validator in `dp-check`.
//!
//! Three guarantees, matching the telemetry design contract:
//!
//! 1. a run with telemetry *enabled* is bit-identical to the same run
//!    with telemetry disabled (recording observes, never participates),
//!    so the golden full-flow regression holds either way;
//! 2. the JSONL sink round-trips through `dp_check::trace` — balanced
//!    span nesting, per-thread monotone timestamps, schema-exact keys —
//!    and covers all three placement stages;
//! 3. an adversarial design that trips a flow fallback records at least
//!    one `degradation` timeline event in the trace.

use dreamplace::gen::{GeneratedDesign, GeneratorConfig};
use dreamplace::telemetry::Telemetry;
use dreamplace::{DreamPlacer, FlowConfig, FlowResult, ToolMode};
use dp_gp::InitKind;

const THREADS: usize = 2;

fn build() -> GeneratedDesign<f64> {
    GeneratorConfig::new("trace-smoke", 420, 460)
        .with_seed(71)
        .with_utilization(0.6)
        .generate::<f64>()
        .expect("valid generator config")
}

/// Same configuration as the tier-1 golden regression in
/// `tests/differential.rs`, parameterized over the telemetry sink.
fn run(d: &GeneratedDesign<f64>, telemetry: Telemetry) -> FlowResult<f64> {
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceCpu { threads: THREADS }, &d.netlist);
    cfg.gp.max_iters = 300;
    cfg.gp.target_overflow = 0.12;
    cfg.gp.threads = THREADS;
    cfg.gp.deterministic = Some(true);
    cfg.run_dp = true;
    if let InitKind::WirelengthOnly { iters } = cfg.gp.init {
        cfg.gp.init = InitKind::WirelengthOnly {
            iters: iters.min(40),
        };
    }
    cfg.telemetry = telemetry;
    DreamPlacer::new(cfg).place(d).expect("flow completes")
}

#[test]
fn enabled_telemetry_is_bit_identical_to_disabled() {
    let d = build();
    let off = run(&d, Telemetry::disabled());
    let on_tel = Telemetry::enabled();
    let on = run(&d, on_tel.clone());

    assert_eq!(off.hpwl_gp.to_bits(), on.hpwl_gp.to_bits());
    assert_eq!(off.hpwl_legal.to_bits(), on.hpwl_legal.to_bits());
    assert_eq!(off.hpwl_final.to_bits(), on.hpwl_final.to_bits());
    assert_eq!(off.gp.iterations, on.gp.iterations);
    assert_eq!(off.placement.x, on.placement.x);
    assert_eq!(off.placement.y, on.placement.y);

    // The instrumented run actually recorded something (this is not a
    // vacuous comparison between two disabled sinks).
    let report = on_tel.report().expect("enabled telemetry yields a report");
    assert_eq!(report.iterations as usize, on.gp.iterations);
}

#[test]
fn jsonl_trace_round_trips_through_the_independent_validator() {
    let d = build();
    let tel = Telemetry::enabled();
    let result = run(&d, tel.clone());

    let mut buf = Vec::new();
    let events = tel.write_jsonl(&mut buf).expect("serialize trace");
    let text = String::from_utf8(buf).expect("trace is utf-8");
    assert_eq!(events, text.lines().count());

    let summary = dreamplace::check::validate_str(&text)
        .unwrap_or_else(|e| panic!("trace failed validation: {e}\n--- trace head ---\n{}",
            text.lines().take(20).collect::<Vec<_>>().join("\n")));
    assert_eq!(summary.lines, events);
    // The convergence trace mirrors GpStats, one iter event per GP
    // iteration, all inside spans covering every stage.
    assert_eq!(summary.iters, result.gp.iterations);
    for stage in ["\"name\":\"gp\"", "\"name\":\"lg.", "\"name\":\"dp."] {
        assert!(text.contains(stage), "missing {stage} span in trace");
    }
    assert!(summary.kernels > 0, "kernel counters missing");
    assert!(summary.workspaces > 0, "workspace counters missing");
}

#[test]
fn adversarial_design_records_degradation_events_in_the_trace() {
    let d = build();
    let tel = Telemetry::enabled();
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceCpu { threads: THREADS }, &d.netlist);
    cfg.gp.max_iters = 300;
    cfg.gp.target_overflow = 0.12;
    cfg.gp.threads = THREADS;
    // A runaway density-weight schedule diverges the primary run; the
    // flow degrades to the conservative preset (same trigger as the
    // core `flow_falls_back_to_conservative_preset_on_divergence` test).
    cfg.gp.mu_min = 1e120;
    cfg.gp.mu_max = 1e120;
    cfg.run_dp = false;
    cfg.telemetry = tel.clone();
    let r = DreamPlacer::new(cfg).place(&d).expect("flow degrades, not fails");
    assert!(!r.degradations.is_clean(), "expected a degraded run");

    let mut buf = Vec::new();
    tel.write_jsonl(&mut buf).expect("serialize trace");
    let text = String::from_utf8(buf).expect("trace is utf-8");
    let summary = dreamplace::check::validate_str(&text)
        .unwrap_or_else(|e| panic!("degraded trace failed validation: {e}"));
    assert!(
        summary.degradations >= 1,
        "no degradation event in trace despite {} flow degradations",
        r.degradations.events.len()
    );
    // The report surfaces the same timeline.
    let report = tel.report().expect("report");
    assert!(
        !report.degradations.is_empty(),
        "report lost the degradation timeline"
    );
}
