//! Tier-1 regression: the batched DCT path is a pure re-execution of the
//! Direct2d arithmetic, so forcing it on must not move the flow at all.
//!
//! Three locks, matching the transform-layer contract:
//!
//! 1. a batched-off run still matches the committed golden record
//!    (`results/golden/golden-flat.json`) — the rework of the unbatched
//!    plan (tiled transposes, allocation-free row FFTs) changed memory
//!    movement only, never arithmetic;
//! 2. a batched-on run is bit-identical to the batched-off run: final
//!    HPWLs, placements, and every per-iteration convergence point in the
//!    JSONL trace (compared through the independent `dp-check` reader's
//!    schema, timestamps stripped);
//! 3. both traces pass the `dp-check` trace validator, and the batched
//!    run's report carries the new transform phase kernels.

use std::path::PathBuf;

use dp_density::DctBackendKind;
use dreamplace::gen::{GeneratedDesign, GeneratorConfig};
use dreamplace::telemetry::Telemetry;
use dreamplace::{DreamPlacer, FlowConfig, FlowResult, ToolMode};
use dp_check::{GoldenRecord, GoldenTolerance};
use dp_gp::InitKind;

const THREADS: usize = 2;

fn build() -> GeneratedDesign<f64> {
    // Exactly the golden-flat scenario of tests/differential.rs.
    GeneratorConfig::new("golden-flat", 420, 460)
        .with_seed(71)
        .with_utilization(0.6)
        .generate::<f64>()
        .expect("valid generator config")
}

fn run(d: &GeneratedDesign<f64>, backend: DctBackendKind, telemetry: Telemetry) -> FlowResult<f64> {
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceCpu { threads: THREADS }, &d.netlist);
    cfg.gp.max_iters = 300;
    cfg.gp.target_overflow = 0.12;
    cfg.gp.threads = THREADS;
    cfg.gp.deterministic = Some(true);
    cfg.gp.dct_backend = backend;
    cfg.run_dp = true;
    if let InitKind::WirelengthOnly { iters } = cfg.gp.init {
        cfg.gp.init = InitKind::WirelengthOnly {
            iters: iters.min(40),
        };
    }
    cfg.telemetry = telemetry;
    DreamPlacer::new(cfg).place(d).expect("flow completes")
}

fn trace_of(tel: &Telemetry) -> String {
    let mut buf = Vec::new();
    tel.write_jsonl(&mut buf).expect("serialize trace");
    String::from_utf8(buf).expect("trace is utf-8")
}

/// The convergence points of a trace: for each `iter` event, the exact
/// decimal payload from the iteration counter up to (excluding) the
/// timestamp. The JSONL writer emits f64s as round-trip-exact `{:.17e}`,
/// so substring equality here is bit equality of hpwl/overflow/lambda/
/// gamma, while span ids and timestamps (which legitimately differ between
/// runs) are excluded.
fn convergence_points(trace: &str) -> Vec<String> {
    trace
        .lines()
        .filter(|l| l.contains("\"ev\":\"iter\""))
        .map(|l| {
            let start = l.find("\"k\":").expect("iter event has a k field");
            let end = l.find(",\"t\":").expect("iter event has a timestamp");
            l[start..end].to_string()
        })
        .collect()
}

#[test]
fn batched_on_and_off_are_bit_identical_through_the_full_flow() {
    let d = build();

    let tel_off = Telemetry::enabled();
    let off = run(&d, DctBackendKind::Direct2d, tel_off.clone());
    let tel_on = Telemetry::enabled();
    let on = run(&d, DctBackendKind::Batched, tel_on.clone());

    // Lock 1: batched-off still matches the committed golden record.
    let actual = GoldenRecord::from_flow("golden-flat", 71, THREADS, &off);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/golden/golden-flat.json");
    let expected = GoldenRecord::load(&path).expect("committed golden record");
    if let Err(errs) = expected.compare(&actual, &GoldenTolerance::default()) {
        panic!("batched-off run drifted from the golden: {}", errs.join("; "));
    }

    // Lock 2: batched-on is bit-identical to batched-off.
    assert_eq!(off.hpwl_gp.to_bits(), on.hpwl_gp.to_bits());
    assert_eq!(off.hpwl_legal.to_bits(), on.hpwl_legal.to_bits());
    assert_eq!(off.hpwl_final.to_bits(), on.hpwl_final.to_bits());
    assert_eq!(off.gp.iterations, on.gp.iterations);
    assert_eq!(off.placement.x, on.placement.x);
    assert_eq!(off.placement.y, on.placement.y);

    // Lock 3: both traces satisfy the independent validator...
    let trace_off = trace_of(&tel_off);
    let trace_on = trace_of(&tel_on);
    let sum_off = dreamplace::check::validate_str(&trace_off).expect("batched-off trace valid");
    let sum_on = dreamplace::check::validate_str(&trace_on).expect("batched-on trace valid");
    assert_eq!(sum_off.iters, off.gp.iterations);
    assert_eq!(sum_on.iters, on.gp.iterations);

    // ...and their per-iteration convergence points agree exactly.
    let points_off = convergence_points(&trace_off);
    let points_on = convergence_points(&trace_on);
    assert_eq!(
        points_off.len(),
        points_on.len(),
        "iteration counts diverged"
    );
    assert!(!points_off.is_empty(), "trace carries no iter events");
    for (k, (a, b)) in points_off.iter().zip(&points_on).enumerate() {
        assert_eq!(a, b, "convergence point {k} diverged");
    }

    // The batched run (and only it) reports the transform phase split.
    assert!(
        trace_on.contains("density.dct.butterfly"),
        "batched trace must carry the phase kernels"
    );
    assert!(
        !trace_off.contains("density.dct.butterfly"),
        "unbatched trace must not carry phase kernels"
    );
}
