//! Tier-1 differential gate: seeded full-flow (GP -> LG -> DP) runs
//! compared against committed golden records, plus a same-invocation
//! bit-identity check.
//!
//! The golden files live in `results/golden/`. When an intentional
//! algorithm change shifts the numbers, regenerate them with
//! `DP_UPDATE_GOLDEN=1 cargo test --test differential` and commit the
//! diff — the point is that such shifts are always explicit in review,
//! never silent.

use std::path::PathBuf;

use dp_check::{update_requested, GoldenRecord, GoldenTolerance};
use dp_gp::InitKind;
use dreamplace::gen::{GeneratedDesign, GeneratorConfig};
use dreamplace::{DreamPlacer, FlowConfig, FlowResult, ToolMode};

struct Scenario {
    name: &'static str,
    seed: u64,
    macros: usize,
}

const THREADS: usize = 2;
const SCENARIOS: [Scenario; 2] = [
    Scenario {
        name: "golden-flat",
        seed: 71,
        macros: 0,
    },
    Scenario {
        name: "golden-macros",
        seed: 72,
        macros: 3,
    },
];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results/golden")
        .join(format!("{name}.json"))
}

fn build(s: &Scenario) -> GeneratedDesign<f64> {
    let mut g = GeneratorConfig::new(s.name, 420, 460)
        .with_seed(s.seed)
        .with_utilization(0.6);
    if s.macros > 0 {
        g = g.with_macros(s.macros, 0.12);
    }
    g.generate::<f64>().expect("valid generator config")
}

fn run(d: &GeneratedDesign<f64>) -> FlowResult<f64> {
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceCpu { threads: THREADS }, &d.netlist);
    cfg.gp.max_iters = 300;
    cfg.gp.target_overflow = 0.12;
    cfg.gp.threads = THREADS;
    // Fixed-point density accumulation: bit-identical regardless of how
    // the worker pool interleaves, so the goldens hold on any machine.
    cfg.gp.deterministic = Some(true);
    cfg.run_dp = true;
    if let InitKind::WirelengthOnly { iters } = cfg.gp.init {
        cfg.gp.init = InitKind::WirelengthOnly {
            iters: iters.min(40),
        };
    }
    DreamPlacer::new(cfg).place(d).expect("flow completes")
}

#[test]
fn seeded_flow_matches_golden_records() {
    let mut failures = Vec::new();
    for s in &SCENARIOS {
        let d = build(s);
        let result = run(&d);
        let actual = GoldenRecord::from_flow(s.name, s.seed, THREADS, &result);

        let path = golden_path(s.name);
        if update_requested() {
            actual.store(&path).expect("write golden record");
            continue;
        }
        let expected = GoldenRecord::load(&path).unwrap_or_else(|e| {
            panic!(
                "missing/corrupt golden `{}` ({e}); regenerate with \
                 DP_UPDATE_GOLDEN=1 cargo test --test differential",
                path.display()
            )
        });
        if let Err(errs) = expected.compare(&actual, &GoldenTolerance::default()) {
            failures.push(format!("{}: {}", s.name, errs.join("; ")));
        }
    }
    assert!(failures.is_empty(), "golden drift:\n{}", failures.join("\n"));
}

/// Two invocations in the same process, same seed and thread count, must
/// agree bit-for-bit — stricter than the golden tolerance and independent
/// of the committed files.
#[test]
fn repeated_invocations_are_bit_identical() {
    let s = &SCENARIOS[0];
    let d = build(s);
    let a = run(&d);
    let b = run(&d);
    assert_eq!(a.hpwl_gp.to_bits(), b.hpwl_gp.to_bits());
    assert_eq!(a.hpwl_legal.to_bits(), b.hpwl_legal.to_bits());
    assert_eq!(a.hpwl_final.to_bits(), b.hpwl_final.to_bits());
    assert_eq!(a.gp.iterations, b.gp.iterations);
    assert_eq!(a.placement.x, b.placement.x);
    assert_eq!(a.placement.y, b.placement.y);
}
