//! Tier-1 executor acceptance: kernels launched on the persistent worker
//! pool must agree with the serial path, and a placement run must spawn
//! its threads exactly once while reusing every kernel workspace.
//!
//! The ordered per-chunk reductions (with a thread-count-invariant chunk
//! size) make the net-by-net and merged wirelength kernels bit-exact at any
//! worker count; the atomic strategy accumulates through float atomics and
//! is only reproducible to rounding; the density scatter is bit-exact in
//! its fixed-point deterministic mode.

use dp_autograd::{ExecCtx, Gradient, Operator};
use dp_density::{BinGrid, DensityOp, DensityStrategy};
use dp_gp::{initial_placement, GlobalPlacer, GpConfig};
use dp_wirelength::{LseWirelength, WaStrategy, WaWirelength};
use dreamplace::gen::{GeneratedDesign, GeneratorConfig};
use dreamplace::netlist::Placement;

fn design(seed: u64, cells: usize) -> GeneratedDesign<f64> {
    GeneratorConfig::new(format!("exec-{seed}"), cells, cells + cells / 8)
        .with_seed(seed)
        .with_utilization(0.6)
        .generate::<f64>()
        .expect("valid generator config")
}

fn start(d: &GeneratedDesign<f64>) -> Placement<f64> {
    initial_placement(&d.netlist, &d.fixed_positions, 0.1, 7)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `op` serially and on a 4-worker pool; returns both (cost, grad).
fn run_both<O: Operator<f64>>(
    mut serial_op: O,
    mut pooled_op: O,
    d: &GeneratedDesign<f64>,
) -> ((f64, Gradient<f64>), (f64, Gradient<f64>)) {
    let pos = start(d);
    let n = d.netlist.num_cells();

    let mut ctx1 = ExecCtx::serial();
    let mut g1 = Gradient::zeros(n);
    let c1 = serial_op.forward_backward(&d.netlist, &pos, &mut g1, &mut ctx1);

    let mut ctx4 = ExecCtx::new(4);
    let mut g4 = Gradient::zeros(n);
    // Two evaluations through the same ctx: the second reuses the leased
    // scratch, so agreement also checks the zero-fill on reuse.
    let _ = pooled_op.forward_backward(&d.netlist, &pos, &mut g4, &mut ctx4);
    g4.reset();
    let c4 = pooled_op.forward_backward(&d.netlist, &pos, &mut g4, &mut ctx4);

    ((c1, g1), (c4, g4))
}

#[test]
fn wa_net_by_net_and_merged_are_bit_exact_across_thread_counts() {
    let d = design(11, 600);
    for strategy in [WaStrategy::NetByNet, WaStrategy::Merged] {
        let ((c1, g1), (c4, g4)) = run_both(
            WaWirelength::new(strategy, 10.0f64),
            WaWirelength::new(strategy, 10.0f64),
            &d,
        );
        assert_eq!(c1.to_bits(), c4.to_bits(), "{strategy:?} cost");
        assert_eq!(bits(&g1.x), bits(&g4.x), "{strategy:?} grad x");
        assert_eq!(bits(&g1.y), bits(&g4.y), "{strategy:?} grad y");
    }
}

#[test]
fn lse_is_bit_exact_across_thread_counts() {
    let d = design(13, 600);
    let ((c1, g1), (c4, g4)) =
        run_both(LseWirelength::new(10.0f64), LseWirelength::new(10.0f64), &d);
    assert_eq!(c1.to_bits(), c4.to_bits(), "lse cost");
    assert_eq!(bits(&g1.x), bits(&g4.x), "lse grad x");
    assert_eq!(bits(&g1.y), bits(&g4.y), "lse grad y");
}

#[test]
fn wa_atomic_matches_serial_to_rounding() {
    let d = design(17, 600);
    let ((c1, g1), (c4, g4)) = run_both(
        WaWirelength::new(WaStrategy::Atomic, 10.0f64),
        WaWirelength::new(WaStrategy::Atomic, 10.0f64),
        &d,
    );
    let rel = (c1 - c4).abs() / c1.abs().max(1.0);
    assert!(rel < 1e-9, "atomic cost rel err {rel}");
    for (a, b) in g1.x.iter().zip(&g4.x).chain(g1.y.iter().zip(&g4.y)) {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }
}

#[test]
fn density_deterministic_mode_is_bit_exact_across_thread_counts() {
    let d = design(19, 600);
    let m = GpConfig::<f64>::auto_bins(d.netlist.num_movable());
    let make = || {
        let grid = BinGrid::new(d.netlist.region(), m, m).expect("bins");
        let mut op = DensityOp::new(grid, DensityStrategy::Sorted, 1.0f64)
            .expect("density op")
            .with_deterministic(true);
        op.bake_fixed(&d.netlist, &start(&d));
        op
    };
    let ((c1, g1), (c4, g4)) = run_both(make(), make(), &d);
    assert_eq!(c1.to_bits(), c4.to_bits(), "density energy");
    assert_eq!(bits(&g1.x), bits(&g4.x), "density grad x");
    assert_eq!(bits(&g1.y), bits(&g4.y), "density grad y");
}

#[test]
fn placement_run_spawns_once_and_reuses_every_workspace() {
    let d = design(23, 400);
    let mut cfg = GpConfig::auto(&d.netlist);
    cfg.threads = 3;
    cfg.max_iters = 60;
    cfg.target_overflow = 0.3;
    let r = GlobalPlacer::new(cfg)
        .place(&d.netlist, &d.fixed_positions)
        .expect("gp run");
    let exec = &r.stats.exec;

    // Spawn-once: the pool creates exactly threads-1 workers for the whole
    // run, however many iterations execute.
    assert_eq!(exec.pool_threads, 3);
    assert_eq!(exec.threads_spawned, 2, "workers spawned more than once");
    assert!(
        exec.pool_runs >= r.stats.iterations as u64,
        "pool dispatched {} launches over {} iterations",
        exec.pool_runs,
        r.stats.iterations
    );

    // Every kernel op was exercised and timed.
    assert!(!exec.ops.is_empty());
    for (name, op) in &exec.ops {
        assert!(op.calls >= 1, "op {name} never ran");
    }

    // Every kernel workspace was recycled at least once across iterations.
    assert!(!exec.workspaces.is_empty());
    for (name, ws) in &exec.workspaces {
        assert!(
            ws.reuses >= 1,
            "workspace {name} never reused (uses={}, bytes={})",
            ws.uses,
            ws.bytes
        );
        assert!(ws.bytes > 0, "workspace {name} reports no scratch");
    }
}
