//! Property-based integration tests over randomly generated designs.

use dp_gp::initial_placement;
use dp_lg::{check_legal, Legalizer};
use dreamplace::gen::GeneratorConfig;
use dreamplace::netlist::hpwl;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Legalization always yields a legal placement with bounded
    /// displacement, from any noise level, for any design shape.
    #[test]
    fn legalizer_always_legalizes(
        seed in 0u64..1000,
        cells in 50usize..250,
        noise in 0.005f64..0.3,
        util in 0.3f64..0.8,
    ) {
        let d = GeneratorConfig::new("prop-lg", cells, cells + cells / 8)
            .with_seed(seed)
            .with_utilization(util)
            .generate::<f64>()
            .expect("valid");
        let mut p = initial_placement(&d.netlist, &d.fixed_positions, noise, seed ^ 0xabc);
        let stats = Legalizer::new().legalize(&d.netlist, &mut p).expect("fits");
        let report = check_legal(&d.netlist, &p);
        prop_assert!(report.is_legal(), "{report:?}");
        let diag = d.netlist.region().width() + d.netlist.region().height();
        prop_assert!(stats.max_displacement <= diag, "unbounded displacement");
    }

    /// The detailed placer never increases HPWL and never breaks legality.
    #[test]
    fn detailed_placement_is_safe(
        seed in 0u64..1000,
        cells in 50usize..200,
    ) {
        let d = GeneratorConfig::new("prop-dp", cells, cells + cells / 8)
            .with_seed(seed)
            .with_utilization(0.5)
            .generate::<f64>()
            .expect("valid");
        let mut p = initial_placement(&d.netlist, &d.fixed_positions, 0.1, seed);
        Legalizer::new().legalize(&d.netlist, &mut p).expect("fits");
        let before = hpwl(&d.netlist, &p);
        let stats = dp_dplace::DetailedPlacer::new().run(&d.netlist, &mut p);
        prop_assert!(stats.final_hpwl <= before + 1e-9);
        prop_assert!(check_legal(&d.netlist, &p).is_legal());
    }

    /// Generated designs are structurally sound: CSR is consistent and
    /// HPWL is translation-invariant.
    #[test]
    fn generated_designs_are_sound(
        seed in 0u64..1000,
        cells in 30usize..300,
    ) {
        let d = GeneratorConfig::new("prop-gen", cells, cells + 20)
            .with_seed(seed)
            .generate::<f64>()
            .expect("valid");
        let nl = &d.netlist;
        // Every pin belongs to exactly one net and one cell (CSR audit).
        let mut pin_seen = vec![0usize; nl.num_pins()];
        for net in nl.nets() {
            for &pin in nl.net_pins(net) {
                pin_seen[pin.index()] += 1;
                prop_assert_eq!(nl.pin_net(pin), net);
            }
        }
        prop_assert!(pin_seen.iter().all(|&c| c == 1));

        // HPWL translation invariance at a random placement.
        let mut p = initial_placement(nl, &d.fixed_positions, 0.2, seed);
        let h0 = hpwl(nl, &p);
        for v in p.x.iter_mut() { *v += 17.0; }
        for v in p.y.iter_mut() { *v -= 4.5; }
        let h1 = hpwl(nl, &p);
        prop_assert!((h0 - h1).abs() < 1e-6 * h0.max(1.0));
    }
}
