//! Tier-1 concurrency-determinism gate: K jobs interleaved on the
//! shared-pool [`Scheduler`] must be *bit-identical* — placements, HPWL,
//! and trace convergence points — to the same jobs run sequentially as
//! standalone `place` calls, including a job that is evicted to a
//! checkpoint and resumed mid-interleave. This is the defining property
//! of the ownership inversion: sharing the pool changes no bits.

use std::sync::Arc;

use dreamplace::gen::{GeneratedDesign, GeneratorConfig};
use dreamplace::telemetry::{Telemetry, TraceEvent};
use dreamplace::{DreamPlacer, FlowConfig, JobStatus, QosClass, Scheduler, ToolMode};

const THREADS: usize = 2;

fn design(seed: u64) -> Arc<GeneratedDesign<f64>> {
    Arc::new(
        GeneratorConfig::new(format!("interleave-{seed}"), 130, 140)
            .with_seed(seed)
            .generate::<f64>()
            .expect("valid generator config"),
    )
}

fn config(d: &GeneratedDesign<f64>) -> FlowConfig<f64> {
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &d.netlist);
    cfg.gp.max_iters = 30;
    cfg.gp.min_iters = cfg.gp.min_iters.min(5);
    cfg.gp.threads = THREADS;
    cfg
}

/// The timing-free content of a trace: convergence points and timeline
/// markers, in order. Span ids, timestamps, and thread ids legitimately
/// differ between runs; the numbers the flow computed must not.
fn fingerprint(tel: &Telemetry) -> Vec<String> {
    tel.snapshot()
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Iter {
                iteration,
                hpwl,
                overflow,
                lambda,
                gamma,
                ..
            } => Some(format!(
                "iter {iteration} {:016x} {:016x} {:016x} {:016x}",
                hpwl.to_bits(),
                overflow.to_bits(),
                lambda.to_bits(),
                gamma.to_bits()
            )),
            TraceEvent::Point { name, detail, .. } => Some(format!("point {name} {detail}")),
            _ => None,
        })
        .collect()
}

#[test]
fn interleaved_jobs_match_sequential_bitwise_including_traces() {
    let designs: Vec<_> = (20..23).map(design).collect();

    // Sequential baseline: each job standalone, its own pool, own trace.
    let baseline: Vec<_> = designs
        .iter()
        .map(|d| {
            let tel = Telemetry::enabled();
            let mut cfg = config(d);
            cfg.telemetry = tel.clone();
            let r = DreamPlacer::new(cfg).place(d).expect("baseline run");
            (r, fingerprint(&tel))
        })
        .collect();

    // The same jobs interleaved on one shared pool, one step each per
    // round (Interactive = maximal interleaving), per-job telemetry.
    let mut sched = Scheduler::<f64>::with_threads(THREADS);
    let submitted: Vec<_> = designs
        .iter()
        .map(|d| {
            let tel = Telemetry::enabled();
            let mut cfg = config(d);
            cfg.telemetry = tel.clone();
            let id = sched.submit(cfg, Arc::clone(d), tel.clone(), Some(QosClass::Interactive));
            (id, tel)
        })
        .collect();
    sched.run_all();

    for ((id, tel), (base, base_print)) in submitted.iter().zip(&baseline) {
        let got = sched
            .take_result(*id)
            .expect("job finished")
            .expect("job succeeded");
        assert_eq!(
            got.hpwl_final.to_bits(),
            base.hpwl_final.to_bits(),
            "shared-pool HPWL differs from standalone"
        );
        assert_eq!(got.placement.x, base.placement.x);
        assert_eq!(got.placement.y, base.placement.y);
        assert_eq!(got.gp.iterations, base.gp.iterations);
        assert_eq!(
            &fingerprint(tel),
            base_print,
            "trace convergence points differ from standalone"
        );
    }
}

#[test]
fn job_resumed_from_checkpoint_mid_interleave_stays_bit_identical() {
    let d0 = design(30);
    let d1 = design(31);

    let base = DreamPlacer::new(config(&d0)).place(&d0).expect("baseline");

    let mut sched = Scheduler::<f64>::with_threads(THREADS);
    let id0 = sched.submit(
        config(&d0),
        Arc::clone(&d0),
        Telemetry::disabled(),
        Some(QosClass::Interactive),
    );
    let id1 = sched.submit(
        config(&d1),
        Arc::clone(&d1),
        Telemetry::disabled(),
        Some(QosClass::Interactive),
    );

    // Interleave until job 0 is somewhere inside GP, then evict it to a
    // checkpoint while job 1 keeps running.
    for _ in 0..12 {
        sched.step_round();
    }
    let data = sched.evict(id0).expect("job 0 capturable mid-GP");
    assert_eq!(sched.status(id0), Some(JobStatus::Evicted));

    // Resume it into the still-running scheduler (migration) and finish.
    let tel = Telemetry::enabled();
    let mut cfg = config(&d0);
    cfg.telemetry = tel.clone();
    let id0b = sched
        .submit_resume(cfg, Arc::clone(&d0), data, tel.clone(), Some(QosClass::Interactive))
        .expect("resubmit after evict");
    sched.run_all();

    let got = sched
        .take_result(id0b)
        .expect("resumed job finished")
        .expect("resumed job succeeded");
    assert_eq!(got.hpwl_final.to_bits(), base.hpwl_final.to_bits());
    assert_eq!(got.placement.x, base.placement.x);
    assert_eq!(got.placement.y, base.placement.y);
    // The resumed trace records the resume point on its timeline.
    assert!(
        fingerprint(&tel).iter().any(|l| l.starts_with("point resume")),
        "resumed run should log a resume point"
    );

    let other = sched
        .take_result(id1)
        .expect("job 1 finished")
        .expect("job 1 succeeded");
    let solo = DreamPlacer::new(config(&d1)).place(&d1).expect("solo");
    assert_eq!(other.hpwl_final.to_bits(), solo.hpwl_final.to_bits());
}
