//! Tier-1 fault-isolation gate for the service layer: the chaos matrix of
//! ISSUE 9. With panics, stalls, and checkpoint-write failures injected
//! into individual jobs on a shared [`Scheduler`], the scheduler must
//! never die, surviving neighbor jobs must stay *bit-identical* to solo
//! runs, and retried jobs must resume from their last checkpoint to the
//! same answer. A final test pipes a seeded fuzz stream of malformed
//! protocol lines through the dp-serve daemon and asserts it survives.

use std::sync::Arc;

use dreamplace::gen::{GeneratedDesign, GeneratorConfig};
use dreamplace::serve::{serve, ServeOptions};
use dreamplace::telemetry::{Telemetry, TraceEvent};
use dreamplace::{
    DreamPlacer, FlowConfig, FlowState, JobOptions, JobOutcome, QosClass, RetryPolicy, Scheduler,
    ServeFaultInjection, ToolMode,
};

const THREADS: usize = 2;

fn design(seed: u64) -> Arc<GeneratedDesign<f64>> {
    Arc::new(
        GeneratorConfig::new(format!("chaos-{seed}"), 130, 140)
            .with_seed(seed)
            .generate::<f64>()
            .expect("valid generator config"),
    )
}

fn config(d: &GeneratedDesign<f64>) -> FlowConfig<f64> {
    let mut cfg = FlowConfig::for_mode(ToolMode::DreamplaceGpuSim, &d.netlist);
    cfg.gp.max_iters = 30;
    cfg.gp.min_iters = cfg.gp.min_iters.min(5);
    cfg.gp.threads = THREADS;
    cfg
}

fn solo(d: &Arc<GeneratedDesign<f64>>) -> dreamplace::FlowResult<f64> {
    DreamPlacer::new(config(d))
        .place(d)
        .expect("solo baseline run")
}

/// The timing-free content of a trace (same idiom as the scheduler
/// determinism gate): convergence numbers bit-exact, timeline points by
/// name+detail, in order.
fn fingerprint(tel: &Telemetry) -> Vec<String> {
    tel.snapshot()
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Iter {
                iteration,
                hpwl,
                overflow,
                lambda,
                gamma,
                ..
            } => Some(format!(
                "iter {iteration} {:016x} {:016x} {:016x} {:016x}",
                hpwl.to_bits(),
                overflow.to_bits(),
                lambda.to_bits(),
                gamma.to_bits()
            )),
            TraceEvent::Point { name, detail, .. } => Some(format!("point {name} {detail}")),
            _ => None,
        })
        .collect()
}

fn options(retry: RetryPolicy, faults: ServeFaultInjection) -> JobOptions {
    JobOptions {
        qos: Some(QosClass::Interactive),
        // No wall deadline unless a test sets one: chaos tests control
        // their own failure modes.
        deadline_seconds: Some(f64::INFINITY),
        retry,
        faults,
    }
}

#[test]
fn contained_panic_leaves_neighbor_jobs_bit_identical() {
    let designs: Vec<_> = (50..53).map(design).collect();
    let baselines: Vec<_> = designs.iter().map(solo).collect();

    let mut sched = Scheduler::<f64>::with_threads(THREADS);
    let ids: Vec<_> = designs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let faults = if i == 1 {
                ServeFaultInjection::panic_at(FlowState::Gp { iteration: 3 })
            } else {
                ServeFaultInjection::default()
            };
            sched.submit_with(
                config(d),
                Arc::clone(d),
                Telemetry::disabled(),
                options(RetryPolicy::none(), faults),
            )
        })
        .collect();
    sched.run_all();

    // The faulted job terminates as a contained panic after one attempt.
    match sched.take_outcome(ids[1]).expect("outcome recorded") {
        JobOutcome::Panicked {
            message,
            at,
            attempts,
        } => {
            assert!(message.contains("injected service panic"), "{message}");
            assert_eq!(at, FlowState::Gp { iteration: 3 });
            assert_eq!(attempts, 1);
        }
        other => panic!("expected Panicked, got {other:?}"),
    }

    // Neighbors are bit-identical to their solo baselines.
    for &i in &[0usize, 2] {
        match sched.take_outcome(ids[i]).expect("outcome recorded") {
            JobOutcome::Completed(r) => {
                assert_eq!(r.hpwl_final.to_bits(), baselines[i].hpwl_final.to_bits());
                assert_eq!(r.placement.x, baselines[i].placement.x);
                assert_eq!(r.placement.y, baselines[i].placement.y);
            }
            other => panic!("neighbor job {i} did not complete: {other:?}"),
        }
    }

    let health = sched.health();
    assert_eq!(health.panics_contained, 1);
    assert_eq!(health.retries, 0);
    assert!(
        health.pool.all_workers_alive(),
        "pool workers must survive a contained job panic"
    );
}

#[test]
fn retried_panic_resumes_from_checkpoint_to_the_same_bits() {
    let d = design(60);
    let base = solo(&d);
    let base_tel = {
        let tel = Telemetry::enabled();
        let mut cfg = config(&d);
        cfg.telemetry = tel.clone();
        DreamPlacer::new(cfg).place(&d).expect("baseline");
        tel
    };

    let mut sched = Scheduler::<f64>::with_threads(THREADS);
    let tel = Telemetry::enabled();
    let mut cfg = config(&d);
    cfg.telemetry = tel.clone();
    let id = sched.submit_with(
        cfg,
        Arc::clone(&d),
        tel.clone(),
        options(
            RetryPolicy {
                max_attempts: 2,
                backoff_seconds: 0.01,
                conservative_final: false,
            },
            ServeFaultInjection::panic_at(FlowState::Gp { iteration: 5 }),
        ),
    );
    sched.run_all();

    // The retry resumed from the checkpoint taken at the turn boundary
    // before the panic, so the final answer is bit-identical to an
    // unfaulted run — same HPWL, same coordinates, same overflow target.
    match sched.take_outcome(id).expect("outcome recorded") {
        JobOutcome::Completed(r) => {
            assert_eq!(r.hpwl_final.to_bits(), base.hpwl_final.to_bits());
            assert_eq!(r.placement.x, base.placement.x);
            assert_eq!(r.placement.y, base.placement.y);
            assert_eq!(
                r.gp.final_overflow.to_bits(),
                base.gp.final_overflow.to_bits(),
                "retried job must converge to the same overflow target"
            );
        }
        other => panic!("expected Completed, got {other:?}"),
    }

    // The timeline narrates the fault: panic point, retry point, resume
    // point — and the convergence iterations after the resume match the
    // baseline's tail bit-for-bit.
    let print = fingerprint(&tel);
    assert!(print.iter().any(|l| l.starts_with("point panic")));
    assert!(print.iter().any(|l| l.starts_with("point retry")));
    assert!(print.iter().any(|l| l.starts_with("point resume")));
    let base_print = fingerprint(&base_tel);
    let base_last = base_print.last().expect("baseline has events");
    assert_eq!(
        print.last().expect("faulted run has events"),
        base_last,
        "final convergence point must match the unfaulted baseline"
    );

    let health = sched.health();
    assert_eq!(health.panics_contained, 1);
    assert_eq!(health.retries, 1);
}

#[test]
fn stall_past_deadline_times_out_then_retry_completes() {
    let d = design(61);
    let base = solo(&d);

    let mut sched = Scheduler::<f64>::with_threads(THREADS);
    let tel = Telemetry::enabled();
    let mut cfg = config(&d);
    cfg.telemetry = tel.clone();
    let id = sched.submit_with(
        cfg,
        Arc::clone(&d),
        tel.clone(),
        JobOptions {
            qos: Some(QosClass::Interactive),
            // Busy-time deadline well under the injected stall but far
            // above what the tiny design actually needs.
            deadline_seconds: Some(0.75),
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_seconds: 0.01,
                conservative_final: false,
            },
            faults: ServeFaultInjection::stall_at(FlowState::Gp { iteration: 2 }, 1.5),
        },
    );
    sched.run_all();

    match sched.take_outcome(id).expect("outcome recorded") {
        JobOutcome::Completed(r) => {
            assert_eq!(r.hpwl_final.to_bits(), base.hpwl_final.to_bits());
            assert_eq!(r.placement.x, base.placement.x);
        }
        other => panic!("expected Completed after timeout retry, got {other:?}"),
    }
    let print = fingerprint(&tel);
    assert!(print.iter().any(|l| l.starts_with("point timeout")));
    assert!(print.iter().any(|l| l.starts_with("point retry")));

    let health = sched.health();
    assert_eq!(health.timeouts, 1);
    assert_eq!(health.retries, 1);
}

#[test]
fn checkpoint_write_failure_forces_fresh_restart_retry() {
    let d = design(62);
    let base = solo(&d);

    let mut sched = Scheduler::<f64>::with_threads(THREADS);
    let tel = Telemetry::enabled();
    let mut cfg = config(&d);
    cfg.telemetry = tel.clone();
    let mut faults = ServeFaultInjection::panic_at(FlowState::Gp { iteration: 4 });
    faults.fail_capture = true;
    let id = sched.submit_with(
        cfg,
        Arc::clone(&d),
        tel.clone(),
        options(
            RetryPolicy {
                max_attempts: 2,
                backoff_seconds: 0.01,
                conservative_final: false,
            },
            faults,
        ),
    );
    sched.run_all();

    // With checkpointing sabotaged there is nothing to resume from; the
    // retry restarts fresh and — the flow being deterministic — still
    // lands on the baseline bits.
    match sched.take_outcome(id).expect("outcome recorded") {
        JobOutcome::Completed(r) => {
            assert_eq!(r.hpwl_final.to_bits(), base.hpwl_final.to_bits());
            assert_eq!(r.placement.x, base.placement.x);
            assert_eq!(r.placement.y, base.placement.y);
        }
        other => panic!("expected Completed, got {other:?}"),
    }
    let print = fingerprint(&tel);
    assert!(print.iter().any(|l| l.starts_with("point retry")));
    assert!(
        !print.iter().any(|l| l.starts_with("point resume")),
        "fresh restart must not claim a checkpoint resume"
    );
}

#[test]
fn conservative_final_attempt_restarts_fresh_and_completes() {
    let d = design(63);

    let mut sched = Scheduler::<f64>::with_threads(THREADS);
    let tel = Telemetry::enabled();
    let mut cfg = config(&d);
    cfg.telemetry = tel.clone();
    let id = sched.submit_with(
        cfg,
        Arc::clone(&d),
        tel.clone(),
        options(
            RetryPolicy {
                max_attempts: 2,
                backoff_seconds: 0.01,
                conservative_final: true,
            },
            ServeFaultInjection::panic_at(FlowState::Gp { iteration: 6 }),
        ),
    );
    sched.run_all();

    match sched.take_outcome(id).expect("outcome recorded") {
        JobOutcome::Completed(r) => assert!(r.hpwl_final.is_finite()),
        other => panic!("expected Completed, got {other:?}"),
    }
    assert!(
        fingerprint(&tel)
            .iter()
            .any(|l| l.starts_with("point retry") && l.contains("conservative")),
        "final attempt must announce the conservative preset"
    );
}

#[test]
fn exhausted_deadline_attempts_surface_terminal_timeout() {
    let d0 = design(64);
    let d1 = design(65);
    let base1 = solo(&d1);

    let mut sched = Scheduler::<f64>::with_threads(THREADS);
    // Job 0: an impossible deadline — every attempt trips immediately.
    let id0 = sched.submit_with(
        config(&d0),
        Arc::clone(&d0),
        Telemetry::disabled(),
        JobOptions {
            qos: Some(QosClass::Interactive),
            deadline_seconds: Some(0.0),
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_seconds: 0.01,
                conservative_final: false,
            },
            faults: ServeFaultInjection::default(),
        },
    );
    // Job 1: a healthy neighbor sharing the pool.
    let id1 = sched.submit_with(
        config(&d1),
        Arc::clone(&d1),
        Telemetry::disabled(),
        options(RetryPolicy::none(), ServeFaultInjection::default()),
    );
    sched.run_all();

    match sched.take_outcome(id0).expect("outcome recorded") {
        JobOutcome::TimedOut {
            deadline_seconds,
            attempts,
            ..
        } => {
            assert_eq!(deadline_seconds, 0.0);
            assert_eq!(attempts, 2, "both allowed attempts were consumed");
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
    match sched.take_outcome(id1).expect("outcome recorded") {
        JobOutcome::Completed(r) => {
            assert_eq!(r.hpwl_final.to_bits(), base1.hpwl_final.to_bits());
        }
        other => panic!("neighbor must survive the timeout storm: {other:?}"),
    }

    let health = sched.health();
    assert_eq!(health.timeouts, 2);
    assert_eq!(health.retries, 1);
}

#[test]
fn fuzz_stream_cannot_kill_the_daemon() {
    // A seeded mix of valid submits, malformed JSON, truncated objects,
    // and binary garbage; `drain` is appended so the session ends only
    // when *we* say so. Every malformed line must yield a structured
    // `error` event with the session still alive.
    let mut script = dreamplace::gen::fuzz::protocol_lines(0xfa57, 60).join("\n");
    script.push_str("\n{\"cmd\":\"drain\"}\n");

    let mut out = Vec::new();
    let opts = ServeOptions {
        threads: 1,
        slots: 2,
        queue_cap: 4,
        ..ServeOptions::default()
    };
    let stats = serve(std::io::Cursor::new(script.into_bytes()), &mut out, &opts)
        .expect("daemon survives the fuzz stream");

    assert!(stats.errors > 0, "fuzz stream must contain malformed lines");
    assert!(
        stats.completed + stats.rejected > 0,
        "fuzz stream must contain well-formed requests"
    );
    let text = String::from_utf8(out).expect("protocol output is UTF-8");
    let last = text.lines().last().expect("daemon said something");
    assert!(
        last.contains("\"event\":\"bye\""),
        "session must end with a bye summary, got: {last}"
    );
    assert_eq!(
        text.matches("\"event\":\"error\"").count(),
        stats.errors,
        "every malformed line maps to one structured error event"
    );
}
